//! Offline stub of `serde`: marker traits only. Derived impls carry no
//! codec logic — generic JSON (de)serialization through `serde_json`
//! returns `Err` at runtime. The workspace's durable format is the
//! hand-written binary codec over `bytes`; JSON is inspection-only, and
//! `serde_json::Value` overrides the hidden hook below so rendering a
//! `Value` still works.

pub trait Serialize {
    /// Hidden hook: types that can actually render themselves as JSON
    /// (only `serde_json::Value` in this stub) override these.
    #[doc(hidden)]
    fn __stub_to_json(&self) -> Option<String> {
        None
    }

    #[doc(hidden)]
    fn __stub_to_json_pretty(&self) -> Option<String> {
        None
    }
}

pub trait Deserialize<'de>: Sized {
    /// Hidden hook: types that can actually parse themselves from JSON
    /// (only `serde_json::Value` in this stub) override this. `None`
    /// means "no codec"; `Some(Err(..))` is a real parse failure.
    #[doc(hidden)]
    fn __stub_from_json(_s: &str) -> Option<Result<Self, String>> {
        None
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
