//! Offline stub of `serde_derive`: emits empty marker impls of the stub
//! `serde` traits. No `syn`/`quote` — the only thing needed from the item
//! is its type name, which is the identifier following `struct`/`enum`.
//! Generic types are unsupported (none in this workspace derive serde).

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("expected type name after `{kw}`, got {other:?}"),
                }
            }
        }
    }
    panic!("serde_derive stub: no `struct` or `enum` found in derive input")
}
