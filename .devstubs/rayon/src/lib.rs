//! Offline stub of `rayon`: the prelude's `par_iter` / `into_par_iter` /
//! `par_chunks_mut` entry points as sequential adapters over std
//! iterators. Semantics are identical to the parallel versions for the
//! pure per-item closures this workspace uses; only wall-clock differs.

/// `.par_iter()` on slices (and `Vec` via auto-deref).
pub trait ParIterExt {
    type Item;
    fn par_iter(&self) -> std::slice::Iter<'_, Self::Item>;
}

impl<T> ParIterExt for [T] {
    type Item = T;
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// `.into_par_iter()` on anything iterable (Vec, ranges, ...).
pub trait IntoParIterExt {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParIterExt for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> I::IntoIter {
        self.into_iter()
    }
}

/// `.par_chunks_mut(n)` on mutable slices.
pub trait ParChunksMutExt {
    type Item;
    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, Self::Item>;
}

impl<T> ParChunksMutExt for [T] {
    type Item = T;
    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(size)
    }
}

pub mod prelude {
    pub use crate::{IntoParIterExt, ParChunksMutExt, ParIterExt};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_match_sequential() {
        let v = vec![1, 2, 3];
        assert_eq!(v.par_iter().sum::<i32>(), 6);
        assert_eq!(v.clone().into_par_iter().max(), Some(3));
        assert_eq!((0..4usize).into_par_iter().count(), 4);
        let mut buf = [0u8; 6];
        buf.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, c)| c.fill(i as u8));
        assert_eq!(buf, [0, 0, 1, 1, 2, 2]);
    }
}
