//! Offline stub of `criterion`: the entry points the workspace's benches
//! use (`bench_function`, `benchmark_group`/`bench_with_input`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros) over a
//! minimal timing loop. No statistics, plots, or CLI — each benchmark
//! runs a short warmup, then a timed burst, and prints the mean.

use std::fmt::Display;
use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 3;
const TARGET_RUNTIME: Duration = Duration::from_millis(20);

pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(body());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(body());
            iters += 1;
            if start.elapsed() >= TARGET_RUNTIME {
                break;
            }
        }
        self.iters = iters;
        self.total = start.elapsed();
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label}: no iterations recorded");
            return;
        }
        let mean = self.total.as_secs_f64() / self.iters as f64;
        println!("{label}: {:.3} us/iter ({} iters)", mean * 1e6, self.iters);
    }
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function(&mut self, name: &str, mut body: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, |b| body(b));
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, |b| body(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, body: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        total: Duration::ZERO,
    };
    body(&mut b);
    b.report(label);
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_benchmarks() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u32, |b, &n| b.iter(|| n * n));
        g.finish();
    }
}
