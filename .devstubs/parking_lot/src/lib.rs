//! Offline stub of `parking_lot`: the subset of the API this workspace
//! uses, implemented over `std::sync` primitives (poisoning is swallowed,
//! matching parking_lot's poison-free semantics).

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

// -------------------------------------------------------------- Condvar

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

// --------------------------------------------------------------- RwLock

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(t),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

// A handful of callers use Once-like helpers; keep a tiny extra so the
// stub stays drop-in for common parking_lot idioms.
pub struct OnceFlag(AtomicBool);

impl OnceFlag {
    pub const fn new() -> Self {
        OnceFlag(AtomicBool::new(false))
    }
    pub fn set(&self) -> bool {
        !self.0.swap(true, Ordering::SeqCst)
    }
}

impl Default for OnceFlag {
    fn default() -> Self {
        Self::new()
    }
}
