//! Offline stub of `bytes`: `Bytes`/`BytesMut` plus the `Buf`/`BufMut`
//! trait methods the workspace uses (little-endian integer/float codecs,
//! slicing, freeze). `Bytes` is a cheaply-cloneable view over a shared
//! buffer with an advancing read cursor, like the real crate. Out-of-range
//! reads panic, matching the real crate's contract — callers are expected
//! to check `remaining()` first.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "advance past end of Bytes");
        let at = self.start;
        self.start += n;
        &self.data[at..at + n]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[derive(Default, Clone, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

macro_rules! get_le {
    ($($name:ident -> $ty:ty),* $(,)?) => {
        $(fn $name(&mut self) -> $ty {
            let mut raw = [0u8; std::mem::size_of::<$ty>()];
            self.copy_to_slice(&mut raw);
            <$ty>::from_le_bytes(raw)
        })*
    };
}

macro_rules! put_le {
    ($($name:ident($ty:ty)),* $(,)?) => {
        $(fn $name(&mut self, v: $ty) {
            self.put_slice(&v.to_le_bytes());
        })*
    };
}

/// Read side: an advancing cursor over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    get_le! {
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i16_le -> i16,
        get_i32_le -> i32,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64,
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let src = self.take(dst.len());
        dst.copy_from_slice(src);
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end of Bytes");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Write side: append-only encoding into a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le! {
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_i16_le(i16),
        put_i32_le(i32),
        put_i64_le(i64),
        put_f32_le(f32),
        put_f64_le(f64),
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        buf.put_slice(b"abc");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.get_f64_le(), -2.25);
        assert_eq!(b.copy_to_bytes(3).to_vec(), b"abc");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic]
    fn read_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
