//! Offline stub of `proptest`: a deterministic random-case runner behind
//! the same surface the workspace uses (`proptest!` with an optional
//! `#![proptest_config]`, `any::<T>()`, numeric-range and tuple
//! strategies, `.prop_map`, `prop_assert*!`). No shrinking — a failing
//! case panics with its case index and seed so it can be replayed.

use std::fmt;
use std::marker::PhantomData;

/// Deterministic splitmix64 stream; each test case gets its own seed.
pub struct TestRng(u64);

impl TestRng {
    pub fn from_case(case: u32) -> Self {
        TestRng(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(u64::from(case) + 1))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `any::<T>()`: full-range values for primitive `T`.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

pub trait ArbitraryValue: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($ty:ty),* $(,)?) => {
        $(impl ArbitraryValue for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })*
    };
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategies {
    ($($ty:ty),* $(,)?) => {
        $(impl Strategy for ::std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $ty
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                ((*self.start() as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $ty
            }
        })*
    };
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {
        $(impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })*
    };
}

tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::from_case(case);
                    $(let $arg = $crate::Strategy::generate(&{ $strat }, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("proptest {}: case {case} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ArbitraryValue,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..4, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose(v in (0u32..5, any::<u64>()).prop_map(|(a, b)| (a, b | 1))) {
            prop_assert!(v.0 < 5);
            prop_assert_ne!(v.1 & 1, 0);
            prop_assert_eq!(v.1 & 1, 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4).map(|c| TestRng::from_case(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| TestRng::from_case(c).next_u64()).collect();
        assert_eq!(a, b);
    }
}
