//! Offline stub of `crossbeam`: the `channel` module only, implemented as
//! a real MPMC channel over `Mutex<VecDeque>` + condvars. Semantics match
//! what the workspace relies on: cloneable senders *and* receivers,
//! bounded capacity with blocking sends, `try_recv` / `recv_timeout`, and
//! disconnection when all peers on one side drop.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    // ------------------------------------------------------------ errors

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    // ------------------------------------------------------ constructors

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    // ------------------------------------------------------------ Sender

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).expect("channel lock");
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().expect("channel lock");
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.cap.is_some_and(|c| st.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel lock").queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                // Wake blocked receivers so they observe disconnection.
                self.shared.not_empty.notify_all();
            }
        }
    }

    // ---------------------------------------------------------- Receiver

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).expect("channel lock");
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel lock");
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .expect("channel lock");
                st = guard;
            }
        }

        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel lock").queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake blocked senders so they observe disconnection.
                self.shared.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_roundtrip_and_capacity() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = bounded::<u32>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn timeout_and_mpmc() {
        let (tx, rx) = bounded::<u32>(8);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let rx2 = rx.clone();
        let h = std::thread::spawn(move || rx2.recv().unwrap());
        tx.send(7).unwrap();
        assert_eq!(h.join().unwrap(), 7);
    }
}
