//! Offline stub of `serde_json`. The `Value` tree and the `json!` macro
//! are fully functional (construction, indexing, accessors, compact and
//! pretty rendering). The *generic* codec paths — `to_string::<T>` /
//! `from_str::<T>` for derived types — return `Err`, because the stub
//! `serde_derive` emits marker impls with no codec logic. The workspace's
//! durable format is the binary codec in `nnlqp-ir`/`nnlqp-db`; JSON here
//! is for reports and inspection.

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                render_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].render(out, indent, depth + 1);
                });
            }
            Value::Object(map) => {
                let entries: Vec<(&String, &Value)> = map.iter().collect();
                render_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = entries[i];
                    escape_into(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                });
            }
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s, None, 0);
        f.write_str(&s)
    }
}

impl serde::Serialize for Value {
    fn __stub_to_json(&self) -> Option<String> {
        Some(self.to_string())
    }

    fn __stub_to_json_pretty(&self) -> Option<String> {
        let mut s = String::new();
        self.render(&mut s, Some(2), 0);
        Some(s)
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn __stub_from_json(s: &str) -> Option<Result<Self, String>> {
        Some(parse::parse(s))
    }
}

impl std::str::FromStr for Value {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self, Error> {
        parse::parse(s).map_err(|msg| Error { msg })
    }
}

// -------------------------------------------------------------- parsing

mod parse {
    use super::Value;
    use std::collections::BTreeMap;

    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", c as char, self.pos))
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
                None => Err("unexpected end of input".to_string()),
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Value::Number)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or("unterminated escape")?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let cp = self.hex4()?;
                                // Surrogate pair: combine, else replacement.
                                let c = if (0xD800..0xDC00).contains(&cp) {
                                    if self.peek() == Some(b'\\') {
                                        self.pos += 1;
                                        self.eat(b'u')?;
                                        let lo = self.hex4()?;
                                        char::from_u32(
                                            0x10000
                                                + ((cp - 0xD800) << 10)
                                                + (lo.wrapping_sub(0xDC00) & 0x3FF),
                                        )
                                    } else {
                                        None
                                    }
                                } else {
                                    char::from_u32(cp)
                                };
                                out.push(c.unwrap_or('\u{FFFD}'));
                            }
                            c => return Err(format!("bad escape '\\{}'", c as char)),
                        }
                    }
                    Some(_) => {
                        // Consume one UTF-8 character (multi-byte safe).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid utf-8".to_string())?;
                        let c = rest.chars().next().ok_or("unterminated string")?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, String> {
            if self.pos + 4 > self.bytes.len() {
                return Err("truncated \\u escape".to_string());
            }
            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                .map_err(|_| "bad \\u escape".to_string())?;
            self.pos += 4;
            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())
        }

        fn array(&mut self) -> Result<Value, String> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.eat(b'{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                self.skip_ws();
                map.insert(key, self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }
    }
}

// ------------------------------------------------------------- indexing

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// ---------------------------------------------------------- conversions

macro_rules! from_number {
    ($($ty:ty),* $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::Number(v as f64)
            }
        })*
    };
}

from_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

/// By-reference conversion used by `json!`, mirroring real serde_json's
/// `to_value(&expr)`: expressions are borrowed, not moved, so struct
/// fields can appear as values without `.clone()`.
#[doc(hidden)]
pub trait ToValue {
    fn __to_value(&self) -> Value;
}

macro_rules! to_value_via_copy {
    ($($ty:ty),* $(,)?) => {
        $(impl ToValue for $ty {
            fn __to_value(&self) -> Value {
                Value::from(*self)
            }
        })*
    };
}

to_value_via_copy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl ToValue for String {
    fn __to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToValue for str {
    fn __to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToValue for Value {
    fn __to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToValue> ToValue for Vec<T> {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::__to_value).collect())
    }
}

impl<T: ToValue> ToValue for [T] {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::__to_value).collect())
    }
}

impl<T: ToValue> ToValue for Option<T> {
    fn __to_value(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToValue::__to_value)
    }
}

impl<T: ToValue, const N: usize> ToValue for [T; N] {
    fn __to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::__to_value).collect())
    }
}

macro_rules! to_value_tuples {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(impl<$($name: ToValue),+> ToValue for ($($name,)+) {
            fn __to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.__to_value()),+])
            }
        })*
    };
}

to_value_tuples! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: ToValue + ?Sized> ToValue for &T {
    fn __to_value(&self) -> Value {
        (**self).__to_value()
    }
}

// --------------------------------------------------------------- errors

#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn unsupported(what: &str) -> Error {
        Error {
            msg: format!("{what} is unavailable offline: derived serde impls are codec-free stubs"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------- entry points

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    value
        .__stub_to_json()
        .ok_or_else(|| Error::unsupported("generic serialization"))
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    value
        .__stub_to_json_pretty()
        .ok_or_else(|| Error::unsupported("generic serialization"))
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    match T::__stub_from_json(s) {
        Some(Ok(v)) => Ok(v),
        Some(Err(msg)) => Err(Error { msg }),
        None => Err(Error::unsupported("generic deserialization")),
    }
}

// ----------------------------------------------------------- json! macro

/// Build a [`Value`] from JSON-ish syntax. Keys must be string literals;
/// values may be nested `{...}` / `[...]` literals, `null`, or any Rust
/// expression convertible with `Value::from`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($body:tt)+ }) => {{
        let mut map = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
        $crate::json_internal!(@object map $($body)+);
        $crate::Value::Object(map)
    }};
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($body:tt)+ ]) => {{
        #[allow(clippy::vec_init_then_push)]
        let items = {
            let mut items = ::std::vec::Vec::<$crate::Value>::new();
            $crate::json_internal!(@array items $($body)+);
            items
        };
        $crate::Value::Array(items)
    }};
    ($other:expr) => { $crate::ToValue::__to_value(&$other) };

    // -- object entries: key is a string literal; value is a nested
    //    literal, null, or a plain expression (expr matching absorbs
    //    everything up to the next top-level comma).
    (@object $map:ident) => {};
    (@object $map:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.into(), $crate::Value::Null);
        $crate::json_internal!(@object $map $($($rest)*)?);
    };
    (@object $map:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.into(), $crate::json_internal!({ $($inner)* }));
        $crate::json_internal!(@object $map $($($rest)*)?);
    };
    (@object $map:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.into(), $crate::json_internal!([ $($inner)* ]));
        $crate::json_internal!(@object $map $($($rest)*)?);
    };
    (@object $map:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.into(), $crate::ToValue::__to_value(&$value));
        $crate::json_internal!(@object $map $($rest)*);
    };
    (@object $map:ident $key:literal : $value:expr) => {
        $map.insert($key.into(), $crate::ToValue::__to_value(&$value));
    };

    // -- array elements, same shapes as object values.
    (@array $items:ident) => {};
    (@array $items:ident null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::json_internal!(@array $items $($($rest)*)?);
    };
    (@array $items:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json_internal!({ $($inner)* }));
        $crate::json_internal!(@array $items $($($rest)*)?);
    };
    (@array $items:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json_internal!([ $($inner)* ]));
        $crate::json_internal!(@array $items $($($rest)*)?);
    };
    (@array $items:ident $value:expr , $($rest:tt)*) => {
        $items.push($crate::ToValue::__to_value(&$value));
        $crate::json_internal!(@array $items $($rest)*);
    };
    (@array $items:ident $value:expr) => {
        $items.push($crate::ToValue::__to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let rows: Vec<Value> = (0..2).map(|i| json!({ "id": i })).collect();
        let v = json!({
            "name": "nnlqp",
            "nested": { "a": 1, "b": [1.5, 2, 3] },
            "rows": rows,
            "flag": true,
            "none": null,
        });
        assert_eq!(v["name"].as_str(), Some("nnlqp"));
        assert_eq!(v["nested"]["a"].as_u64(), Some(1));
        assert_eq!(v["nested"]["b"].as_array().unwrap().len(), 3);
        assert_eq!(v["rows"][1]["id"].as_u64(), Some(1));
        assert_eq!(v["flag"].as_bool(), Some(true));
        assert!(v["none"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rendering_compact_and_pretty() {
        let v = json!({ "b": [1, 2], "a": "x\"y" });
        assert_eq!(v.to_string(), r#"{"a":"x\"y","b":[1,2]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\""));
        assert_eq!(to_string(&v).unwrap(), v.to_string());
    }

    #[test]
    fn generic_paths_err_cleanly() {
        struct Opaque;
        impl serde::Serialize for Opaque {}
        impl<'de> serde::Deserialize<'de> for Opaque {}
        assert!(to_string(&Opaque).is_err());
        assert!(from_str::<Opaque>("{}").is_err());
    }
}
