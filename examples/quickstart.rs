//! Quickstart: the paper's §7 interface in Rust.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a model, queries its true latency on two platforms (the first
//! query measures on the simulated farm, the second hits the database
//! cache), trains the predictor from the accumulated records, and
//! predicts the latency of an unseen variant.

use nnlqp::{Nnlqp, Platform, QueryParams, TrainPredictorConfig};
use nnlqp_models::ModelFamily;

fn main() {
    // The system owns the evolving database, the device farm, and the
    // predictor — the analogue of `import NNLQP`.
    let system = Nnlqp::builder().reps(10).build();

    // A model: canonical ResNet-18 (use nnlqp_ir::GraphBuilder or the
    // generators in nnlqp-models for your own architectures).
    let model = ModelFamily::ResNet.canonical().expect("generator is valid");
    println!(
        "model: {} ({} nodes, {} edges)",
        model.name,
        model.len(),
        model.num_edges()
    );

    // --- NNLQP.query: true latency -------------------------------------
    for platform in ["gpu-T4-trt7.1-fp32", "cpu-openppl-fp32"] {
        let params = QueryParams::by_name(model.clone(), 1, platform).expect("platform resolves");
        let first = system.query(&params).expect("platform registered");
        let second = system.query(&params).expect("platform registered");
        println!(
            "{platform}: {:.3} ms  (first query: measured, {:.0} s pipeline; \
             second query: cache {}, {:.1} s)",
            first.latency_ms,
            first.cost_s,
            if second.cache_hit { "hit" } else { "miss" },
            second.cost_s
        );
    }

    // --- Evolving database: accumulate some more models ----------------
    let variants: Vec<_> = nnlqp_models::generate_family(ModelFamily::ResNet, 80, 7)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    let t4 = Platform::by_name("gpu-T4-trt7.1-fp32").expect("platform registered");
    let fresh = system
        .warm_cache(&variants, &t4, 1)
        .expect("warming succeeds");
    println!("\nwarmed the database with {fresh} fresh measurements");
    let stats = system.stats();
    println!(
        "database: {} models, {} platforms, {} latency records (~{} KiB)",
        stats.models,
        stats.platforms,
        stats.latencies,
        stats.total_bytes / 1024
    );

    // --- NNLQP.predict: train from the database, predict unseen model --
    let samples = system
        .train_predictor(
            &["gpu-T4-trt7.1-fp32"],
            TrainPredictorConfig {
                epochs: 60,
                ..Default::default()
            },
        )
        .expect("training data exists");
    println!("\ntrained the predictor on {samples} database records");

    let unseen = nnlqp_models::generate_family(ModelFamily::ResNet, 40, 4242)
        .pop()
        .expect("non-empty")
        .graph;
    let params = QueryParams::new(unseen, 1, t4);
    let predicted = system.predict(&params).expect("predictor trained");
    let truth = system.query(&params).expect("platform registered");
    println!(
        "unseen variant: predicted {:.3} ms vs measured {:.3} ms ({:+.1}% error, \
         prediction cost {:.2} s vs measurement {:.0} s)",
        predicted.latency_ms,
        truth.latency_ms,
        (predicted.latency_ms / truth.latency_ms - 1.0) * 100.0,
        predicted.cost_s,
        truth.cost_s,
    );
}
