//! Transfer learning with the pre-trained graph embedding (§6.2, Fig. 6):
//! a predictor pre-trained on nine families adapts to a tenth from a
//! handful of samples.
//!
//! ```text
//! cargo run --release --example transfer_learning
//! ```

use nnlqp_ir::{Graph, Rng64};
use nnlqp_models::{family::CORPUS_FAMILIES, generate_family, ModelFamily};
use nnlqp_predict::train::{predict_samples, train, truths, Dataset, TrainConfig};
use nnlqp_predict::transfer::{fine_tune_structures, train_from_scratch};
use nnlqp_predict::{acc_at, mape, NnlpConfig, NnlpModel};
use nnlqp_sim::{measure, PlatformSpec};

fn main() {
    let platform = PlatformSpec::by_name("gpu-gtx1660-trt7.1-fp32").unwrap();
    let held_out = ModelFamily::ResNet;

    // Pre-training corpus: every family except the held-out one.
    println!("building the pre-training corpus (9 families)...");
    let mut pretrain: Vec<(Graph, f64)> = Vec::new();
    for f in CORPUS_FAMILIES.into_iter().filter(|f| *f != held_out) {
        for (i, m) in generate_family(f, 20, 11).into_iter().enumerate() {
            let lat = measure(&m.graph, &platform, 20, 11 ^ (i as u64) << 8).mean_ms;
            pretrain.push((m.graph, lat));
        }
    }
    let entries: Vec<(&Graph, f64, usize)> =
        pretrain.iter().map(|(g, l)| (g, *l, 0usize)).collect();
    let ds = Dataset::build(&entries);

    println!("pre-training NNLP on {} models...", ds.samples.len());
    let mut rng = Rng64::new(42);
    let mut pre = NnlpModel::new(
        NnlpConfig {
            hidden: 48,
            head_hidden: 48,
            gnn_layers: 3,
            dropout: 0.05,
            ..Default::default()
        },
        ds.norm.clone(),
        &mut rng,
    );
    train(
        &mut pre,
        &ds.samples,
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 1e-3,
            seed: 1,
        },
    );

    // Held-out family: a small adaptation set and a test set.
    println!("measuring {held_out} variants...");
    let fresh: Vec<(Graph, f64)> = generate_family(held_out, 120, 77)
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            let lat = measure(&m.graph, &platform, 20, 77 ^ (i as u64) << 8).mean_ms;
            (m.graph, lat)
        })
        .collect();
    let fresh_entries: Vec<(&Graph, f64, usize)> =
        fresh.iter().map(|(g, l)| (g, *l, 0usize)).collect();
    let samples = ds.extend_with(&fresh_entries);
    let (pool, test) = samples.split_at(32);
    let t = truths(test);

    // Zero-shot: the pre-trained model, never shown a ResNet.
    let zero = predict_samples(&pre, test);
    println!(
        "\nzero-shot on unseen {held_out}: MAPE {:.1}%, Acc(10%) {:.1}%",
        mape(&zero, &t),
        acc_at(&zero, &t, 0.10)
    );

    // 32-sample adaptation: fine-tune vs from scratch.
    let cfg = TrainConfig {
        epochs: 20,
        batch_size: 8,
        lr: 1e-3,
        seed: 2,
    };
    let (tuned, _) = fine_tune_structures(&pre, pool, cfg);
    let (scratch, _) = train_from_scratch(&pre, pool, cfg);
    let pt = predict_samples(&tuned, test);
    let ps = predict_samples(&scratch, test);
    println!(
        "32 samples, fine-tuned:   MAPE {:.1}%, Acc(10%) {:.1}%",
        mape(&pt, &t),
        acc_at(&pt, &t, 0.10)
    );
    println!(
        "32 samples, from scratch: MAPE {:.1}%, Acc(10%) {:.1}%",
        mape(&ps, &t),
        acc_at(&ps, &t, 0.10)
    );
    println!("\n(paper, Fig. 6: the pre-trained curve dominates, with the largest");
    println!(" gain at the smallest sample counts — up to +30.8% Acc(10%) at 32 samples)");
}
