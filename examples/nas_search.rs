//! Hardware-aware NAS with a latency predictor (§8.7, Fig. 9): search an
//! OFA-style supernet for the best accuracy under a latency budget, using
//! NNLP predictions instead of per-candidate measurements.
//!
//! ```text
//! cargo run --release --example nas_search
//! ```

use nnlqp_ir::{cost, DType, Graph, Rng64};
use nnlqp_nas::{accuracy_surrogate, pareto, LookupTable, SubnetConfig, Supernet};
use nnlqp_predict::train::{train, Dataset, TrainConfig};
use nnlqp_predict::{extract_features, kendall_tau, NnlpConfig, NnlpModel};
use nnlqp_sim::{exec::model_latency_ms, PlatformSpec};

fn main() {
    let platform = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
    let sn = Supernet::default();
    let mut rng = Rng64::new(2024);

    // Train the latency predictor on a modest measured pool.
    println!("measuring 150 training subnets...");
    let pool: Vec<(Graph, f64)> = (0..150)
        .map(|i| {
            let cfg = SubnetConfig::sample(&mut rng);
            let g = sn.subnet_graph(&cfg, &format!("t{i}")).unwrap();
            let l = model_latency_ms(&g, &platform);
            (g, l)
        })
        .collect();
    let entries: Vec<(&Graph, f64, usize)> = pool.iter().map(|(g, l)| (g, *l, 0)).collect();
    let ds = Dataset::build(&entries);
    let mut mrng = Rng64::new(7);
    let mut predictor = NnlpModel::new(
        NnlpConfig {
            hidden: 48,
            head_hidden: 48,
            gnn_layers: 3,
            dropout: 0.05,
            ..Default::default()
        },
        ds.norm.clone(),
        &mut mrng,
    );
    println!("training the latency predictor...");
    train(
        &mut predictor,
        &ds.samples,
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 1e-3,
            seed: 3,
        },
    );
    println!("building the per-block lookup table...");
    let lut = LookupTable::build(&sn, &platform);

    // Search: score 400 candidates with each metric.
    println!("scoring 400 candidate subnets...\n");
    let n = 400;
    let mut preds = Vec::new();
    let mut lookups = Vec::new();
    let mut flops = Vec::new();
    let mut truths = Vec::new();
    let mut accs = Vec::new();
    for i in 0..n {
        let cfg = SubnetConfig::sample(&mut rng);
        let g = sn.subnet_graph(&cfg, &format!("c{i}")).unwrap();
        let gf = cost::graph_cost(&g, DType::F32).flops;
        preds.push(predictor.predict_ms(&extract_features(&g), 0));
        lookups.push(lut.estimate_ms(&cfg));
        flops.push(gf);
        truths.push(model_latency_ms(&g, &platform));
        accs.push(accuracy_surrogate(&cfg, gf / 1e9));
    }
    println!(
        "rank correlation with true latency: FLOPs {:.2}, lookup {:.2}, predictor {:.2}",
        kendall_tau(&flops, &truths),
        kendall_tau(&lookups, &truths),
        kendall_tau(&preds, &truths),
    );

    // Pick the best model under a budget with each selection metric.
    let budget = {
        let mut s = truths.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    };
    println!("\nlatency budget: {budget:.2} ms. Best reachable accuracy by metric:");
    for (name, metric) in [
        ("true latency", &truths),
        ("NNLP predictor", &preds),
        ("lookup table", &lookups),
        ("FLOPs", &flops),
    ] {
        let best =
            pareto::best_accuracy_under_budget(metric, &truths, &accs, budget).unwrap_or(f64::NAN);
        println!("  {name:<15} {best:.2}%");
    }
    println!("\n(paper: the predictor front gains up to +1.2% accuracy over FLOPs");
    println!(" selection and +0.6% over lookup tables at the same latency)");
}
