//! Multi-platform deployment triage — the §9 "how does NNLQP help model
//! design" workflow.
//!
//! ```text
//! cargo run --release --example multi_platform_query
//! ```
//!
//! Compares candidate backbones across every supported platform, then
//! answers the paper's §9 design questions: which hardware is fastest for
//! a fixed model, and what int8 buys over fp32.

use nnlqp::{Nnlqp, QueryParams};
use nnlqp_models::ModelFamily;
use nnlqp_sim::PlatformSpec;

fn main() {
    let system = Nnlqp::builder().reps(10).build();

    let candidates = [
        ModelFamily::ResNet,
        ModelFamily::MobileNetV2,
        ModelFamily::SqueezeNet,
        ModelFamily::EfficientNet,
    ];
    let platforms: Vec<String> = PlatformSpec::table2_platforms()
        .iter()
        .map(|p| p.name.clone())
        .collect();

    // Latency matrix: candidates x platforms.
    println!("latency matrix (ms), batch 1:\n");
    print!("{:<14}", "model");
    for p in &platforms {
        print!("  {:>20}", &p[..p.len().min(20)]);
    }
    println!();
    for fam in candidates {
        let model = fam.canonical().expect("generator is valid");
        print!("{:<14}", fam.name());
        for p in &platforms {
            let r = system
                .query(&QueryParams::by_name(model.clone(), 1, p).expect("platform resolves"))
                .expect("platform registered");
            print!("  {:>20.3}", r.latency_ms);
        }
        println!();
    }

    // §9: choice of hardware — ResNet18 on P4 vs T4 (paper: T4 ~2x faster
    // at int8, so switching devices buys ~50%).
    let resnet = ModelFamily::ResNet.canonical().unwrap();
    let lat = |platform: &str| {
        system
            .query(&QueryParams::by_name(resnet.clone(), 1, platform).expect("platform resolves"))
            .expect("platform registered")
            .latency_ms
    };
    let (p4, t4) = (lat("gpu-P4-trt7.1-int8"), lat("gpu-T4-trt7.1-int8"));
    println!(
        "\nResNet int8 batch 1: P4 {:.3} ms vs T4 {:.3} ms -> switching to T4 saves {:.0}%",
        p4,
        t4,
        (1.0 - t4 / p4) * 100.0
    );

    // §9: choice of data type — fp32 vs int8 on the same silicon.
    let (fp32, int8) = (lat("gpu-T4-trt7.1-fp32"), lat("gpu-T4-trt7.1-int8"));
    println!(
        "ResNet on T4: fp32 {:.3} ms vs int8 {:.3} ms -> int8 speedup {:.2}x",
        fp32,
        int8,
        fp32 / int8
    );

    // §9: choice of hardware class — atlas300 vs mlu270 under int8-ish.
    let a = lat("atlas300-acl-fp16");
    let m = lat("mlu270-neuware-int8");
    println!("atlas300 {a:.3} ms vs mlu270 {m:.3} ms (paper: atlas300 is faster)");

    let stats = system.stats();
    println!(
        "\ndatabase after the session: {} models, {} latency records",
        stats.models, stats.latencies
    );
}
