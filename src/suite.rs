//! Workspace umbrella crate: re-exports the member crates so the
//! integration tests and examples have one import root, and hosts no
//! logic of its own.

pub use nnlqp as core;
pub use nnlqp_analyze as analyze;
pub use nnlqp_db as db;
pub use nnlqp_hash as hash;
pub use nnlqp_ir as ir;
pub use nnlqp_models as models;
pub use nnlqp_nas as nas;
pub use nnlqp_nn as nn;
pub use nnlqp_predict as predict;
pub use nnlqp_sim as sim;
