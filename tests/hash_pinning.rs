//! Pinned graph-hash values over the canonical model families.
//!
//! `graph_hash` keys the evolving database and every exported trace; a
//! changed hash silently orphans stored measurements. These literals were
//! captured from the pre-optimization (per-node-allocating) implementation
//! — the allocation-free CSR walk must reproduce them byte for byte.

use nnlqp_hash::{graph_hash, graph_hash_with, HashAlgo};
use nnlqp_models::ModelFamily;

fn canonical(family: ModelFamily) -> nnlqp_ir::Graph {
    family.canonical().expect("canonical model builds")
}

#[test]
fn pinned_fnv1a_hashes_batch1() {
    for (family, want) in [
        (ModelFamily::SqueezeNet, 0xbc97_fd9a_9c82_bf0d_u64),
        (ModelFamily::ResNet, 0x5aee_cb8c_0d15_6048),
        (ModelFamily::MobileNetV2, 0xdc1d_08b3_85c3_8b4d),
    ] {
        let got = graph_hash(&canonical(family));
        assert_eq!(got, want, "{family:?} batch-1 hash drifted: {got:#018x}");
    }
}

#[test]
fn pinned_fnv1a_hashes_batch4() {
    for (family, want) in [
        (ModelFamily::SqueezeNet, 0xb8b3_963a_5834_3f5b_u64),
        (ModelFamily::ResNet, 0xfaf2_89cd_982c_f1da),
        (ModelFamily::MobileNetV2, 0x4941_6891_4135_a119),
    ] {
        let g = canonical(family).rebatch(4).expect("rebatch to 4");
        let got = graph_hash(&g);
        assert_eq!(got, want, "{family:?} batch-4 hash drifted: {got:#018x}");
    }
}

#[test]
fn pinned_mix64_hashes() {
    for (family, want) in [
        (ModelFamily::SqueezeNet, 0xefac_0fe6_950a_2bf7_u64),
        (ModelFamily::ResNet, 0x77d7_c37d_81a7_298b),
        (ModelFamily::MobileNetV2, 0xb82d_667c_9944_6a42),
    ] {
        let got = graph_hash_with(&canonical(family), HashAlgo::Mix64);
        assert_eq!(got, want, "{family:?} mix64 hash drifted: {got:#018x}");
    }
}
