//! Integration: golden Chrome-trace export for a seeded query.
//!
//! The simulator is fully deterministic under a fixed seed, so the trace
//! a query produces is goldenable byte-for-byte. Beyond the golden
//! comparison the trace must satisfy two structural invariants:
//!
//! - spans on one track (one device stream, the query stages, the farm
//!   pipeline) never overlap in time;
//! - the query-track stage spans tile `cost_s` exactly — observability
//!   must account for all the time the query reports spending.
//!
//! Regenerate the golden after an intentional trace-format change with
//! `NNLQP_BLESS=1 cargo test --test trace_export`.

use nnlqp::{Nnlqp, Platform, QueryParams};
use nnlqp_models::ModelFamily;
use nnlqp_obs::{to_chrome_json, Recorder, Track};
use nnlqp_sim::{DeviceFarm, PlatformSpec};
use std::path::Path;

const SEED: u64 = 0x600D_7ACE;
const GOLDEN: &str = "tests/golden/resnet_t4_trace.json";

fn traced_resnet_query() -> (nnlqp::QueryResult, nnlqp_obs::Timeline) {
    let system = Nnlqp::builder()
        .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
        .reps(5)
        .seed(SEED)
        .build();
    let model = ModelFamily::ResNet.canonical().expect("generator is valid");
    let t4 = Platform::by_name("gpu-T4-trt7.1-fp32").unwrap();
    let rec = Recorder::new();
    let result = system
        .query_traced(&QueryParams::new(model, 1, t4), &rec)
        .expect("traced query succeeds");
    (result, rec.timeline())
}

#[test]
fn spans_never_overlap_and_stages_tile_cost() {
    let (result, timeline) = traced_resnet_query();
    assert!(!result.cache_hit);
    if let Some((a, b)) = timeline.first_overlap() {
        panic!("overlapping spans on {:?}: {a:?} vs {b:?}", a.track);
    }
    let stage_ms: f64 = timeline
        .on_track(&Track::new("query", 0))
        .iter()
        .map(|s| s.dur_ms)
        .sum();
    let cost_ms = result.cost_s * 1.0e3;
    assert!(
        (stage_ms - cost_ms).abs() / cost_ms < 1e-9,
        "query stages sum to {stage_ms} ms but cost_s says {cost_ms} ms"
    );
}

#[test]
fn chrome_export_matches_golden() {
    let (_, timeline) = traced_resnet_query();
    let json = to_chrome_json(&timeline);

    // The export must be well-formed JSON with one complete event per
    // span (the rest are track-naming metadata).
    let v: serde_json::Value = json.parse().expect("chrome trace parses as JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    let complete = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("X"))
        .count();
    assert_eq!(complete, timeline.spans.len());
    for e in events.iter().filter(|e| e["ph"].as_str() == Some("X")) {
        assert!(e["ts"].as_f64().expect("ts") >= 0.0);
        assert!(e["dur"].as_f64().expect("dur") >= 0.0);
    }

    // Determinism: the same seed must reproduce the trace byte-for-byte.
    let (_, again) = traced_resnet_query();
    assert_eq!(json, to_chrome_json(&again));

    // Golden comparison (set NNLQP_BLESS=1 to re-bless after intentional
    // trace-format changes).
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN);
    if std::env::var_os("NNLQP_BLESS").is_some() {
        std::fs::write(&path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {}: {e}", path.display()));
    assert_eq!(
        json, golden,
        "chrome trace drifted from {GOLDEN}; re-bless with NNLQP_BLESS=1 if intentional"
    );
}

#[test]
fn cache_hit_trace_has_only_lookup_stages() {
    let system = Nnlqp::builder()
        .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
        .reps(5)
        .seed(SEED)
        .build();
    let model = ModelFamily::ResNet.canonical().unwrap();
    let params = QueryParams::by_name(model, 1, "gpu-T4-trt7.1-fp32").unwrap();
    system.query(&params).unwrap();

    let rec = Recorder::new();
    let hit = system.query_traced(&params, &rec).unwrap();
    assert!(hit.cache_hit);
    let timeline = rec.timeline();
    let names: Vec<&str> = timeline.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["hash", "db-lookup"]);
    let stage_ms: f64 = timeline.spans.iter().map(|s| s.dur_ms).sum();
    let cost_ms = hit.cost_s * 1.0e3;
    assert!((stage_ms - cost_ms).abs() / cost_ms < 1e-9);
}
