//! Strict-mode admission gating, end to end: a graph whose static memory
//! footprint cannot fit the target platform is rejected by the analyzer
//! BEFORE any farm measurement or database write, the rejection is its
//! own terminal metrics class, and the admission report is memoized per
//! (graph hash, platform) so the repeat query pays nothing.

use nnlqp::{metric_names, Nnlqp, QueryError, QueryParams};
use nnlqp_ir::{Graph, GraphBuilder, Shape};
use nnlqp_serve::Source;
use nnlqp_serve::{metric_names as serve_metric_names, LatencyService, ServeConfig, ServeError};
use nnlqp_sim::{DeviceFarm, Platform, PlatformSpec};
use std::sync::Arc;

/// 128 MiB of device memory (the smallest capacity in the registry).
const EDGE: &str = "rv1109-rknn-int8";
const GPU: &str = "gpu-T4-trt7.1-fp32";

/// A structurally valid graph that cannot run on the edge NPU: one conv
/// output alone is 512 * 512 * 512 = 128 MiB at int8, already the whole
/// device — with its input and successor live, the peak is far past it.
fn oversized() -> Graph {
    let mut b = GraphBuilder::new("vram-hog", Shape::nchw(1, 3, 512, 512));
    let c = b.conv(None, 512, 1, 1, 0, 1).unwrap();
    b.relu(c).unwrap();
    b.finish().unwrap()
}

/// A graph any platform fits.
fn small() -> Graph {
    let mut b = GraphBuilder::new("small", Shape::nchw(1, 3, 16, 16));
    let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
    b.relu(c).unwrap();
    b.finish().unwrap()
}

fn strict_system() -> Arc<Nnlqp> {
    let platforms = [
        PlatformSpec::by_name(EDGE).unwrap(),
        PlatformSpec::by_name(GPU).unwrap(),
    ];
    Arc::new(
        Nnlqp::builder()
            .farm(DeviceFarm::new(&platforms, 2))
            .reps(3)
            .strict(true)
            .build(),
    )
}

#[test]
fn facade_rejects_infeasible_graph_before_measurement() {
    let system = strict_system();
    let params = QueryParams::by_name(oversized(), 1, EDGE).unwrap();
    match system.query(&params).unwrap_err() {
        QueryError::Lint(report) => {
            assert!(report.contains("NNL301"), "{report}");
            assert!(report.contains("capacity"), "{report}");
        }
        other => panic!("expected Lint rejection, got {other:?}"),
    }
    // Nothing reached the farm or the evolving database.
    assert_eq!(system.farm_measurements(), 0);
    assert_eq!(system.stats().models, 0);
    assert_eq!(system.stats().latencies, 0);
    // The repeat rejection is served from the memoized report.
    assert!(matches!(system.query(&params), Err(QueryError::Lint(_))));
    let snap = system.registry().snapshot();
    assert_eq!(snap.counter(metric_names::LINT_RUNS), 1);
    assert_eq!(snap.counter(metric_names::LINT_CACHE_HITS), 1);
    // The same graph is admissible where the memory exists.
    let on_gpu = QueryParams::by_name(oversized(), 1, GPU).unwrap();
    assert!(system.query(&on_gpu).unwrap().latency_ms > 0.0);
}

#[test]
fn serve_counts_lint_rejections_as_their_own_terminal_class() {
    let system = strict_system();
    let svc = LatencyService::start(
        Arc::clone(&system),
        ServeConfig {
            workers: 2,
            queue_depth: 8,
            ..Default::default()
        },
    );
    let hog = Arc::new(oversized());

    match svc.query(&hog, EDGE, 1).unwrap_err() {
        ServeError::LintRejected(report) => assert!(report.contains("NNL301"), "{report}"),
        other => panic!("expected LintRejected, got {other:?}"),
    }
    // Rejected pre-measurement: no farm call, no db write, no cache fill.
    assert_eq!(system.farm_measurements(), 0);
    assert_eq!(system.stats().models, 0);
    assert_eq!(system.stats().latencies, 0);
    assert_eq!(svc.cache_len(), 0);
    let m = svc.metrics();
    assert_eq!(m.lint_rejected, 1);
    assert_eq!(m.measured, 0);
    assert!(m.balanced(), "{m:?}");

    // The repeat query is rejected from the memoized admission report.
    assert!(matches!(
        svc.query(&hog, EDGE, 1),
        Err(ServeError::LintRejected(_))
    ));
    let snap = system.registry().snapshot();
    assert_eq!(snap.counter(metric_names::LINT_RUNS), 1);
    assert_eq!(snap.counter(metric_names::LINT_CACHE_HITS), 1);
    assert_eq!(snap.counter(serve_metric_names::LINT_REJECTED), 2);

    // Clean traffic still serves, on both platforms.
    let ok = Arc::new(small());
    assert_eq!(svc.query(&ok, EDGE, 1).unwrap().source, Source::Measured);
    assert_eq!(svc.query(&ok, GPU, 1).unwrap().source, Source::Measured);
    let m = svc.metrics();
    assert_eq!(m.misses, 2);
    assert_eq!(m.lint_rejected, 2);
    assert!(m.balanced(), "{m:?}");
    svc.shutdown().unwrap();
}

#[test]
fn non_strict_serve_does_not_gate() {
    // Without strict mode the same graph measures fine — the gate is an
    // opt-in admission policy, not a hard limit of the simulator.
    let platforms = [PlatformSpec::by_name(EDGE).unwrap()];
    let system = Arc::new(
        Nnlqp::builder()
            .farm(DeviceFarm::new(&platforms, 1))
            .reps(2)
            .build(),
    );
    let svc = LatencyService::start(Arc::clone(&system), ServeConfig::default());
    let served = svc.query(&Arc::new(oversized()), EDGE, 1).unwrap();
    assert!(served.latency_ms > 0.0);
    assert_eq!(svc.metrics().lint_rejected, 0);
    assert_eq!(
        system
            .registry()
            .snapshot()
            .counter(metric_names::LINT_RUNS),
        0
    );
    svc.shutdown().unwrap();
}

#[test]
fn admission_report_is_queryable_without_a_query() {
    // Serving layers can pre-screen: the public analyze_admission entry
    // returns the full report (and primes the cache the query path uses).
    let system = strict_system();
    let g = oversized();
    let hash = nnlqp_hash::graph_hash(&g);
    let spec = Platform::by_name(EDGE).unwrap();
    let report = system.analyze_admission(&g, hash, spec.spec());
    assert!(report.has_errors());
    assert!(report.has_code(nnlqp_analyze::Code::MemoryInfeasible));
    // The strict query path reuses the primed entry.
    let params = QueryParams::by_name(g, 1, EDGE).unwrap();
    assert!(matches!(system.query(&params), Err(QueryError::Lint(_))));
    let snap = system.registry().snapshot();
    assert_eq!(snap.counter(metric_names::LINT_RUNS), 1);
    assert_eq!(snap.counter(metric_names::LINT_CACHE_HITS), 1);
}
