//! Concurrency contract of the serving layer.
//!
//! N client threads hammer the service with overlapping keys; the suite
//! asserts the three properties the design promises:
//!
//! 1. **Singleflight**: concurrent misses on the same key share one farm
//!    measurement — the farm executes exactly one measurement per
//!    distinct key.
//! 2. **Accounting**: the terminal-class counters partition the request
//!    stream (hits + misses + degraded + rejected + errors == requests).
//! 3. **Determinism**: measurements are key-seeded, so a separately
//!    constructed system with the same seed serves identical latencies
//!    regardless of thread interleaving.

use nnlqp::Nnlqp;
use nnlqp_ir::Graph;
use nnlqp_models::ModelFamily;
use nnlqp_serve::{LatencyService, ServeConfig, Source};
use nnlqp_sim::{DeviceFarm, PlatformSpec};
use std::sync::{Arc, Barrier};

const PLATFORM: &str = "gpu-T4-trt7.1-fp32";
const SEED: u64 = 2024;

fn service(workers: usize) -> (Arc<Nnlqp>, LatencyService) {
    let system = Arc::new(
        Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 4))
            .reps(3)
            .seed(SEED)
            .build(),
    );
    let cfg = ServeConfig {
        workers,
        queue_depth: 64,
        cache_capacity: 512,
        cache_shards: 4,
        degrade_backlog: usize::MAX, // degrade disabled: every miss measures
        ..Default::default()
    };
    (Arc::clone(&system), LatencyService::start(system, cfg))
}

fn shared_models(count: usize) -> Vec<Arc<Graph>> {
    nnlqp_models::generate_family(ModelFamily::SqueezeNet, count, 7)
        .into_iter()
        .map(|m| Arc::new(m.graph))
        .collect()
}

/// All clients query the same keys through a barrier: every duplicated
/// miss must coalesce onto the leader's measurement.
#[test]
fn coalesced_misses_measure_each_key_exactly_once() {
    const CLIENTS: usize = 8;
    const MODELS: usize = 5;
    let (system, svc) = service(4);
    let models = shared_models(MODELS);
    let barrier = Barrier::new(CLIENTS);
    let latencies: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let svc = &svc;
                let models = models.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    models
                        .iter()
                        .map(|m| {
                            svc.query(m, PLATFORM, 1)
                                .expect("query succeeds")
                                .latency_ms
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // The farm executed exactly one measurement per distinct key, no
    // matter how the 40 requests interleaved.
    assert_eq!(system.farm_measurements(), MODELS as u64);

    // Every client observed identical latencies per key.
    for client in &latencies[1..] {
        assert_eq!(client, &latencies[0]);
    }

    let m = svc.metrics();
    assert_eq!(m.requests, (CLIENTS * MODELS) as u64);
    assert_eq!(m.measured, MODELS as u64);
    assert!(
        m.balanced(),
        "terminal classes must partition requests: {m:?}"
    );
    assert_eq!(m.rejected + m.errors + m.degraded, 0);
    // Requests that did not lead a measurement either coalesced onto a
    // flight or arrived late enough to hit a cache tier.
    assert_eq!(m.hot_hits + m.db_hits + m.misses, m.requests);
}

/// Measurement seeds derive from the key, not arrival order: a fresh
/// system with the same base seed reproduces the exact latencies even
/// with a different worker count and thread schedule.
#[test]
fn served_latencies_are_deterministic_given_seed() {
    let models = shared_models(4);
    let run = |workers: usize| -> Vec<f64> {
        let (_system, svc) = service(workers);
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            // A second client races on the same keys to shuffle timing.
            let racer = {
                let models = models.clone();
                let svc = &svc;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for m in models.iter().rev() {
                        let _ = svc.query(m, PLATFORM, 1);
                    }
                })
            };
            barrier.wait();
            let out: Vec<f64> = models
                .iter()
                .map(|m| {
                    svc.query(m, PLATFORM, 1)
                        .expect("query succeeds")
                        .latency_ms
                })
                .collect();
            racer.join().unwrap();
            out
        })
    };
    let first = run(1);
    let second = run(4);
    assert_eq!(first, second);
    assert!(first.iter().all(|ms| ms.is_finite() && *ms > 0.0));
}

/// A request arriving after a measurement completes is served from the
/// hot cache and never re-measures.
#[test]
fn repeat_queries_hit_the_hot_cache() {
    let (system, svc) = service(2);
    let model = &shared_models(1)[0];
    let first = svc.query(model, PLATFORM, 1).unwrap();
    assert_eq!(first.source, Source::Measured);
    for _ in 0..5 {
        let hit = svc.query(model, PLATFORM, 1).unwrap();
        assert_eq!(hit.source, Source::HotCache);
        assert_eq!(hit.latency_ms, first.latency_ms);
    }
    assert_eq!(system.farm_measurements(), 1);
    let m = svc.metrics();
    assert_eq!((m.requests, m.hot_hits, m.misses), (6, 5, 1));
    assert!(m.balanced());
}
