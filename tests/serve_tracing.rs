//! Integration: request-scoped tracing through the serving layer.
//!
//! The contract under test is the tiling invariant — every served
//! response's stage durations sum **exactly** to its end-to-end latency
//! (integer nanoseconds, no float drift) — across all four response
//! paths: hot-cache hit, measured miss (leader), coalesced follower, and
//! the degraded prediction tier. Plus the surrounding observability:
//! monotone request ids, the exemplar reservoir, Chrome-trace export,
//! and the wall-time histograms the traces feed.

use nnlqp::{Nnlqp, Platform, TrainPredictorConfig};
use nnlqp_ir::Graph;
use nnlqp_models::ModelFamily;
use nnlqp_obs::{tail_attribution, timeline_of, to_chrome_json, RequestTrace};
use nnlqp_serve::{metric_names, LatencyService, ServeConfig, Source};
use nnlqp_sim::{DeviceFarm, PlatformSpec};
use std::sync::{Arc, Barrier};

const PLATFORM: &str = "gpu-T4-trt7.1-fp32";
const SEED: u64 = 77;

fn system() -> Arc<Nnlqp> {
    Arc::new(
        Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 2))
            .reps(3)
            .seed(SEED)
            .build(),
    )
}

fn service_over(system: Arc<Nnlqp>, degrade_backlog: usize) -> LatencyService {
    LatencyService::start(
        system,
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            cache_capacity: 128,
            cache_shards: 2,
            degrade_backlog,
            ..Default::default()
        },
    )
}

fn models(count: usize, seed: u64) -> Vec<Arc<Graph>> {
    nnlqp_models::generate_family(ModelFamily::SqueezeNet, count, seed)
        .into_iter()
        .map(|m| Arc::new(m.graph))
        .collect()
}

fn stage_names(t: &RequestTrace) -> Vec<&'static str> {
    t.stages.iter().map(|s| s.name).collect()
}

#[test]
fn measured_hot_and_db_paths_tile_exactly() {
    let sys = system();
    let svc = service_over(Arc::clone(&sys), usize::MAX);
    let model = &models(1, 3)[0];

    // Measured miss: the leader's trace splices the worker's boundaries.
    let (res, trace) = svc.query_traced(model, PLATFORM, 1);
    assert_eq!(res.unwrap().source, Source::Measured);
    assert_eq!(trace.class, "measured");
    assert!(trace.tiles_exactly(), "measured: {trace:?}");
    for want in [
        "resolve",
        "hot_cache",
        "db_lookup",
        "enqueue",
        "queue_wait",
        "measure",
        "db_write",
        "publish",
        "response",
    ] {
        assert!(
            trace.stage_ns(want).is_some(),
            "measured trace missing stage {want}: {:?}",
            stage_names(&trace)
        );
    }
    assert!(trace.total_ns > 0);

    // Hot-cache hit: short path, still tiles.
    let (res, hot) = svc.query_traced(model, PLATFORM, 1);
    assert_eq!(res.unwrap().source, Source::HotCache);
    assert_eq!(hot.class, "hot_cache");
    assert!(hot.tiles_exactly());
    assert_eq!(stage_names(&hot), vec!["resolve", "hot_cache"]);
    assert!(hot.request_id > trace.request_id, "ids are monotone");

    // Database hit: a fresh service over the same (now warmed) system
    // misses its own hot cache and promotes from the db.
    let svc2 = service_over(Arc::clone(&sys), usize::MAX);
    let (res, db) = svc2.query_traced(model, PLATFORM, 1);
    assert_eq!(res.unwrap().source, Source::Database);
    assert_eq!(db.class, "db_hit");
    assert!(db.tiles_exactly());
    assert_eq!(stage_names(&db), vec!["resolve", "hot_cache", "db_lookup"]);

    // The traces fed the wall-time histograms: one observation per
    // request, and the worker recorded the enqueue→dequeue wait.
    let snap = sys.registry().snapshot();
    let wall = &snap.histograms[metric_names::REQUEST_WALL_MS];
    assert_eq!(wall.count, 3);
    assert!(snap.histograms[metric_names::QUEUE_WAIT_MS].count >= 1);
    let queue_stage = format!("{}queue_wait", metric_names::STAGE_MS_PREFIX);
    assert_eq!(snap.histograms[&queue_stage].count, 1);
}

#[test]
fn coalesced_followers_tile_with_a_single_wait_stage() {
    const CLIENTS: usize = 6;
    const ATTEMPTS: u64 = 25;
    let svc = service_over(system(), usize::MAX);

    // Whether a thread coalesces is a race against the leader's
    // measurement, so drive fresh keys until one flight has followers.
    for attempt in 0..ATTEMPTS {
        let model = &models(1, 11 + attempt)[0];
        let barrier = Barrier::new(CLIENTS);
        let traces: Vec<RequestTrace> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    let (svc, model, barrier) = (&svc, Arc::clone(model), &barrier);
                    s.spawn(move || {
                        barrier.wait();
                        let (res, trace) = svc.query_traced(&model, PLATFORM, 1);
                        res.expect("query succeeds");
                        trace
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for t in &traces {
            assert!(t.tiles_exactly(), "every path tiles: {t:?}");
        }
        let coalesced: Vec<&RequestTrace> =
            traces.iter().filter(|t| t.class == "coalesced").collect();
        if coalesced.is_empty() {
            continue;
        }
        for t in &coalesced {
            // A follower's wait is one undecomposable stage — no spliced
            // worker boundaries, which could predate its join.
            assert!(t.stage_ns("coalesce_wait").is_some());
            assert!(t.stage_ns("queue_wait").is_none());
            assert!(t.stage_ns("measure").is_none());
        }
        // Exactly one request led the flight and owns the worker's
        // stages; late arrivals hit the freshly published hot cache.
        let leaders = traces
            .iter()
            .filter(|t| t.class == "measured" && t.stage_ns("measure").is_some())
            .count();
        assert_eq!(leaders, 1);
        return;
    }
    panic!("no flight coalesced across {ATTEMPTS} attempts × {CLIENTS} clients");
}

#[test]
fn degraded_path_splits_embed_and_head_stages() {
    let sys = system();
    // Ground truth + a trained head, so the degrade tier can serve.
    let warm: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 8, 21)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    sys.warm_cache(&warm, &Platform::by_name(PLATFORM).unwrap(), 1)
        .unwrap();
    sys.train_predictor(
        &[PLATFORM],
        TrainPredictorConfig {
            epochs: 4,
            hidden: 16,
            gnn_layers: 2,
            ..Default::default()
        },
    )
    .unwrap();

    // degrade_backlog 0: every would-be measurement degrades instead.
    let svc = service_over(Arc::clone(&sys), 0);
    let fresh = &models(1, 99)[0];
    let (res, trace) = svc.query_traced(fresh, PLATFORM, 1);
    let served = res.unwrap();
    assert_eq!(served.source, Source::Predicted);
    assert!(served.approximate);
    assert_eq!(trace.class, "degraded");
    assert!(trace.tiles_exactly(), "degraded: {trace:?}");
    assert!(trace.stage_ns("embed_cache").is_some());
    assert!(trace.stage_ns("predict_head").is_some());
    assert!(trace.stage_ns("queue_wait").is_none());
}

#[test]
fn exemplar_reservoir_retains_slowest_and_exports_chrome_json() {
    let svc = service_over(system(), usize::MAX);
    let ms = models(3, 31);
    let mut traces = Vec::new();
    for m in &ms {
        traces.push(svc.query_traced(m, PLATFORM, 1).1); // measured
        traces.push(svc.query_traced(m, PLATFORM, 1).1); // hot hit
    }
    let snap = svc.exemplars().snapshot();
    assert!(snap.contains_key("measured"));
    assert!(snap.contains_key("hot_cache"));
    for class_traces in snap.values() {
        // Slowest-first within each class, every one tiling.
        for w in class_traces.windows(2) {
            assert!(w[0].total_ns >= w[1].total_ns);
        }
        assert!(class_traces.iter().all(RequestTrace::tiles_exactly));
    }
    // The slowest class exports through the existing Chrome-trace
    // writer, and the JSON is well-formed.
    let slowest = svc.exemplars().slowest_class().unwrap();
    assert_eq!(slowest, "measured", "measuring dwarfs cache hits");
    let json = to_chrome_json(&timeline_of(&snap[slowest]));
    let doc: serde_json::Value = json.parse().expect("chrome trace is valid JSON");
    let events = doc["traceEvents"].as_array().expect("trace events");
    assert!(events.iter().any(|e| e["name"].as_str() == Some("request")));
    assert!(events.iter().any(|e| e["name"].as_str() == Some("measure")));

    // Tail attribution over the mixed workload: shares tile the tail.
    let shares = tail_attribution(&traces, 0.5);
    assert!(!shares.is_empty());
    let sum: f64 = shares.iter().map(|s| s.share_pct).sum();
    assert!((sum - 100.0).abs() < 1e-6, "shares sum to 100%: {sum}");
}
