//! Property-based integration tests: invariants that must hold across
//! crate boundaries for randomly generated corpus models.

use nnlqp_hash::graph_hash;
use nnlqp_ir::{serialize, Rng64};
use nnlqp_models::{family::CORPUS_FAMILIES, ModelFamily};
use nnlqp_sim::{exec, fusion, PlatformSpec};
use proptest::prelude::*;

fn arbitrary_corpus_model() -> impl Strategy<Value = nnlqp_ir::Graph> {
    (0usize..CORPUS_FAMILIES.len(), any::<u64>()).prop_map(|(fi, seed)| {
        let fam: ModelFamily = CORPUS_FAMILIES[fi];
        let mut r = Rng64::new(seed);
        fam.sample("prop", &mut r).expect("generators are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serialization must preserve the graph hash — otherwise the database
    /// cache would miss after a round trip through storage.
    #[test]
    fn hash_stable_across_serialization(g in arbitrary_corpus_model()) {
        let h1 = graph_hash(&g);
        let g2 = serialize::decode(serialize::encode(&g)).unwrap();
        prop_assert_eq!(h1, graph_hash(&g2));
    }

    /// Fusion must assign every node to exactly one kernel for every
    /// generator output.
    #[test]
    fn fusion_partitions_all_corpus_models(g in arbitrary_corpus_model()) {
        let kernels = fusion::fuse(&g);
        let mut seen = vec![0u8; g.len()];
        for k in &kernels {
            for n in &k.nodes {
                seen[n.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// Kernel additivity is violated in the expected direction on every
    /// platform for every model (Fig. 2 generalized).
    #[test]
    fn additivity_violation_holds_on_all_platforms(g in arbitrary_corpus_model()) {
        for p in [
            "gpu-T4-trt7.1-fp32",
            "cpu-openppl-fp32",
            "hi3559A-nnie11-int8",
            "rv1109-rknn-int8",
        ] {
            let spec = PlatformSpec::by_name(p).unwrap();
            let model = exec::model_latency_ms(&g, &spec);
            let sum = exec::sum_kernel_latencies_ms(&g, &spec);
            prop_assert!(model.is_finite() && model > 0.0);
            prop_assert!(sum >= model, "{p}: sum {sum} < model {model}");
        }
    }

    /// Latency is monotone in precision on the same silicon: fp32 is
    /// never faster than int8 on the T4 (same bandwidth, higher compute
    /// and bytes).
    #[test]
    fn int8_not_slower_than_fp32(g in arbitrary_corpus_model()) {
        let f32p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let i8p = PlatformSpec::by_name("gpu-T4-trt7.1-int8").unwrap();
        let lf = exec::model_latency_ms(&g, &f32p);
        let li = exec::model_latency_ms(&g, &i8p);
        prop_assert!(li <= lf * 1.05, "int8 {li} vs fp32 {lf}");
    }

    /// Feature extraction is total over the corpus and dimensions agree
    /// with the graph.
    #[test]
    fn features_extract_for_all_corpus_models(g in arbitrary_corpus_model()) {
        let f = nnlqp_predict::extract_features(&g);
        prop_assert_eq!(f.nodes.rows, g.len());
        prop_assert_eq!(f.adj.n(), g.len());
        prop_assert!(f.stat.iter().all(|v| v.is_finite() && *v >= 0.0));
        prop_assert!(f.nodes.data.iter().all(|v| v.is_finite()));
    }

    /// Every generated corpus model survives the full static-analysis
    /// pipeline — IR lints, memory feasibility, fusion legality, cost
    /// sanity, and schedule hazards — with zero errors on a multi-stream
    /// platform.
    #[test]
    fn corpus_models_analyze_without_errors(g in arbitrary_corpus_model()) {
        let spec = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let report = nnlqp_analyze::analyze(&g, Some(&spec));
        prop_assert!(
            !report.has_errors(),
            "analyzer found errors:\n{}",
            report.render_text()
        );
        // All five pass families must actually have run.
        prop_assert_eq!(report.passes_run.len(), 5);
    }

    /// The analyzer is deterministic: the same graph produces a
    /// byte-identical JSON report on every run, including when the
    /// analyses execute concurrently from many threads. The admission
    /// cache and the golden-file tests both depend on this.
    #[test]
    fn analysis_reports_are_byte_identical_across_runs_and_threads(
        g in arbitrary_corpus_model(),
        threads in 2usize..6,
    ) {
        let spec = PlatformSpec::by_name("rv1109-rknn-int8").unwrap();
        let reference = nnlqp_analyze::analyze(&g, Some(&spec)).render_json();
        // Repeated sequential runs.
        for _ in 0..3 {
            prop_assert_eq!(
                nnlqp_analyze::analyze(&g, Some(&spec)).render_json(),
                reference.clone()
            );
        }
        // Concurrent runs over shared references.
        let renders = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| s.spawn(|| nnlqp_analyze::analyze(&g, Some(&spec)).render_json()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("analysis thread panicked"))
                .collect::<Vec<String>>()
        });
        for r in renders {
            prop_assert_eq!(r, reference.clone());
        }
    }

    /// The database cache key (hash, platform, batch) is sound: inserting
    /// then looking up through an independently deserialized copy of the
    /// graph hits.
    #[test]
    fn db_cache_key_roundtrip(g in arbitrary_corpus_model()) {
        let db = nnlqp_db::Database::new();
        let (mid, _) = db.insert_model(&g);
        let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
        db.insert_latency(mid, pid, 1, 2.5, 0.0, 0, 0).unwrap();
        let g2 = serialize::decode(serialize::encode(&g)).unwrap();
        let hit = db.lookup_latency(graph_hash(&g2), pid, 1);
        prop_assert!(hit.is_some());
    }
}
