//! Integration: online shadow-evaluation quality vs. the offline
//! evaluator, and drift-triggered retraining through the serving stack.
//!
//! Two acceptance criteria from the quality-monitoring subsystem:
//!
//! 1. The online rolling window must report MAPE / Acc(δ) **bitwise**
//!    equal to the offline evaluator (`nnlqp-predict`'s re-exported
//!    formulas) over the same `(predicted, measured)` pairs — one shared
//!    implementation, not two drifting copies.
//! 2. A degraded predictor must raise a drift alert through the shadow
//!    evaluator, the alert must fire a retrain (with the cadence trigger
//!    disabled), and the retrain must restore the windowed MAPE below the
//!    drift threshold.

use nnlqp::{MonitorConfig, Nnlqp, Platform, QualityMonitor, TrainPredictorConfig};
use nnlqp_ir::Graph;
use nnlqp_models::ModelFamily;
use nnlqp_obs::FieldValue;
use nnlqp_predict::metrics::{acc_at, mape};
use nnlqp_serve::{LatencyService, ServeConfig};
use nnlqp_sim::{DeviceFarm, PlatformSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PLATFORM: &str = "gpu-T4-trt7.1-fp32";

fn farm_system(reps: usize) -> Arc<Nnlqp> {
    Arc::new(
        Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 2))
            .reps(reps)
            .build(),
    )
}

/// Measure `n` models and predict them with a freshly trained head,
/// returning real `(predicted, measured)` pairs.
fn real_pairs(system: &Nnlqp, models: &[Graph]) -> Vec<(f64, f64)> {
    system
        .warm_cache(models, &Platform::by_name(PLATFORM).unwrap(), 1)
        .unwrap();
    system
        .train_predictor(
            &[PLATFORM],
            TrainPredictorConfig {
                epochs: 4,
                hidden: 16,
                gnn_layers: 2,
                ..Default::default()
            },
        )
        .unwrap();
    models
        .iter()
        .map(|g| {
            let predicted = system.predict_effective(g, PLATFORM).unwrap().latency_ms;
            let measured = system
                .query(&nnlqp::QueryParams::by_name(g.clone(), 1, PLATFORM).unwrap())
                .unwrap()
                .latency_ms;
            (predicted, measured)
        })
        .collect()
}

#[test]
fn online_window_matches_offline_evaluator_bitwise() {
    let system = farm_system(3);
    let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 8, 5)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    let pairs = real_pairs(&system, &models);

    // Online: the monitor ingests the pairs one by one.
    let monitor = QualityMonitor::new(
        MonitorConfig {
            window: pairs.len(),
            ..Default::default()
        },
        Arc::clone(system.registry()),
    );
    for &(p, t) in &pairs {
        monitor.record(PLATFORM, p, t);
    }
    let online = monitor.report();
    let q = &online.platforms[PLATFORM];

    // Offline: the predict crate's evaluator over the same slices.
    let (preds, truths): (Vec<f64>, Vec<f64>) = pairs.iter().copied().unzip();
    assert_eq!(
        q.windowed_mape_pct.to_bits(),
        mape(&preds, &truths).to_bits(),
        "online MAPE must be bitwise-equal to the offline evaluator"
    );
    assert_eq!(
        q.acc10_pct.to_bits(),
        acc_at(&preds, &truths, 0.10).to_bits(),
        "online Acc(10%) must be bitwise-equal to the offline evaluator"
    );
    assert_eq!(
        q.acc5_pct.to_bits(),
        acc_at(&preds, &truths, 0.05).to_bits(),
        "online Acc(5%) must be bitwise-equal to the offline evaluator"
    );
}

#[test]
fn degraded_predictor_drift_alert_retrains_and_recovers() {
    let system = farm_system(3);
    let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 10, 3)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    system
        .warm_cache(&models, &Platform::by_name(PLATFORM).unwrap(), 1)
        .unwrap();
    // Inject a degraded predictor: zero training epochs leaves randomly
    // initialised heads whose predictions are garbage.
    system
        .train_predictor(
            &[PLATFORM],
            TrainPredictorConfig {
                epochs: 0,
                ..Default::default()
            },
        )
        .unwrap();

    let threshold_pct = 50.0;
    let cfg = ServeConfig {
        workers: 2,
        queue_depth: 8,
        cache_capacity: 64,
        cache_shards: 2,
        degrade_backlog: usize::MAX,
        monitor: Some(MonitorConfig {
            sample_every: 1,
            min_samples: 4,
            mape_threshold_pct: threshold_pct,
            ..Default::default()
        }),
        retrain_after: 0, // cadence off: drift is the only trigger
        retrain_platforms: vec![PLATFORM.to_string()],
        train: TrainPredictorConfig {
            epochs: 40,
            hidden: 32,
            gnn_layers: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let svc = LatencyService::start(Arc::clone(&system), cfg);
    // Serving the warmed models produces measurement-backed db answers;
    // each is shadow-evaluated against the degraded predictor.
    for g in &models {
        svc.query(&Arc::new(g.clone()), PLATFORM, 1).unwrap();
    }

    // The drift alert must fire and trigger a retrain.
    let deadline = Instant::now() + Duration::from_secs(60);
    let events = loop {
        let events = svc.events().expect("event log on").snapshot();
        if events.iter().any(|e| e.kind == "retrain_finish") {
            break events;
        }
        assert!(
            Instant::now() < deadline,
            "drift never triggered a retrain: {:?}",
            svc.metrics()
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    let alert = events
        .iter()
        .find(|e| e.kind == "drift_alert")
        .expect("drift alert recorded");
    match alert.field("windowed_mape_pct") {
        Some(FieldValue::F64(m)) => assert!(
            *m > threshold_pct,
            "alert fired below threshold: {m} <= {threshold_pct}"
        ),
        other => panic!("drift_alert lacks windowed_mape_pct: {other:?}"),
    }
    assert!(svc.metrics().retrains >= 1);

    // Recovery: the retrain re-scores the replay buffer under the new
    // model; windowed MAPE must fall back below the drift threshold.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let report = svc.quality().expect("monitor on");
        let q = report.platforms.get(PLATFORM);
        if q.is_some_and(|q| !q.drifting && q.windowed_mape_pct <= threshold_pct) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "windowed MAPE never recovered: {report:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    svc.shutdown().unwrap();
}
