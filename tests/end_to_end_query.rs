//! Integration: the full NNLQ query path across ir, hash, db, sim and
//! core — measure, cache, persist, reload, re-hit.

use nnlqp::{Nnlqp, QueryParams};
use nnlqp_db::persist;
use nnlqp_hash::graph_hash;
use nnlqp_models::ModelFamily;
use nnlqp_sim::{DeviceFarm, PlatformSpec};

/// Every model a test feeds into the system must be clean under the
/// static analyzer — the same bar `--strict` queries enforce.
fn assert_lints_clean(g: &nnlqp_ir::Graph, platform: &str) {
    let spec = PlatformSpec::by_name(platform).unwrap();
    let report = nnlqp_analyze::analyze(g, Some(&spec));
    assert!(
        !report.has_errors(),
        "{} should lint clean:\n{}",
        g.name,
        report.render_text()
    );
}

fn system() -> Nnlqp {
    Nnlqp::builder()
        .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 2))
        .reps(5)
        .build()
}

#[test]
fn query_cache_persist_reload_cycle() {
    let s = system();
    let models: Vec<_> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 5, 1)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    // Measure all on two platforms.
    for platform in ["gpu-T4-trt7.1-fp32", "cpu-openppl-fp32"] {
        for m in &models {
            assert_lints_clean(m, platform);
            let r = s
                .query(&QueryParams::by_name(m.clone(), 1, platform).unwrap())
                .unwrap();
            assert!(!r.cache_hit);
        }
    }
    assert_eq!(s.stats().models, 5);
    assert_eq!(s.stats().latencies, 10);

    // Snapshot, reload into a second deployment, verify cache hits with
    // identical latencies.
    let bytes = persist::to_bytes(&s.db);
    let db2 = persist::from_bytes(bytes).unwrap();
    for m in &models {
        let hash = graph_hash(m);
        let spec = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let pid = db2.get_or_create_platform(&spec.hardware, &spec.software, spec.dtype.name());
        let hit = db2
            .lookup_latency(hash, pid, 1)
            .expect("reloaded cache hit");
        assert!(hit.cost_ms > 0.0);
    }
}

#[test]
fn cache_is_keyed_on_structure_not_name() {
    let s = system();
    let mut a = ModelFamily::ResNet.canonical().unwrap();
    let r1 = s
        .query(&QueryParams::by_name(a.clone(), 1, "gpu-T4-trt7.1-fp32").unwrap())
        .unwrap();
    // Rename: structurally identical model must hit.
    a.name = "some-other-name".into();
    let r2 = s
        .query(&QueryParams::by_name(a, 1, "gpu-T4-trt7.1-fp32").unwrap())
        .unwrap();
    assert!(r2.cache_hit);
    assert_eq!(r1.latency_ms, r2.latency_ms);
}

#[test]
fn measured_latencies_match_simulator_ground_truth() {
    // The whole stack must preserve the simulator's values within
    // measurement noise.
    let s = Nnlqp::builder()
        .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 2))
        .reps(5)
        .strict(true)
        .build();
    let g = ModelFamily::MobileNetV2.canonical().unwrap();
    let spec = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
    assert_lints_clean(&g, &spec.name);
    let truth = nnlqp_sim::exec::model_latency_ms(&g, &spec);
    // Strict mode runs the analyzer inside `query` and rejects models
    // with errors; a clean canonical model must pass unimpeded.
    let r = s
        .query(&QueryParams::by_name(g, 1, &spec.name).unwrap())
        .unwrap();
    assert!(
        (r.latency_ms - truth).abs() / truth < 0.05,
        "measured {} vs truth {truth}",
        r.latency_ms
    );
}

#[test]
fn hit_ratio_improves_aggregate_cost() {
    // The Table 2 effect at integration level: a warm cache answers the
    // same workload dramatically faster.
    let s = system();
    let models: Vec<_> = nnlqp_models::generate_family(ModelFamily::AlexNet, 6, 9)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    let run_cost = |sys: &Nnlqp| -> f64 {
        models
            .iter()
            .map(|m| {
                sys.query(&QueryParams::by_name(m.clone(), 1, "gpu-T4-trt7.1-fp32").unwrap())
                    .unwrap()
                    .cost_s
            })
            .sum()
    };
    let cold = run_cost(&s);
    let warm = run_cost(&s);
    assert!(
        cold > 10.0 * warm,
        "cold {cold:.1}s should dwarf warm {warm:.1}s"
    );
}

#[test]
fn batch_size_is_part_of_the_key_and_scales_latency() {
    let s = system();
    let g = ModelFamily::SqueezeNet.canonical().unwrap();
    let lat = |batch: u32| {
        s.query(&QueryParams::by_name(g.clone(), batch, "gpu-T4-trt7.1-fp32").unwrap())
            .unwrap()
            .latency_ms
    };
    let l1 = lat(1);
    let l8 = lat(8);
    assert!(l8 > l1, "batch 8 {l8} should exceed batch 1 {l1}");
    assert!(l8 < 8.0 * l1, "batch scaling should be sublinear");
}
