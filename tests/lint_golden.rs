//! Integration: golden JSON lint report.
//!
//! The analyzer is a pure function of (graph, platform): the dataflow
//! fixpoints, pass order, diagnostic ordering and the hand-rolled JSON
//! renderer are all deterministic, so a fixed workload's machine-readable
//! report is goldenable byte-for-byte. The workload exercises a clean
//! canonical model, a graph carrying both dataflow-derived warnings
//! (dead region, redundant computation) and a platform-conditioned
//! memory-infeasibility error on the smallest device in the registry.
//!
//! Regenerate the golden after an intentional schema change with
//! `NNLQP_BLESS=1 cargo test --test lint_golden` — and bump
//! `REPORT_SCHEMA_VERSION` if the shape (not just the content) changed.

use nnlqp_ir::{Graph, GraphBuilder, Shape};
use nnlqp_models::ModelFamily;
use nnlqp_sim::PlatformSpec;
use std::path::Path;

const GOLDEN: &str = "tests/golden/lint_report.json";

/// A graph with one dead branch (NNL006) and one duplicated subgraph
/// (NNL007), both found by the dataflow analyses.
fn warny() -> Graph {
    let mut b = GraphBuilder::new("warny", Shape::nchw(1, 3, 8, 8));
    let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
    b.sigmoid(c).unwrap(); // never reaches the output: dead region
    let r1 = b.relu(c).unwrap();
    let r2 = b.relu(c).unwrap(); // same op, same input: redundant
    b.add(r1, r2).unwrap();
    b.finish().unwrap()
}

/// A graph whose peak activation memory exceeds the 128 MiB rv1109:
/// the conv output alone is 512*512*512 bytes at int8.
fn oversized() -> Graph {
    let mut b = GraphBuilder::new("vram-hog", Shape::nchw(1, 3, 512, 512));
    let c = b.conv(None, 512, 1, 1, 0, 1).unwrap();
    b.relu(c).unwrap();
    b.finish().unwrap()
}

/// The fixed workload: three reports as one JSON array, exactly how the
/// CLI's `lint --json` composes multi-model output.
fn rendered_reports() -> String {
    let t4 = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
    let edge = PlatformSpec::by_name("rv1109-rknn-int8").unwrap();
    let reports = [
        nnlqp_analyze::analyze(&ModelFamily::SqueezeNet.canonical().unwrap(), Some(&t4)),
        nnlqp_analyze::analyze(&warny(), Some(&t4)),
        nnlqp_analyze::analyze(&oversized(), Some(&edge)),
    ];
    let body: Vec<String> = reports
        .iter()
        .map(nnlqp_analyze::Report::render_json)
        .collect();
    format!("[{}]\n", body.join(","))
}

#[test]
fn lint_json_matches_golden() {
    let text = rendered_reports();

    // Determinism: a second evaluation reproduces the bytes.
    assert_eq!(text, rendered_reports());

    // Shape guarantees consumers rely on, independent of the golden.
    assert_eq!(
        text.matches("\"schema_version\":2").count(),
        3,
        "every report leads with the stable schema version"
    );
    assert!(text.contains("\"NNL006\""), "dead region surfaced");
    assert!(
        text.contains("\"NNL007\""),
        "redundant computation surfaced"
    );
    assert!(text.contains("\"NNL301\""), "memory infeasibility surfaced");

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN);
    if std::env::var_os("NNLQP_BLESS").is_some() {
        std::fs::write(&path, &text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {}: {e}", path.display()));
    assert_eq!(
        text, golden,
        "lint JSON drifted from {GOLDEN}; re-bless with NNLQP_BLESS=1 if intentional"
    );
}
