//! Integration: device-farm concurrency semantics — leases serialize
//! access per device, batches drain without deadlock, and the database
//! stays consistent under parallel query pressure.

use nnlqp::{Nnlqp, QueryParams};
use nnlqp_models::ModelFamily;
use nnlqp_sim::{DeviceFarm, PlatformSpec, QueryJob};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn single_device_serializes_concurrent_jobs() {
    // One T4 board, eight concurrent jobs: all must complete, never more
    // than one holding the lease at a time.
    let spec = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
    let farm = Arc::new(DeviceFarm::new(std::slice::from_ref(&spec), 1));
    let in_flight = Arc::new(AtomicUsize::new(0));
    let max_seen = Arc::new(AtomicUsize::new(0));
    let graph = Arc::new(ModelFamily::AlexNet.canonical().unwrap());
    std::thread::scope(|s| {
        for i in 0..8u64 {
            let farm = farm.clone();
            let graph = graph.clone();
            let in_flight = in_flight.clone();
            let max_seen = max_seen.clone();
            s.spawn(move || {
                // The lease is held inside measure_blocking; we approximate
                // "holding" by the device count exposed through idle_devices.
                let r = farm
                    .measure_blocking(&QueryJob {
                        graph,
                        platform: "gpu-T4-trt7.1-fp32".into(),
                        reps: 3,
                        seed: i,
                    })
                    .unwrap();
                assert_eq!(r.device_id, 0);
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                in_flight.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(farm.idle_devices("gpu-T4-trt7.1-fp32"), 1);
}

#[test]
fn multi_device_pool_distributes_jobs() {
    let spec = PlatformSpec::by_name("cpu-openppl-fp32").unwrap();
    let farm = DeviceFarm::new(std::slice::from_ref(&spec), 3);
    let graph = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
    let jobs: Vec<QueryJob> = (0..12)
        .map(|i| QueryJob {
            graph: graph.clone(),
            platform: "cpu-openppl-fp32".into(),
            reps: 3,
            seed: i,
        })
        .collect();
    let results = farm.submit_many(&jobs);
    let mut devices_used = std::collections::HashSet::new();
    for r in results {
        devices_used.insert(r.unwrap().device_id);
    }
    assert!(!devices_used.is_empty() && devices_used.len() <= 3);
    assert_eq!(farm.idle_devices("cpu-openppl-fp32"), 3);
}

#[test]
fn parallel_queries_keep_database_consistent() {
    let system = Arc::new(
        Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 2))
            .build(),
    );
    let models: Vec<_> = nnlqp_models::generate_family(ModelFamily::MobileNetV2, 6, 5)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    // Every thread queries every model on the same platform; exactly 6
    // distinct (model, platform, batch) rows must survive, and re-querying
    // must always return the stored latency.
    std::thread::scope(|s| {
        for _ in 0..4 {
            let system = system.clone();
            let models = models.clone();
            s.spawn(move || {
                for m in &models {
                    let p = QueryParams::by_name(m.clone(), 1, "gpu-T4-trt7.1-int8").unwrap();
                    let a = system.query(&p).unwrap();
                    let b = system.query(&p).unwrap();
                    assert!(b.cache_hit);
                    assert_eq!(a.latency_ms, b.latency_ms);
                }
            });
        }
    });
    let stats = system.stats();
    assert_eq!(stats.models, 6);
    // Concurrent racers may each measure the same model before the first
    // insert lands; history rows are allowed, but at least one per model
    // exists and lookups are stable.
    assert!(stats.latencies >= 6);
}
