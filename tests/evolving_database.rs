//! Integration: the *evolving* database claim — as queries accumulate,
//! retraining the predictor on the grown database improves accuracy on
//! unseen models (the feedback loop of Fig. 1's thin black arrows).

use nnlqp::{Nnlqp, Platform, QueryParams, TrainPredictorConfig};
use nnlqp_models::ModelFamily;
use nnlqp_predict::mape;
use nnlqp_sim::{DeviceFarm, PlatformSpec};

#[test]
fn predictor_improves_as_database_grows() {
    let system = Nnlqp::builder()
        .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
        .reps(5)
        .build();
    let platform = "gpu-T4-trt7.1-fp32";
    let handle = Platform::by_name(platform).unwrap();

    // A stream of arriving models (what production queries look like).
    let stream: Vec<_> = nnlqp_models::generate_family(ModelFamily::MobileNetV2, 60, 13)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    // A fixed evaluation set from a different seed.
    let eval: Vec<_> = nnlqp_models::generate_family(ModelFamily::MobileNetV2, 20, 99)
        .into_iter()
        .map(|m| m.graph)
        .collect();

    // Everything entering the database must be clean under the analyzer;
    // a polluted training stream would invalidate the learning claim.
    let spec = PlatformSpec::by_name(platform).unwrap();
    for g in stream.iter().chain(&eval) {
        assert!(
            !nnlqp_analyze::analyze(g, Some(&spec)).has_errors(),
            "{} failed static analysis",
            g.name
        );
    }

    let cfg = TrainPredictorConfig {
        epochs: 30,
        hidden: 32,
        gnn_layers: 2,
        ..Default::default()
    };

    let eval_mape = |system: &Nnlqp| -> f64 {
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for g in &eval {
            let p = QueryParams::by_name(g.clone(), 1, platform).unwrap();
            preds.push(system.predict(&p).unwrap().latency_ms);
            // Ground truth from the simulator directly (not via query, to
            // keep the database containing only the training stream).
            let spec = PlatformSpec::by_name(platform).unwrap();
            truths.push(nnlqp_sim::exec::model_latency_ms(g, &spec));
        }
        mape(&preds, &truths)
    };

    // Phase 1: a young database with 10 records.
    system.warm_cache(&stream[..10], &handle, 1).unwrap();
    let n1 = system.train_predictor(&[platform], cfg).unwrap();
    assert_eq!(n1, 10);
    let young = eval_mape(&system);

    // Phase 2: the database evolves to 60 records; same architecture,
    // retrained.
    system.warm_cache(&stream, &handle, 1).unwrap();
    let n2 = system.train_predictor(&[platform], cfg).unwrap();
    assert_eq!(n2, 60);
    let grown = eval_mape(&system);

    assert!(
        grown < young,
        "grown-database predictor ({grown:.1}% MAPE) should beat the young one ({young:.1}%)"
    );
    // And it must be genuinely useful, not just "less bad".
    assert!(grown < 30.0, "grown MAPE {grown:.1}% implausibly high");
}
