//! Parity suite for the SIMD GEMM kernels and the int8 quantized
//! inference path.
//!
//! Two distinct contracts are pinned here:
//!
//! * **Scalar vs AVX2** — the same f32 arithmetic with a different
//!   instruction schedule. FMA fuses the multiply-add, so cross-backend
//!   comparisons are a *relative tolerance* affair (≤ 1e-5), while the
//!   int8 dot products accumulate in integers and must agree **exactly**.
//! * **f32 vs int8** — weight-only dynamic quantization is lossy by
//!   design; the contract is a bounded accuracy delta (the same Acc(10%)
//!   gate the serve layer enforces at publish time), not bit equality.

use nnlqp::{Nnlqp, QueryParams, TrainPredictorConfig};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_models::ModelFamily;
use nnlqp_nn::{simd_available, Activation, Kernel, Matrix, QuantLinear, QuantRow};
use nnlqp_obs::acc_at;
use nnlqp_sim::{DeviceFarm, Platform, PlatformSpec};
use proptest::prelude::*;

const PLATFORMS: [&str; 2] = ["gpu-T4-trt7.1-fp32", "cpu-openppl-fp32"];

fn rand_matrix(rows: usize, cols: usize, rng: &mut Rng64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| (rng.uniform() as f32) * 2.0 - 1.0)
}

/// Largest relative elementwise deviation between two same-shape matrices.
fn rel_dev(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!((a.rows, a.cols), (b.rows, b.cols));
    let mut worst = 0.0f32;
    for i in 0..a.rows {
        for (x, y) in a.row(i).iter().zip(b.row(i)) {
            let dev = (x - y).abs() / x.abs().max(y.abs()).max(1.0);
            worst = worst.max(dev);
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All three GEMM entry points agree between backends to ≤ 1e-5
    /// relative over random *ragged* shapes (nothing aligned to the
    /// 8-lane vector width).
    #[test]
    fn gemm_backends_agree_on_ragged_shapes(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in any::<u64>(),
    ) {
        if !simd_available() { return Ok(()); }
        let mut rng = Rng64::new(seed);
        let a = rand_matrix(m, k, &mut rng);
        let b = rand_matrix(k, n, &mut rng);
        let bt = rand_matrix(n, k, &mut rng);
        let at = rand_matrix(k, m, &mut rng);

        let mut s = Matrix::zeros(m, n);
        let mut v = Matrix::zeros(m, n);
        let mut pack = Vec::new();
        a.matmul_into_with(Kernel::Scalar, &b, &mut s, &mut pack);
        a.matmul_into_with(Kernel::Avx2Fma, &b, &mut v, &mut pack);
        prop_assert!(rel_dev(&s, &v) <= 1e-5, "matmul dev {}", rel_dev(&s, &v));

        let mut st = Matrix::zeros(m, n);
        let mut vt = Matrix::zeros(m, n);
        a.matmul_t_into_with(Kernel::Scalar, &bt, &mut st);
        a.matmul_t_into_with(Kernel::Avx2Fma, &bt, &mut vt);
        prop_assert!(rel_dev(&st, &vt) <= 1e-5, "matmul_t dev {}", rel_dev(&st, &vt));

        let ts = at.t_matmul_with(Kernel::Scalar, &b);
        let tv = at.t_matmul_with(Kernel::Avx2Fma, &b);
        prop_assert!(rel_dev(&ts, &tv) <= 1e-5, "t_matmul dev {}", rel_dev(&ts, &tv));
    }

    /// The bias + activation epilogue is elementwise (no FMA re-association
    /// possible): backends must agree bitwise.
    #[test]
    fn bias_act_epilogue_is_bitwise_across_backends(
        m in 1usize..16, n in 1usize..40, seed in any::<u64>(), relu in any::<bool>(),
    ) {
        if !simd_available() { return Ok(()); }
        let mut rng = Rng64::new(seed);
        let base = rand_matrix(m, n, &mut rng);
        let bias: Vec<f32> = (0..n).map(|_| (rng.uniform() as f32) - 0.5).collect();
        let act = if relu { Activation::Relu } else { Activation::Identity };
        let mut s = base.clone();
        let mut v = base;
        s.bias_act_with(Kernel::Scalar, &bias, act);
        v.bias_act_with(Kernel::Avx2Fma, &bias, act);
        for i in 0..m {
            prop_assert_eq!(s.row(i), v.row(i));
        }
    }

    /// int8 GEMM accumulates in integers: the AVX2 and scalar paths of
    /// `QuantLinear` must produce bit-identical f32 outputs.
    #[test]
    fn int8_gemm_is_exact_across_backends(
        rows in 1usize..8, in_dim in 1usize..48, out_dim in 1usize..24, seed in any::<u64>(),
    ) {
        if !simd_available() { return Ok(()); }
        let mut rng = Rng64::new(seed);
        let w = rand_matrix(in_dim, out_dim, &mut rng);
        let bias: Vec<f32> = (0..out_dim).map(|_| (rng.uniform() as f32) - 0.5).collect();
        let ql = QuantLinear::quantize(&w, &bias);
        let x = rand_matrix(rows, in_dim, &mut rng);
        let mut qrow = QuantRow::new();
        let mut s = Matrix::zeros(rows, out_dim);
        let mut v = Matrix::zeros(rows, out_dim);
        ql.forward_quant_with(Kernel::Scalar, &x, &mut s, Activation::Identity, &mut qrow);
        ql.forward_quant_with(Kernel::Avx2Fma, &x, &mut v, Activation::Identity, &mut qrow);
        for i in 0..rows {
            prop_assert_eq!(s.row(i), v.row(i));
        }
    }
}

/// Build a system, measure a tiny SqueezeNet corpus on both platforms and
/// train a small two-head predictor over it.
fn trained_system() -> Nnlqp {
    let s = Nnlqp::builder()
        .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
        .reps(3)
        .build();
    let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 8, 3)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    for name in PLATFORMS {
        s.warm_cache(&models, &Platform::by_name(name).unwrap(), 1)
            .unwrap();
    }
    s.train_predictor(
        &PLATFORMS,
        TrainPredictorConfig {
            epochs: 30,
            hidden: 16,
            gnn_layers: 2,
            ..Default::default()
        },
    )
    .unwrap();
    s
}

fn probes(n: usize) -> Vec<Graph> {
    nnlqp_models::generate_family(ModelFamily::SqueezeNet, 8 + n, 91)
        .into_iter()
        .rev()
        .take(n)
        .map(|m| m.graph)
        .collect()
}

/// End-to-end dual-mode parity: the full predict pipeline (features →
/// backbone → head) run with the SIMD backend pinned off, then on, agrees
/// to ≤ 1e-5 relative. This is the only test in the workspace that toggles
/// the process-global backend.
#[test]
fn full_pipeline_predictions_match_across_backends() {
    if !simd_available() {
        return;
    }
    let s = trained_system();
    let graphs = probes(4);
    let mut pairs = Vec::new();
    for g in &graphs {
        for name in PLATFORMS {
            let p = QueryParams::by_name(g.clone(), 1, name).unwrap();
            nnlqp_nn::set_simd_enabled(false);
            let scalar = s.predict(&p).unwrap().latency_ms;
            nnlqp_nn::set_simd_enabled(true);
            let simd = s.predict(&p).unwrap().latency_ms;
            pairs.push((scalar, simd));
        }
    }
    nnlqp_nn::set_simd_enabled(true);
    for (scalar, simd) in pairs {
        let dev = (scalar - simd).abs() / scalar.abs().max(simd.abs()).max(1.0);
        assert!(dev <= 1e-5, "scalar {scalar} vs simd {simd} (dev {dev})");
    }
}

/// Quantizing a trained champion costs little accuracy: on fresh probe
/// graphs the int8 predictions stay within 10% of the f32 predictions
/// (Acc(10%) of quant-vs-f32 = 100), and against *measured* latencies the
/// Acc(10%) drop is far inside the serve gate's default tolerance.
#[test]
fn quantized_predictor_accuracy_delta_is_bounded() {
    let s = trained_system();
    let f32_handle = s.predictor_handle().unwrap();
    let q_handle = f32_handle.quantized().unwrap();
    assert_eq!(
        q_handle.model.identity(),
        nnlqp::QUANT_IDENTITY_OFFSET + f32_handle.model.kind().id()
    );

    let graphs = probes(6);
    for name in PLATFORMS {
        let platform = Platform::by_name(name).unwrap();
        let mut f32_preds = Vec::new();
        let mut q_preds = Vec::new();
        let mut measured = Vec::new();
        for g in &graphs {
            let fp = s.predict_effective_with(&f32_handle, g, name).unwrap();
            let qp = s.predict_effective_with(&q_handle, g, name).unwrap();
            f32_preds.push(fp.latency_ms);
            q_preds.push(qp.latency_ms);
            measured.push(
                s.query(&QueryParams::new(g.clone(), 1, platform.clone()))
                    .unwrap()
                    .latency_ms,
            );
        }
        // int8 tracks f32 tightly…
        assert_eq!(acc_at(&q_preds, &f32_preds, 0.10), 100.0, "{name}");
        // …so against ground truth the Acc(10%) delta stays small.
        let drop = acc_at(&f32_preds, &measured, 0.10) - acc_at(&q_preds, &measured, 0.10);
        assert!(drop.abs() <= 20.0, "{name}: Acc(10%) drop {drop}");
    }
}

/// A quantized handle round-trips through the checkpoint JSON bitwise:
/// quantization is deterministic, so reloading re-derives the identical
/// int8 tables.
#[test]
fn quantized_handle_roundtrips_through_json() {
    let s = trained_system();
    let q = s.predictor_handle().unwrap().quantized().unwrap();
    let back = nnlqp::predictor_from_json(&q.model.to_json()).unwrap();
    assert_eq!(back.identity(), q.model.identity());
    let g = probes(1).pop().unwrap();
    let p = s.predict_effective_with(&q, &g, PLATFORMS[0]).unwrap();
    s.set_predictor(q);
    let installed = s
        .predict(&QueryParams::by_name(g, 1, PLATFORMS[0]).unwrap())
        .unwrap();
    assert_eq!(p.latency_ms, installed.latency_ms);
}
