//! Durable-store acceptance: a serving stack backed by the sharded WAL
//! engine must, after its shutdown seal + compaction, reopen to a
//! database whose JSON export is byte-identical to an in-memory stack
//! that served the same deterministic workload.

use nnlqp::Nnlqp;
use nnlqp_db::{open_read_only, persist, verify_store, DurableOptions};
use nnlqp_ir::Graph;
use nnlqp_models::ModelFamily;
use nnlqp_serve::{LatencyService, ServeConfig};
use nnlqp_sim::{DeviceFarm, PlatformSpec};
use std::path::Path;
use std::sync::Arc;

const PLATFORM: &str = "gpu-T4-trt7.1-fp32";
const SEED: u64 = 4242;

fn system(durable: Option<&Path>) -> Arc<Nnlqp> {
    let mut b = Nnlqp::builder()
        .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 2))
        .reps(3)
        .seed(SEED);
    if let Some(dir) = durable {
        b = b.durable(DurableOptions::new(dir));
    }
    Arc::new(b.try_build().expect("open durable store"))
}

/// One worker, one client, sequential queries: the ingest order (and so
/// every assigned row id) is deterministic across runs.
fn serve_workload(sys: &Arc<Nnlqp>) {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 32,
        cache_capacity: 128,
        cache_shards: 2,
        degrade_backlog: usize::MAX,
        ..Default::default()
    };
    let svc = LatencyService::start(Arc::clone(sys), cfg);
    let models: Vec<Arc<Graph>> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 8, SEED)
        .into_iter()
        .map(|m| Arc::new(m.graph))
        .collect();
    for (i, m) in models.iter().enumerate() {
        svc.query(m, PLATFORM, (i as u32 % 4) + 1)
            .expect("query succeeds");
    }
    // Re-querying hits the cache/db: no new rows, so the export below is
    // a function of the measured set alone.
    for m in &models {
        svc.query(m, PLATFORM, 1).expect("repeat query succeeds");
    }
    svc.shutdown().expect("shutdown seals the store");
}

#[test]
fn serve_ingest_survives_restart_byte_identically() {
    let dir = std::env::temp_dir().join(format!("nnlqp-durable-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Ground truth: identical workload against a purely in-memory stack.
    let mem = system(None);
    serve_workload(&mem);
    let baseline = persist::export_json(&mem.db).to_string();

    let durable = system(Some(&dir));
    serve_workload(&durable);
    assert_eq!(
        persist::export_json(&durable.db).to_string(),
        baseline,
        "durable serving stack diverged from the in-memory twin"
    );
    assert!(
        durable.db.stats().latencies > 0,
        "workload ingested nothing"
    );
    drop(durable);

    // Shutdown compacted: the store verifies clean and reopens to the
    // same bytes, with everything in segments (no WAL tail to replay).
    let report = verify_store(&dir).expect("store is verifiable");
    assert!(report.clean(), "store not clean after shutdown: {report:?}");
    let (reopened, rec) = open_read_only(&dir).expect("store reopens");
    assert!(rec.clean());
    assert_eq!(rec.wal_frames_replayed, 0, "shutdown left a WAL tail");
    assert!(rec.seg_frames > 0);
    assert_eq!(persist::export_json(&reopened).to_string(), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}
