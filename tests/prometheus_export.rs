//! Integration: golden Prometheus text exposition of the metrics
//! registry.
//!
//! The simulator, the trainer and the predictor are all deterministic
//! under a fixed seed, so the registry a fixed workload produces — and
//! its Prometheus rendering — is goldenable byte-for-byte. The workload
//! covers every metric kind: counters (query stages), gauges (embed
//! cache, labelled monitor quality), and histograms (stage costs, the
//! labelled relative-error histogram with cumulative buckets).
//!
//! Regenerate the golden after an intentional exposition-format change
//! with `NNLQP_BLESS=1 cargo test --test prometheus_export`.

use nnlqp::{Nnlqp, Platform, QueryParams, TrainPredictorConfig};
use nnlqp_models::ModelFamily;
use nnlqp_obs::{parse_prometheus, to_prometheus, MonitorConfig, QualityMonitor};
use nnlqp_sim::{DeviceFarm, PlatformSpec};
use std::path::Path;
use std::sync::Arc;

const SEED: u64 = 0x600D_7ACE;
const PLATFORM: &str = "gpu-T4-trt7.1-fp32";
const GOLDEN: &str = "tests/golden/metrics.prom";

/// A fixed workload touching counters, gauges, labelled gauges and
/// histograms, rendered to Prometheus text format.
fn seeded_exposition() -> String {
    let system = Nnlqp::builder()
        .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
        .reps(3)
        .seed(SEED)
        .build();
    let t4 = Platform::by_name(PLATFORM).unwrap();
    let models: Vec<_> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 3, SEED)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    // Sequential measurements, then cache hits, then one prediction (the
    // embed-cache gauge moves to 1).
    for g in &models {
        system
            .query(&QueryParams::new(g.clone(), 1, t4.clone()))
            .unwrap();
    }
    for g in &models {
        system
            .query(&QueryParams::new(g.clone(), 1, t4.clone()))
            .unwrap();
    }
    system
        .train_predictor(
            &[PLATFORM],
            TrainPredictorConfig {
                epochs: 2,
                hidden: 16,
                gnn_layers: 2,
                ..Default::default()
            },
        )
        .unwrap();
    system.predict_effective(&models[0], PLATFORM).unwrap();
    // Labelled quality series share the registry, like the serve-side
    // shadow evaluator publishes them.
    let monitor = QualityMonitor::new(MonitorConfig::default(), Arc::clone(system.registry()));
    for (p, t) in [(10.5, 10.0), (21.0, 20.0), (37.5, 30.0)] {
        monitor.record(PLATFORM, p, t);
    }
    to_prometheus(&system.registry().snapshot())
}

#[test]
fn exposition_matches_golden_and_round_trips() {
    let text = seeded_exposition();

    // Determinism: the same seed reproduces the exposition bytewise.
    assert_eq!(text, seeded_exposition());

    // Round-trip: the bundled parser accepts every line and recovers the
    // workload's headline numbers.
    let samples = parse_prometheus(&text).expect("exposition parses");
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .unwrap_or_else(|| panic!("sample {name} missing"))
            .value
    };
    assert_eq!(get("nnlqp_query_queries"), 6.0);
    assert_eq!(get("nnlqp_query_cache_hits"), 3.0);
    assert_eq!(get("nnlqp_query_measurements"), 3.0);
    assert_eq!(get("nnlqp_predict_embed_cache_len"), 1.0);
    assert_eq!(get("nnlqp_monitor_shadow_evals"), 3.0);
    let labelled = samples
        .iter()
        .find(|s| s.name == "nnlqp_monitor_window_samples")
        .expect("labelled gauge present");
    assert_eq!(labelled.label("platform"), Some(PLATFORM));
    assert_eq!(labelled.value, 3.0);
    // Histogram buckets are cumulative and end at +Inf.
    let buckets: Vec<&nnlqp_obs::PromSample> = samples
        .iter()
        .filter(|s| s.name == "nnlqp_monitor_rel_err_pct_bucket")
        .collect();
    assert!(buckets.len() >= 2);
    let mut last = -1.0;
    for b in &buckets {
        assert!(b.value >= last, "buckets must be cumulative");
        last = b.value;
    }
    assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));

    // Golden comparison (set NNLQP_BLESS=1 to re-bless after intentional
    // exposition-format changes).
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN);
    if std::env::var_os("NNLQP_BLESS").is_some() {
        std::fs::write(&path, &text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {}: {e}", path.display()));
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from {GOLDEN}; re-bless with NNLQP_BLESS=1 if intentional"
    );
}
