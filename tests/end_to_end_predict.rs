//! Integration: the evolving-database prediction loop and the headline
//! claims of the paper at reduced scale — NNLP beats the static proxies
//! on an unseen family, and the pre-trained embedding transfers.

use nnlqp_ir::Graph;
use nnlqp_ir::Rng64;
use nnlqp_models::ModelFamily;
use nnlqp_predict::baselines::{StaticBaseline, StaticBaselineKind};
use nnlqp_predict::train::{predict_samples, train, truths, Dataset, TrainConfig};
use nnlqp_predict::{extract_features, mape, NnlpConfig, NnlpModel};
use nnlqp_sim::{measure, PlatformSpec};

fn measured(fam: ModelFamily, n: usize, seed: u64, p: &PlatformSpec) -> Vec<(Graph, f64)> {
    nnlqp_models::generate_family(fam, n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            let l = measure(&m.graph, p, 10, seed ^ (i as u64) << 6).mean_ms;
            (m.graph, l)
        })
        .collect()
}

/// The headline Table 3 shape at mini scale: train on three families,
/// test on a held-out fourth; NNLP must beat FLOPs and FLOPs+MAC.
#[test]
fn nnlp_beats_static_proxies_on_unseen_family() {
    let p = PlatformSpec::by_name("gpu-gtx1660-trt7.1-fp32").unwrap();
    // As in Table 3's folds, the training families cover the same
    // operator vocabulary as the held-out one (MnasNet supplies the
    // depthwise blocks that MobileNetV2 is built from).
    let mut train_data = Vec::new();
    for f in [
        ModelFamily::ResNet,
        ModelFamily::Vgg,
        ModelFamily::MnasNet,
        ModelFamily::SqueezeNet,
    ] {
        train_data.extend(measured(f, 25, 3, &p));
    }
    let test_data = measured(ModelFamily::MobileNetV2, 30, 4, &p);

    // Static baselines.
    let pairs: Vec<(&Graph, f64)> = train_data.iter().map(|(g, l)| (g, *l)).collect();
    let flops = StaticBaseline::fit(StaticBaselineKind::Flops, &pairs);
    let fm = StaticBaseline::fit(StaticBaselineKind::FlopsMac, &pairs);

    // NNLP.
    let entries: Vec<(&Graph, f64, usize)> =
        train_data.iter().map(|(g, l)| (g, *l, 0usize)).collect();
    let ds = Dataset::build(&entries);
    let mut rng = Rng64::new(5);
    let mut model = NnlpModel::new(
        NnlpConfig {
            hidden: 48,
            head_hidden: 48,
            gnn_layers: 3,
            dropout: 0.05,
            ..Default::default()
        },
        ds.norm.clone(),
        &mut rng,
    );
    train(
        &mut model,
        &ds.samples,
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 1e-3,
            seed: 6,
        },
    );

    let t: Vec<f64> = test_data.iter().map(|(_, l)| *l).collect();
    let m_flops = mape(
        &test_data
            .iter()
            .map(|(g, _)| flops.predict(g))
            .collect::<Vec<_>>(),
        &t,
    );
    let m_fm = mape(
        &test_data
            .iter()
            .map(|(g, _)| fm.predict(g))
            .collect::<Vec<_>>(),
        &t,
    );
    let m_nnlp = mape(
        &test_data
            .iter()
            .map(|(g, _)| model.predict_ms(&extract_features(g), 0))
            .collect::<Vec<_>>(),
        &t,
    );
    assert!(
        m_nnlp < m_flops && m_nnlp < m_fm,
        "NNLP {m_nnlp:.1}% should beat FLOPs {m_flops:.1}% and FLOPs+MAC {m_fm:.1}%"
    );
}

/// Multi-platform heads specialize: the same backbone predicts different
/// platforms with different heads and each head tracks its platform.
#[test]
fn multi_platform_heads_specialize() {
    let gpu = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
    let asic = PlatformSpec::by_name("rv1109-rknn-int8").unwrap();
    let graphs: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 30, 7)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    let mut entries: Vec<(&Graph, f64, usize)> = Vec::new();
    let gl: Vec<f64> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| measure(g, &gpu, 10, i as u64).mean_ms)
        .collect();
    let al: Vec<f64> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| measure(g, &asic, 10, i as u64).mean_ms)
        .collect();
    for (i, g) in graphs.iter().enumerate() {
        entries.push((g, gl[i], 0));
        entries.push((g, al[i], 1));
    }
    let ds = Dataset::build(&entries);
    let mut rng = Rng64::new(8);
    let mut model = NnlpModel::new(
        NnlpConfig {
            hidden: 32,
            head_hidden: 32,
            gnn_layers: 2,
            n_heads: 2,
            dropout: 0.0,
            ..Default::default()
        },
        ds.norm.clone(),
        &mut rng,
    );
    train(
        &mut model,
        &ds.samples,
        TrainConfig {
            epochs: 40,
            batch_size: 16,
            lr: 2e-3,
            seed: 9,
        },
    );
    // Evaluate per head on the training pool (sanity of specialization).
    let (gpu_samples, asic_samples): (Vec<_>, Vec<_>) =
        ds.samples.iter().cloned().partition(|s| s.head == 0);
    let mg = mape(
        &predict_samples(&model, &gpu_samples),
        &truths(&gpu_samples),
    );
    let ma = mape(
        &predict_samples(&model, &asic_samples),
        &truths(&asic_samples),
    );
    assert!(mg < 35.0, "gpu head MAPE {mg}%");
    assert!(ma < 35.0, "asic head MAPE {ma}%");
    // The ASIC is dramatically slower; heads must reflect that.
    let s = &gpu_samples[0];
    let (pg, _) = model.forward(&s.nodes, &s.adj, &s.stat, 0, None);
    let (pa, _) = model.forward(&s.nodes, &s.adj, &s.stat, 1, None);
    assert!(
        (pa - pg) > 0.5,
        "asic log-latency {pa} should clearly exceed gpu {pg}"
    );
}

/// The kernel-additivity violation survives the whole pipeline: an
/// nn-Meter-style corrected sum must undershoot the naive kernel sum.
#[test]
fn kernel_sum_overestimates_and_correction_helps() {
    let p = PlatformSpec::by_name("gpu-gtx1660-trt7.1-fp32").unwrap();
    let data = measured(ModelFamily::GoogleNet, 12, 21, &p);
    for (g, measured_ms) in &data {
        let sum = nnlqp_sim::exec::sum_kernel_latencies_ms(g, &p);
        assert!(
            sum > *measured_ms,
            "kernel sum {sum} should exceed model latency {measured_ms}"
        );
    }
}
