//! Parity suite for the batched/cached prediction fast path.
//!
//! The optimization contract of the inference engine is *bit-for-bit*
//! equality: splitting `forward` into `embed` + `head_eval`, fanning one
//! embedding across heads, and serving embeddings from the cache must all
//! be pure refactorings of the arithmetic. Every assertion here is
//! `assert_eq!` on `f64` — no tolerances.

use nnlqp::{Nnlqp, QueryParams, TrainPredictorConfig, CACHED_PREDICT_COST_S, PREDICT_COST_S};
use nnlqp_ir::Graph;
use nnlqp_models::ModelFamily;
use nnlqp_sim::{DeviceFarm, Platform, PlatformSpec};

const PLATFORMS: [&str; 2] = ["gpu-T4-trt7.1-fp32", "cpu-openppl-fp32"];

/// Build a system, measure a tiny SqueezeNet corpus on both platforms and
/// train a small two-head predictor over it.
fn trained_system(embed_cache_capacity: usize) -> Nnlqp {
    let s = Nnlqp::builder()
        .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
        .reps(3)
        .embed_cache(embed_cache_capacity)
        .build();
    let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 8, 3)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    for name in PLATFORMS {
        s.warm_cache(&models, &Platform::by_name(name).unwrap(), 1)
            .unwrap();
    }
    s.train_predictor(
        &PLATFORMS,
        TrainPredictorConfig {
            epochs: 30,
            hidden: 16,
            gnn_layers: 2,
            ..Default::default()
        },
    )
    .unwrap();
    s
}

/// Fresh graphs the trained corpus has never seen.
fn probes(n: usize) -> Vec<Graph> {
    nnlqp_models::generate_family(ModelFamily::SqueezeNet, 8 + n, 91)
        .into_iter()
        .rev()
        .take(n)
        .map(|m| m.graph)
        .collect()
}

#[test]
fn batch_matches_per_sample_predict_bitwise() {
    let s = trained_system(0); // cache off: both paths run the backbone
    let graphs = probes(3);
    let batch = s.predict_batch(&graphs, &PLATFORMS).unwrap();
    assert_eq!(batch.latencies_ms.len(), graphs.len());
    for (g, row) in graphs.iter().zip(&batch.latencies_ms) {
        assert_eq!(row.len(), PLATFORMS.len());
        for (name, &want) in PLATFORMS.iter().zip(row) {
            let p = QueryParams::by_name(g.clone(), 1, name).unwrap();
            let got = s.predict(&p).unwrap();
            assert_eq!(got.latency_ms, want, "batch != per-sample on {name}");
            assert_eq!(got.cost_s, PREDICT_COST_S);
        }
    }
}

#[test]
fn cached_and_uncached_predictions_are_identical() {
    // Two systems, one trained handle: `cold` never caches, `warm` does.
    let cold = trained_system(0);
    let warm = trained_system(2048);
    let handle = cold.predictor_handle().unwrap();
    warm.set_predictor(handle);
    for g in probes(3) {
        for (i, name) in PLATFORMS.iter().enumerate() {
            let p = QueryParams::by_name(g.clone(), 1, name).unwrap();
            let uncached = cold.predict(&p).unwrap();
            assert!(uncached.latency_ms > 1e-6, "degenerate prediction");
            let first = warm.predict(&p).unwrap();
            let second = warm.predict(&p).unwrap(); // always a hit
            assert_eq!(first.latency_ms, uncached.latency_ms);
            assert_eq!(second.latency_ms, uncached.latency_ms);
            assert_eq!(uncached.cost_s, PREDICT_COST_S, "cache-off never hits");
            // The embedding is platform-independent: only the first
            // platform of each graph pays the backbone on `warm`.
            let expect = if i == 0 {
                PREDICT_COST_S
            } else {
                CACHED_PREDICT_COST_S
            };
            assert_eq!(first.cost_s, expect);
            assert_eq!(second.cost_s, CACHED_PREDICT_COST_S);
        }
    }
}

#[test]
fn retrain_hot_swap_invalidates_the_embed_cache() {
    let s = trained_system(2048);
    let g = probes(1).pop().unwrap();
    let p = QueryParams::by_name(g, 1, PLATFORMS[0]).unwrap();
    let before = s.predict(&p).unwrap();
    assert!(before.latency_ms > 1e-6, "degenerate prediction");
    assert_eq!(s.predict(&p).unwrap().cost_s, CACHED_PREDICT_COST_S);
    let v_before = s.predictor_version();

    // Retrain with a different seed: new weights, new generation.
    s.train_predictor(
        &PLATFORMS,
        TrainPredictorConfig {
            epochs: 30,
            hidden: 16,
            gnn_layers: 2,
            seed: 1234,
            ..Default::default()
        },
    )
    .unwrap();
    // Train draws one generation stamp and the install re-stamp another;
    // what matters for cache safety is that the generation advanced.
    assert!(s.predictor_version() > v_before);

    // The first post-swap prediction must pay the full backbone cost
    // (no stale embedding served) …
    let after = s.predict(&p).unwrap();
    assert_eq!(after.cost_s, PREDICT_COST_S, "stale embedding served");
    // … and must equal a from-scratch prediction of the new model.
    let reference = trained_system(0);
    let handle = s.predictor_handle().unwrap();
    reference.set_predictor(handle);
    assert_eq!(reference.predict(&p).unwrap().latency_ms, after.latency_ms);
    // Different weights ⇒ (almost surely) a different value than before.
    assert_ne!(after.latency_ms, before.latency_ms);
}

#[test]
fn quantized_swap_never_serves_a_stale_f32_embedding() {
    // Swapping the f32 champion for its int8 twin changes the embedding
    // arithmetic, so the embed cache must miss: the quantized identity
    // lives in its own band and every install re-stamps the generation.
    let s = trained_system(2048);
    let g = probes(1).pop().unwrap();
    let p = QueryParams::by_name(g, 1, PLATFORMS[0]).unwrap();
    let f32_pred = s.predict(&p).unwrap();
    assert_eq!(s.predict(&p).unwrap().cost_s, CACHED_PREDICT_COST_S);

    let q = s.predictor_handle().unwrap().quantized().unwrap();
    s.set_predictor(q);
    let first = s.predict(&p).unwrap();
    assert_eq!(first.cost_s, PREDICT_COST_S, "stale f32 embedding served");
    // Quantized inference is deterministic: the cached path replays it
    // bitwise.
    let second = s.predict(&p).unwrap();
    assert_eq!(second.cost_s, CACHED_PREDICT_COST_S);
    assert_eq!(second.latency_ms, first.latency_ms);
    // And the int8 prediction tracks the f32 one within the quantization
    // budget (log-space, same bound the unit parity tests pin).
    let dev = (first.latency_ms.ln_1p() - f32_pred.latency_ms.ln_1p()).abs();
    assert!(dev < 0.25, "int8 drifted from f32: {dev}");
}
