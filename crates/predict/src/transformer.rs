//! The transformer-style graph encoder: the second [`Predictor`]
//! implementation (NAR-Former-V2 direction).
//!
//! Node feature vectors are treated as a token sequence: a linear
//! embedding lifts them to `d_model`, a stack of multi-head self-attention
//! blocks ([`AttnLayer`]) mixes them under an adjacency-derived attention
//! bias, and sum pooling (same `SUM_POOL_SCALE` conditioning as the SAGE
//! path) plus the static features produces the shared graph embedding.
//! The per-platform heads are literally the same [`Head`] MLPs as
//! [`NnlpModel`](crate::model::NnlpModel) — only the backbone differs,
//! which is exactly what the [`Predictor`] embed/head split promises.

use crate::features::{GraphFeatures, Normalizer, NODE_FEAT_DIM, STATIC_DIM};
use crate::model::{Head, HeadCache, HeadGrad, SUM_POOL_SCALE};
use crate::predictor::{Predictor, PredictorKind};
use crate::train::{Sample, TrainConfig, TrainReport};
use nnlqp_ir::Rng64;
use nnlqp_nn::layers::mse_loss;
use nnlqp_nn::{
    attention_bias, Activation, Adam, AttnGrad, AttnLayer, Csr, Linear, LinearGrad, Matrix, Scratch,
};
use rayon::prelude::*;

/// Transformer hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TransformerConfig {
    /// Node feature width (normally [`NODE_FEAT_DIM`]).
    pub node_feat_dim: usize,
    /// Token width inside the attention stack.
    pub d_model: usize,
    /// Number of attention blocks.
    pub layers: usize,
    /// Attention heads per block (`d_model` must divide evenly).
    pub attn_heads: usize,
    /// Head hidden width.
    pub head_hidden: usize,
    /// Number of prediction heads (platforms).
    pub n_heads: usize,
    /// Dropout probability in the heads.
    pub dropout: f64,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        TransformerConfig {
            node_feat_dim: NODE_FEAT_DIM,
            d_model: 32,
            layers: 2,
            attn_heads: 4,
            head_hidden: 32,
            n_heads: 1,
            dropout: 0.05,
        }
    }
}

impl TransformerConfig {
    /// Width of the pooled graph embedding entering a head (static
    /// features always appended).
    pub fn embedding_dim(&self) -> usize {
        self.d_model + STATIC_DIM
    }

    fn to_value(self) -> serde_json::Value {
        serde_json::json!({
            "node_feat_dim": self.node_feat_dim,
            "d_model": self.d_model,
            "layers": self.layers,
            "attn_heads": self.attn_heads,
            "head_hidden": self.head_hidden,
            "n_heads": self.n_heads,
            "dropout": self.dropout,
        })
    }

    fn from_value(v: &serde_json::Value) -> Result<Self, String> {
        let dim = |key: &str| {
            v[key]
                .as_u64()
                .map(|x| x as usize)
                .ok_or_else(|| format!("transformer config {key} missing"))
        };
        Ok(TransformerConfig {
            node_feat_dim: dim("node_feat_dim")?,
            d_model: dim("d_model")?,
            layers: dim("layers")?,
            attn_heads: dim("attn_heads")?,
            head_hidden: dim("head_hidden")?,
            n_heads: dim("n_heads")?,
            dropout: v["dropout"]
                .as_f64()
                .ok_or("transformer config dropout missing")?,
        })
    }
}

/// The transformer predictor: token embedding, attention stack,
/// per-platform heads.
#[derive(Debug, Clone)]
pub struct TransformerModel {
    /// Configuration (immutable after construction).
    pub cfg: TransformerConfig,
    /// Token embedding `node_feat_dim -> d_model`.
    pub embed_in: Linear,
    /// The attention stack.
    pub blocks: Vec<AttnLayer>,
    /// Per-platform heads (same MLPs as the SAGE predictor).
    pub heads: Vec<Head>,
    /// Feature normalizer fitted on the training corpus.
    pub norm: Normalizer,
}

/// Per-sample caches for the backward pass.
pub struct TfCache {
    x0: Matrix,
    bias: Matrix,
    blocks: Vec<nnlqp_nn::attention::AttnCache>,
    n_rows: usize,
    head: HeadCache,
    head_idx: usize,
}

/// Per-sample gradients.
pub struct TfGrads {
    /// Token-embedding gradient.
    pub embed_in: LinearGrad,
    /// Attention-block gradients, first block first.
    pub blocks: Vec<AttnGrad>,
    /// Head gradient.
    pub head: HeadGrad,
    /// Which head the gradient belongs to.
    pub head_idx: usize,
}

impl TransformerModel {
    /// Fresh model with `cfg.n_heads` heads.
    pub fn new(cfg: TransformerConfig, norm: Normalizer, rng: &mut Rng64) -> Self {
        let embed_in = Linear::new(cfg.node_feat_dim, cfg.d_model, rng);
        let blocks = (0..cfg.layers)
            .map(|_| AttnLayer::new(cfg.d_model, cfg.attn_heads, rng))
            .collect();
        let heads = (0..cfg.n_heads)
            .map(|_| Head::new(cfg.embedding_dim(), cfg.head_hidden, rng))
            .collect();
        TransformerModel {
            cfg,
            embed_in,
            blocks,
            heads,
            norm,
        }
    }

    /// Forward pass on *normalized* inputs. `rng` enables dropout
    /// (training mode). Returns the prediction in `ln(1+target)` space.
    pub fn forward(
        &self,
        nodes: &Matrix,
        adj: &Csr,
        stat: &[f32; STATIC_DIM],
        head_idx: usize,
        rng: Option<&mut Rng64>,
    ) -> (f32, TfCache) {
        let bias = attention_bias(adj);
        let mut h = self.embed_in.forward(nodes);
        let mut caches = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (out, cache) = block.forward(&h, &bias);
            caches.push(cache);
            h = out;
        }
        let mut pooled = h.col_sums();
        for v in &mut pooled {
            *v *= SUM_POOL_SCALE;
        }
        let mut emb = pooled;
        emb.extend_from_slice(stat);
        let x = Matrix::from_rows(1, emb.len(), emb);
        let (pred, head_cache) = self.heads[head_idx].forward(x, self.cfg.dropout, rng);
        (
            pred,
            TfCache {
                x0: nodes.clone(),
                bias,
                blocks: caches,
                n_rows: nodes.rows,
                head: head_cache,
                head_idx,
            },
        )
    }

    /// Backward pass; `d_pred` is the loss gradient wrt the scalar output.
    pub fn backward(&self, cache: &TfCache, d_pred: f32) -> TfGrads {
        let (d_emb, head_grad) =
            self.heads[cache.head_idx].backward(&cache.head, d_pred, self.cfg.dropout);
        // Un-pool: sum pooling broadcasts the gradient to every token; the
        // static tail has no parameters behind it.
        let n = cache.n_rows;
        let mut d_h = Matrix::from_fn(n, self.cfg.d_model, |_, j| d_emb.get(0, j) * SUM_POOL_SCALE);
        let mut block_grads: Vec<AttnGrad> = Vec::with_capacity(self.blocks.len());
        for (block, c) in self.blocks.iter().zip(&cache.blocks).rev() {
            let (dx, g) = block.backward(c, &d_h, &cache.bias);
            block_grads.push(g);
            d_h = dx;
        }
        block_grads.reverse();
        let (_, d_embed_in) = self.embed_in.backward(&cache.x0, &d_h);
        TfGrads {
            embed_in: d_embed_in,
            blocks: block_grads,
            head: head_grad,
            head_idx: cache.head_idx,
        }
    }

    /// The expensive half on fused kernels and scratch buffers —
    /// bit-identical to [`TransformerModel::forward`]'s embedding.
    pub fn embed_with(&self, feats: &GraphFeatures, scratch: &mut Scratch) -> Vec<f32> {
        let stat = self.norm.normalize_stat(&feats.stat);
        let nodes = self.norm.normalize_nodes(&feats.nodes);
        let bias = attention_bias(&feats.adj);
        let mut h = scratch.take(nodes.rows, self.embed_in.w.cols);
        self.embed_in
            .forward_into(&nodes, Activation::Identity, &mut h, scratch.pack_buf());
        for block in &self.blocks {
            let next = block.forward_eval(&h, &bias, scratch);
            scratch.put(h);
            h = next;
        }
        let mut pooled = h.col_sums();
        scratch.put(h);
        for v in &mut pooled {
            *v *= SUM_POOL_SCALE;
        }
        let mut emb = pooled;
        emb.extend_from_slice(&stat);
        emb
    }

    /// The cheap half: identical contract to the SAGE predictor's
    /// `head_eval_with` (`exp(ln(1+y)) - 1`, clamped positive).
    pub fn head_eval_with(&self, emb: &[f32], head_idx: usize, scratch: &mut Scratch) -> f64 {
        let mut x = scratch.take(1, emb.len());
        x.data.copy_from_slice(emb);
        let pred = self.heads[head_idx].eval(&x, scratch);
        scratch.put(x);
        (pred as f64).exp_m1().max(1e-6)
    }

    /// One training loss evaluation (log-space MSE) with gradients.
    pub fn loss_and_grads(
        &self,
        nodes: &Matrix,
        adj: &Csr,
        stat: &[f32; STATIC_DIM],
        target_log: f32,
        head_idx: usize,
        rng: &mut Rng64,
    ) -> (f64, TfGrads) {
        let (pred, cache) = self.forward(nodes, adj, stat, head_idx, Some(rng));
        let (loss, grad) = mse_loss(&[pred], &[target_log]);
        let grads = self.backward(&cache, grad[0]);
        (loss, grads)
    }

    /// Serialize to JSON with the `"kind"` dispatch tag.
    pub fn to_json(&self) -> String {
        let blocks: Vec<serde_json::Value> = self.blocks.iter().map(AttnLayer::to_value).collect();
        let heads: Vec<serde_json::Value> = self.heads.iter().map(Head::to_value).collect();
        serde_json::json!({
            "kind": "transformer",
            "cfg": self.cfg.to_value(),
            "embed_in": self.embed_in.to_value(),
            "blocks": blocks,
            "heads": heads,
            "norm": self.norm.to_value(),
        })
        .to_string()
    }

    /// Inverse of [`TransformerModel::to_json`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v: serde_json::Value = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if v["kind"].as_str() != Some("transformer") {
            return Err("not a transformer checkpoint".to_string());
        }
        let seq = |key: &str| {
            v[key]
                .as_array()
                .ok_or_else(|| format!("transformer {key} missing"))
        };
        Ok(TransformerModel {
            cfg: TransformerConfig::from_value(&v["cfg"])?,
            embed_in: Linear::from_value(&v["embed_in"])?,
            blocks: seq("blocks")?
                .iter()
                .map(AttnLayer::from_value)
                .collect::<Result<_, _>>()?,
            heads: seq("heads")?
                .iter()
                .map(Head::from_value)
                .collect::<Result<_, _>>()?,
            norm: Normalizer::from_value(&v["norm"])?,
        })
    }
}

/// Adam key layout: the token embedding at 50/51, block `i` at
/// `200 + 16i` (five linears, weight+bias each), heads on the shared
/// `10_000 + 8h` base — all disjoint from the SAGE layout so a future
/// joint optimizer cannot alias state.
fn apply_backbone(model: &mut TransformerModel, grads: &TfGrads, opt: &mut Adam) {
    opt.update(50, &mut model.embed_in.w.data, &grads.embed_in.dw.data);
    opt.update(51, &mut model.embed_in.b, &grads.embed_in.db);
    for (i, (block, g)) in model.blocks.iter_mut().zip(&grads.blocks).enumerate() {
        let base = 200 + (i as u64) * 16;
        opt.update(base, &mut block.wq.w.data, &g.d_wq.dw.data);
        opt.update(base + 1, &mut block.wq.b, &g.d_wq.db);
        opt.update(base + 2, &mut block.wk.w.data, &g.d_wk.dw.data);
        opt.update(base + 3, &mut block.wk.b, &g.d_wk.db);
        opt.update(base + 4, &mut block.wv.w.data, &g.d_wv.dw.data);
        opt.update(base + 5, &mut block.wv.b, &g.d_wv.db);
        opt.update(base + 6, &mut block.wo.w.data, &g.d_wo.dw.data);
        opt.update(base + 7, &mut block.wo.b, &g.d_wo.db);
        opt.update(base + 8, &mut block.w1.w.data, &g.d_w1.dw.data);
        opt.update(base + 9, &mut block.w1.b, &g.d_w1.db);
    }
}

fn apply_head(model: &mut TransformerModel, head_idx: usize, hg: &HeadGrad, opt: &mut Adam) {
    let head = &mut model.heads[head_idx];
    let base = 10_000 + (head_idx as u64) * 8;
    opt.update(base, &mut head.l1.w.data, &hg.d1.dw.data);
    opt.update(base + 1, &mut head.l1.b, &hg.d1.db);
    opt.update(base + 2, &mut head.l2.w.data, &hg.d2.dw.data);
    opt.update(base + 3, &mut head.l2.b, &hg.d2.db);
    opt.update(base + 4, &mut head.l3.w.data, &hg.d3.dw.data);
    opt.update(base + 5, &mut head.l3.b, &hg.d3.db);
}

/// Train a transformer in place — the same mini-batch Adam loop as the
/// SAGE `train` (shuffled batches, rayon per-sample gradients, shared
/// backbone averaged over the batch, heads routed per platform).
pub fn train_transformer(
    model: &mut TransformerModel,
    samples: &[Sample],
    cfg: TrainConfig,
) -> TrainReport {
    assert!(!samples.is_empty(), "empty training set");
    let mut opt = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = Rng64::new(cfg.seed);
    let mut epoch_loss = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        rng.shuffle(&mut order);
        let mut total = 0.0f64;
        for (bi, batch) in order.chunks(cfg.batch_size).enumerate() {
            let results: Vec<(f64, TfGrads)> = batch
                .par_iter()
                .map(|&si| {
                    let s = &samples[si];
                    let mut srng = Rng64::new(
                        cfg.seed ^ ((epoch as u64) << 40) ^ ((bi as u64) << 20) ^ si as u64,
                    );
                    model.loss_and_grads(&s.nodes, &s.adj, &s.stat, s.target_log, s.head, &mut srng)
                })
                .collect();

            let inv = 1.0 / batch.len() as f32;
            let mut acc: Option<TfGrads> = None;
            let mut head_acc: std::collections::HashMap<usize, HeadGrad> =
                std::collections::HashMap::new();
            for (loss, g) in results {
                total += loss;
                head_acc
                    .entry(g.head_idx)
                    .and_modify(|hg| hg.add_assign(&g.head))
                    .or_insert_with(|| g.head.clone());
                match &mut acc {
                    None => acc = Some(g),
                    Some(a) => {
                        a.embed_in.add_assign(&g.embed_in);
                        for (ba, bg) in a.blocks.iter_mut().zip(&g.blocks) {
                            ba.add_assign(bg);
                        }
                    }
                }
            }
            let Some(mut a) = acc else { continue };
            a.embed_in.scale(inv);
            for bg in &mut a.blocks {
                bg.scale(inv);
            }
            opt.begin_step();
            apply_backbone(model, &a, &mut opt);
            for (head_idx, mut hg) in head_acc {
                hg.scale(inv);
                apply_head(model, head_idx, &hg, &mut opt);
            }
        }
        epoch_loss.push(total / samples.len() as f64);
    }
    TrainReport { epoch_loss }
}

impl Predictor for TransformerModel {
    fn kind(&self) -> PredictorKind {
        PredictorKind::Transformer
    }

    fn embedding_dim(&self) -> usize {
        self.cfg.embedding_dim()
    }

    fn n_heads(&self) -> usize {
        self.heads.len()
    }

    fn embed_with(&self, feats: &GraphFeatures, scratch: &mut Scratch) -> Vec<f32> {
        TransformerModel::embed_with(self, feats, scratch)
    }

    fn head_eval_with(&self, emb: &[f32], head_idx: usize, scratch: &mut Scratch) -> f64 {
        TransformerModel::head_eval_with(self, emb, head_idx, scratch)
    }

    fn train_in_place(&mut self, samples: &[Sample], cfg: TrainConfig) -> TrainReport {
        train_transformer(self, samples, cfg)
    }

    fn to_json(&self) -> String {
        TransformerModel::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_features;
    use crate::predictor::predictor_from_json;
    use nnlqp_ir::{GraphBuilder, Shape};

    fn tiny_feats() -> GraphFeatures {
        let mut b = GraphBuilder::new("t", Shape::nchw(1, 3, 16, 16));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let g = b.global_avgpool(r).unwrap();
        let f = b.flatten(g).unwrap();
        b.gemm(f, 10).unwrap();
        extract_features(&b.finish().unwrap())
    }

    fn make_model(cfg: TransformerConfig) -> (TransformerModel, GraphFeatures) {
        let feats = tiny_feats();
        let norm = Normalizer::fit(&[&feats]);
        let mut rng = Rng64::new(60);
        (TransformerModel::new(cfg, norm, &mut rng), feats)
    }

    #[test]
    fn forward_produces_finite_prediction() {
        let (m, feats) = make_model(TransformerConfig::default());
        let p = Predictor::predict_ms(&m, &feats, 0);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn embed_and_head_eval_match_forward_bitwise() {
        let (m, feats) = make_model(TransformerConfig::default());
        // Slow path: the training-kernel forward.
        let nodes = m.norm.normalize_nodes(&feats.nodes);
        let stat = m.norm.normalize_stat(&feats.stat);
        let (pred_log, _) = m.forward(&nodes, &feats.adj, &stat, 0, None);
        let want = (pred_log as f64).exp_m1().max(1e-6);
        // Fast path: split embed + head_eval on fused kernels.
        let emb = Predictor::embed(&m, &feats);
        assert_eq!(emb.len(), m.cfg.embedding_dim());
        assert_eq!(Predictor::head_eval(&m, &emb, 0), want);
        assert_eq!(Predictor::predict_ms(&m, &feats, 0), want);
    }

    #[test]
    fn predict_batch_matches_per_sample_bitwise() {
        let (m, feats) = make_model(TransformerConfig {
            n_heads: 2,
            ..Default::default()
        });
        let feats2 = {
            let mut b = GraphBuilder::new("t2", Shape::nchw(1, 3, 8, 8));
            let c = b.conv(None, 4, 3, 1, 1, 1).unwrap();
            b.relu(c).unwrap();
            extract_features(&b.finish().unwrap())
        };
        let batch = Predictor::predict_batch(&m, &[feats.clone(), feats2.clone()], &[0, 1]);
        assert_eq!(batch.len(), 2);
        for (f, row) in [&feats, &feats2].into_iter().zip(&batch) {
            assert_eq!(row[0], Predictor::predict_ms(&m, f, 0));
            assert_eq!(row[1], Predictor::predict_ms(&m, f, 1));
        }
    }

    #[test]
    fn end_to_end_gradcheck_backbone() {
        // Finite-difference check through the whole model (no dropout).
        let (m, feats) = make_model(TransformerConfig {
            dropout: 0.0,
            d_model: 8,
            layers: 2,
            attn_heads: 2,
            head_hidden: 8,
            ..Default::default()
        });
        let nodes = m.norm.normalize_nodes(&feats.nodes);
        let stat = m.norm.normalize_stat(&feats.stat);
        let target = 1.0f32;
        let mut rng = Rng64::new(61);
        let (_, grads) = m.loss_and_grads(&nodes, &feats.adj, &stat, target, 0, &mut rng);
        let h = 1e-2f32;
        let loss_of = |mm: &TransformerModel| {
            let (p, _) = mm.forward(&nodes, &feats.adj, &stat, 0, None);
            ((p - target) as f64).powi(2)
        };
        // Token embedding and first-block query weights.
        for &(i, j) in &[(0usize, 0usize), (3, 5)] {
            let mut mp = m.clone();
            let mut mm2 = m.clone();
            let base = m.embed_in.w.get(i, j);
            mp.embed_in.w.set(i, j, base + h);
            mm2.embed_in.w.set(i, j, base - h);
            let num = (loss_of(&mp) - loss_of(&mm2)) / (2.0 * h as f64);
            let analytic = grads.embed_in.dw.get(i, j) as f64;
            assert!(
                (num - analytic).abs() < 5e-2 * (1.0 + num.abs()),
                "embed_in[{i},{j}] num {num} vs {analytic}"
            );
        }
        for &(i, j) in &[(0usize, 0usize), (2, 4)] {
            let mut mp = m.clone();
            let mut mm2 = m.clone();
            let base = m.blocks[0].wq.w.get(i, j);
            mp.blocks[0].wq.w.set(i, j, base + h);
            mm2.blocks[0].wq.w.set(i, j, base - h);
            let num = (loss_of(&mp) - loss_of(&mm2)) / (2.0 * h as f64);
            let analytic = grads.blocks[0].d_wq.dw.get(i, j) as f64;
            assert!(
                (num - analytic).abs() < 5e-2 * (1.0 + num.abs()),
                "blocks0.wq[{i},{j}] num {num} vs {analytic}"
            );
        }
    }

    #[test]
    fn training_single_sample_reduces_loss() {
        let (mut m, feats) = make_model(TransformerConfig {
            dropout: 0.0,
            ..Default::default()
        });
        let nodes = m.norm.normalize_nodes(&feats.nodes);
        let stat = m.norm.normalize_stat(&feats.stat);
        let target = 2.5f32;
        let mut opt = Adam::new(0.01);
        let mut rng = Rng64::new(62);
        let (first, _) = m.loss_and_grads(&nodes, &feats.adj, &stat, target, 0, &mut rng);
        for _ in 0..100 {
            let (_, g) = m.loss_and_grads(&nodes, &feats.adj, &stat, target, 0, &mut rng);
            opt.begin_step();
            apply_backbone(&mut m, &g, &mut opt);
            apply_head(&mut m, 0, &g.head, &mut opt);
        }
        let (last, _) = m.loss_and_grads(&nodes, &feats.adj, &stat, target, 0, &mut rng);
        assert!(last < first * 0.05, "loss {first} -> {last}");
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let (m, feats) = make_model(TransformerConfig::default());
        let back = predictor_from_json(&Predictor::to_json(&m)).unwrap();
        assert_eq!(back.kind(), PredictorKind::Transformer);
        assert_eq!(
            back.predict_ms(&feats, 0),
            Predictor::predict_ms(&m, &feats, 0)
        );
    }
}
