//! The FLOPs and FLOPs+MAC baselines (Appendix E): latency predicted from
//! the static proxies by plain linear regression. These are the methods
//! whose failure on memory-bound families (Table 3) motivates NNLP.

use nnlqp_ir::{cost, DType, Graph};
use nnlqp_nn::LinearRegression;

/// Which static features the regression sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticBaselineKind {
    /// FLOPs only.
    Flops,
    /// FLOPs + memory access.
    FlopsMac,
}

/// A fitted static-proxy baseline.
#[derive(Debug, Clone)]
pub struct StaticBaseline {
    kind: StaticBaselineKind,
    model: LinearRegression,
}

fn featurize(g: &Graph, kind: StaticBaselineKind) -> Vec<f64> {
    let c = cost::graph_cost(g, DType::F32);
    match kind {
        StaticBaselineKind::Flops => vec![c.flops / 1e9],
        StaticBaselineKind::FlopsMac => vec![c.flops / 1e9, c.mem_bytes / 1e6],
    }
}

impl StaticBaseline {
    /// Fit on `(graph, latency_ms)` pairs.
    pub fn fit(kind: StaticBaselineKind, data: &[(&Graph, f64)]) -> StaticBaseline {
        let x: Vec<Vec<f64>> = data.iter().map(|(g, _)| featurize(g, kind)).collect();
        let y: Vec<f64> = data.iter().map(|(_, l)| *l).collect();
        StaticBaseline {
            kind,
            model: LinearRegression::fit(&x, &y, 1e-6),
        }
    }

    /// Predict latency in ms (clamped positive).
    pub fn predict(&self, g: &Graph) -> f64 {
        self.model.predict(&featurize(g, self.kind)).max(1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;
    use nnlqp_models::ModelFamily;
    use nnlqp_sim::{exec::model_latency_ms, PlatformSpec};

    fn corpus() -> Vec<(Graph, f64)> {
        let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let mut out = Vec::new();
        for f in [
            ModelFamily::Vgg,
            ModelFamily::ResNet,
            ModelFamily::MobileNetV2,
        ] {
            for m in nnlqp_models::generate_family(f, 20, 3) {
                let l = model_latency_ms(&m.graph, &p);
                out.push((m.graph, l));
            }
        }
        out
    }

    #[test]
    fn flops_mac_beats_flops_only() {
        let data = corpus();
        let refs: Vec<(&Graph, f64)> = data.iter().map(|(g, l)| (g, *l)).collect();
        let (train, test) = refs.split_at(45);
        let flops = StaticBaseline::fit(StaticBaselineKind::Flops, train);
        let fm = StaticBaseline::fit(StaticBaselineKind::FlopsMac, train);
        let t: Vec<f64> = test.iter().map(|(_, l)| *l).collect();
        let pf: Vec<f64> = test.iter().map(|(g, _)| flops.predict(g)).collect();
        let pm: Vec<f64> = test.iter().map(|(g, _)| fm.predict(g)).collect();
        let (mf, mm) = (mape(&pf, &t), mape(&pm, &t));
        // Table 3: FLOPs+MAC improves on FLOPs (47.7% -> 37.3% MAPE).
        assert!(mm < mf, "FLOPs+MAC {mm}% should beat FLOPs {mf}%");
    }

    #[test]
    fn predictions_positive() {
        let data = corpus();
        let refs: Vec<(&Graph, f64)> = data.iter().map(|(g, l)| (g, *l)).collect();
        let b = StaticBaseline::fit(StaticBaselineKind::Flops, &refs);
        for (g, _) in &refs {
            assert!(b.predict(g) > 0.0);
        }
    }

    #[test]
    fn flops_fails_on_memory_bound_family() {
        // Train on VGG+ResNet (compute-bound), test on MobileNetV2
        // (memory-bound): FLOPs regression must degrade badly — the
        // Table 3 phenomenon.
        let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let mut train = Vec::new();
        for f in [ModelFamily::Vgg, ModelFamily::ResNet] {
            for m in nnlqp_models::generate_family(f, 25, 5) {
                let l = model_latency_ms(&m.graph, &p);
                train.push((m.graph, l));
            }
        }
        let mut test = Vec::new();
        for m in nnlqp_models::generate_family(ModelFamily::MobileNetV2, 25, 6) {
            let l = model_latency_ms(&m.graph, &p);
            test.push((m.graph, l));
        }
        let refs: Vec<(&Graph, f64)> = train.iter().map(|(g, l)| (g, *l)).collect();
        let b = StaticBaseline::fit(StaticBaselineKind::Flops, &refs);
        let preds: Vec<f64> = test.iter().map(|(g, _)| b.predict(g)).collect();
        let t: Vec<f64> = test.iter().map(|(_, l)| *l).collect();
        let m = mape(&preds, &t);
        assert!(m > 25.0, "FLOPs MAPE on MobileNetV2 unexpectedly low: {m}%");
    }
}
