//! Feature extraction — the unified graph embedding inputs (Eqs. 3 & 5).
//!
//! Per node (Eq. 3): `F_v^0 = onehot(op) ⊕ attrs ⊕ shape`. Per graph
//! (Eq. 5): four static features — batch size, FLOPs, parameters, memory
//! access. Attribute, shape and static features are standardized by a
//! [`Normalizer`] fitted on the training set ("we calculate F_attr,
//! F_shape by applying the mean and variance for normalization", §6.1);
//! magnitude-like quantities pass through `ln(1+x)` first.

use nnlqp_ir::attrs::ATTR_VEC_LEN;
use nnlqp_ir::op::NUM_OP_TYPES;
use nnlqp_ir::{cost, DType, Graph};
use nnlqp_nn::{Csr, Matrix};
use nnlqp_sim::fusion::Kernel;
use serde::{Deserialize, Serialize};

/// Shape block width: log-scaled (batch, channels, height, width).
pub const SHAPE_DIM: usize = 4;

/// Full node feature width.
pub const NODE_FEAT_DIM: usize = NUM_OP_TYPES + ATTR_VEC_LEN + SHAPE_DIM;

/// Static graph-feature width: batch, FLOPs, params, memory access.
pub const STATIC_DIM: usize = 4;

/// Raw (un-normalized) features of one graph.
#[derive(Debug, Clone)]
pub struct GraphFeatures {
    /// Node features, `[n, NODE_FEAT_DIM]`.
    pub nodes: Matrix,
    /// Undirected adjacency.
    pub adj: Csr,
    /// Static features (raw scale).
    pub stat: [f64; STATIC_DIM],
}

fn log1p(x: f64) -> f32 {
    (x.max(0.0)).ln_1p() as f32
}

fn node_row(out: &mut Vec<f32>, node: &nnlqp_ir::Node) {
    // One-hot operator code.
    for i in 0..NUM_OP_TYPES {
        out.push(if i == node.op.code() { 1.0 } else { 0.0 });
    }
    // Attribute vector (raw; normalized later).
    out.extend_from_slice(&node.attrs.to_vec());
    // Output shape, log-scaled.
    out.push(log1p(node.out_shape.batch() as f64));
    out.push(log1p(node.out_shape.channels() as f64));
    out.push(log1p(node.out_shape.height() as f64));
    out.push(log1p(node.out_shape.width() as f64));
}

/// Extract features for a whole model.
pub fn extract_features(g: &Graph) -> GraphFeatures {
    let mut data = Vec::with_capacity(g.len() * NODE_FEAT_DIM);
    for (_, node) in g.iter() {
        node_row(&mut data, node);
    }
    let gc = cost::graph_cost(g, DType::F32);
    GraphFeatures {
        nodes: Matrix::from_rows(g.len(), NODE_FEAT_DIM, data),
        adj: Csr::from_graph(g),
        stat: [
            g.input_shape.batch() as f64,
            gc.flops,
            gc.params,
            gc.mem_bytes,
        ],
    }
}

/// Extract features for one fused kernel of a graph: the member nodes form
/// a miniature graph (NNLP "can be applied to different levels of neural
/// networks, such as ops, sub-graphs and whole networks", §8.5).
pub fn extract_kernel_features(g: &Graph, k: &Kernel) -> GraphFeatures {
    let mut data = Vec::with_capacity(k.nodes.len() * NODE_FEAT_DIM);
    let mut flops = 0.0;
    let mut params = 0.0;
    let mut mem = 0.0;
    for &id in &k.nodes {
        node_row(&mut data, g.node(id));
        let c = cost::node_cost(g, id, DType::F32);
        flops += c.flops;
        params += c.params;
        mem += c.mem_bytes();
    }
    // Local adjacency: edges among member nodes only.
    let local: std::collections::HashMap<u32, u32> = k
        .nodes
        .iter()
        .enumerate()
        .map(|(i, id)| (id.0, i as u32))
        .collect();
    let mut edges = Vec::new();
    for &id in &k.nodes {
        for &inp in &g.node(id).inputs {
            if let (Some(&a), Some(&b)) = (local.get(&inp.0), local.get(&id.0)) {
                edges.push((a, b));
            }
        }
    }
    GraphFeatures {
        nodes: Matrix::from_rows(k.nodes.len(), NODE_FEAT_DIM, data),
        adj: Csr::from_edges(k.nodes.len(), &edges),
        stat: [g.input_shape.batch() as f64, flops, params, mem],
    }
}

/// Standardization statistics fitted on a training corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Normalizer {
    node_mu: Vec<f32>,
    node_sd: Vec<f32>,
    stat_mu: [f32; STATIC_DIM],
    stat_sd: [f32; STATIC_DIM],
}

impl Normalizer {
    /// JSON value form (checkpointing).
    pub(crate) fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "node_mu": self.node_mu,
            "node_sd": self.node_sd,
            "stat_mu": self.stat_mu,
            "stat_sd": self.stat_sd,
        })
    }

    /// Inverse of [`Normalizer::to_value`].
    pub(crate) fn from_value(v: &serde_json::Value) -> Result<Self, String> {
        fn f32s(v: &serde_json::Value, what: &str) -> Result<Vec<f32>, String> {
            v.as_array()
                .and_then(|a| {
                    a.iter()
                        .map(|x| x.as_f64().map(|f| f as f32))
                        .collect::<Option<Vec<f32>>>()
                })
                .ok_or_else(|| format!("normalizer {what} missing"))
        }
        fn stat(v: &serde_json::Value, what: &str) -> Result<[f32; STATIC_DIM], String> {
            f32s(v, what)?
                .try_into()
                .map_err(|_| format!("normalizer {what} has wrong length"))
        }
        Ok(Normalizer {
            node_mu: f32s(&v["node_mu"], "node_mu")?,
            node_sd: f32s(&v["node_sd"], "node_sd")?,
            stat_mu: stat(&v["stat_mu"], "stat_mu")?,
            stat_sd: stat(&v["stat_sd"], "stat_sd")?,
        })
    }

    /// Fit per-dimension mean/std over all nodes of all training graphs
    /// (the one-hot block is left untouched) and over the log-scaled
    /// static features.
    pub fn fit(feats: &[&GraphFeatures]) -> Normalizer {
        assert!(!feats.is_empty(), "cannot fit normalizer on empty corpus");
        let d = NODE_FEAT_DIM;
        let mut mu = vec![0.0f64; d];
        let mut sq = vec![0.0f64; d];
        let mut count = 0.0f64;
        for f in feats {
            for i in 0..f.nodes.rows {
                for (j, &v) in f.nodes.row(i).iter().enumerate() {
                    mu[j] += v as f64;
                    sq[j] += (v as f64) * (v as f64);
                }
                count += 1.0;
            }
        }
        let mut node_mu = vec![0.0f32; d];
        let mut node_sd = vec![1.0f32; d];
        for j in 0..d {
            let m = mu[j] / count;
            let var = (sq[j] / count - m * m).max(0.0);
            if j >= NUM_OP_TYPES {
                node_mu[j] = m as f32;
                node_sd[j] = (var.sqrt() as f32).max(1e-4);
            }
        }
        let mut smu = [0.0f64; STATIC_DIM];
        let mut ssq = [0.0f64; STATIC_DIM];
        for f in feats {
            for j in 0..STATIC_DIM {
                let v = log1p(f.stat[j]) as f64;
                smu[j] += v;
                ssq[j] += v * v;
            }
        }
        let n = feats.len() as f64;
        let mut stat_mu = [0.0f32; STATIC_DIM];
        let mut stat_sd = [1.0f32; STATIC_DIM];
        for j in 0..STATIC_DIM {
            let m = smu[j] / n;
            let var = (ssq[j] / n - m * m).max(0.0);
            stat_mu[j] = m as f32;
            stat_sd[j] = (var.sqrt() as f32).max(1e-4);
        }
        Normalizer {
            node_mu,
            node_sd,
            stat_mu,
            stat_sd,
        }
    }

    /// Standardized node-feature matrix.
    pub fn normalize_nodes(&self, nodes: &Matrix) -> Matrix {
        let mut out = nodes.clone();
        for i in 0..out.rows {
            for (j, v) in out.row_mut(i).iter_mut().enumerate() {
                *v = (*v - self.node_mu[j]) / self.node_sd[j];
            }
        }
        out
    }

    /// Standardized static-feature vector.
    pub fn normalize_stat(&self, stat: &[f64; STATIC_DIM]) -> [f32; STATIC_DIM] {
        let mut out = [0.0f32; STATIC_DIM];
        for j in 0..STATIC_DIM {
            out[j] = (log1p(stat[j]) - self.stat_mu[j]) / self.stat_sd[j];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, OpType, Shape};
    use nnlqp_sim::fusion;

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new("f", Shape::nchw(2, 3, 32, 32));
        let c = b.conv(None, 16, 3, 2, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let g = b.global_avgpool(r).unwrap();
        let f = b.flatten(g).unwrap();
        b.gemm(f, 10).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn node_feature_dimensions() {
        let g = sample_graph();
        let f = extract_features(&g);
        assert_eq!(f.nodes.rows, g.len());
        assert_eq!(f.nodes.cols, NODE_FEAT_DIM);
        assert_eq!(f.adj.n(), g.len());
    }

    #[test]
    fn one_hot_block_is_exclusive() {
        let g = sample_graph();
        let f = extract_features(&g);
        for (i, (_, node)) in g.iter().enumerate() {
            let row = f.nodes.row(i);
            let ones: Vec<usize> = (0..NUM_OP_TYPES).filter(|&j| row[j] == 1.0).collect();
            assert_eq!(ones, vec![node.op.code()]);
        }
    }

    #[test]
    fn static_features_are_batch_flops_params_mac() {
        let g = sample_graph();
        let f = extract_features(&g);
        let gc = cost::graph_cost(&g, DType::F32);
        assert_eq!(f.stat[0], 2.0);
        assert_eq!(f.stat[1], gc.flops);
        assert_eq!(f.stat[2], gc.params);
        assert_eq!(f.stat[3], gc.mem_bytes);
    }

    #[test]
    fn normalizer_standardizes_attr_and_shape_blocks() {
        let g = sample_graph();
        let f = extract_features(&g);
        let norm = Normalizer::fit(&[&f]);
        let nn = norm.normalize_nodes(&f.nodes);
        // One-hot block untouched.
        for i in 0..nn.rows {
            for j in 0..NUM_OP_TYPES {
                assert_eq!(nn.get(i, j), f.nodes.get(i, j));
            }
        }
        // Attr/shape columns have ~zero mean over this corpus.
        for j in NUM_OP_TYPES..NODE_FEAT_DIM {
            let mean: f32 = (0..nn.rows).map(|i| nn.get(i, j)).sum::<f32>() / nn.rows as f32;
            assert!(mean.abs() < 1e-4, "col {j} mean {mean}");
        }
    }

    #[test]
    fn normalizer_static_zero_mean() {
        let g = sample_graph();
        let f = extract_features(&g);
        let g2 = g.rebatch(8).unwrap();
        let f2 = extract_features(&g2);
        let norm = Normalizer::fit(&[&f, &f2]);
        let a = norm.normalize_stat(&f.stat);
        let b = norm.normalize_stat(&f2.stat);
        for j in 0..STATIC_DIM {
            assert!((a[j] + b[j]).abs() < 1e-3, "dim {j}: {} {}", a[j], b[j]);
        }
    }

    #[test]
    fn kernel_features_are_subgraphs() {
        let g = sample_graph();
        let kernels = fusion::fuse(&g);
        // First kernel: Conv+Relu (2 nodes).
        let k = &kernels[0];
        assert_eq!(k.nodes.len(), 2);
        let f = extract_kernel_features(&g, k);
        assert_eq!(f.nodes.rows, 2);
        // Internal edge conv->relu present.
        assert_eq!(f.adj.neighbors(0), &[1]);
        assert_eq!(f.adj.neighbors(1), &[0]);
        // Op one-hots match member nodes.
        assert_eq!(f.nodes.get(0, OpType::Conv.code()), 1.0);
        assert_eq!(f.nodes.get(1, OpType::Relu.code()), 1.0);
        assert!(f.stat[1] > 0.0);
    }

    #[test]
    fn single_node_kernel_has_no_edges() {
        let g = sample_graph();
        let kernels = fusion::fuse(&g);
        let single = kernels.iter().find(|k| k.nodes.len() == 1).unwrap();
        let f = extract_kernel_features(&g, single);
        assert_eq!(f.adj.neighbors(0), &[] as &[u32]);
    }
}
