//! The NNLP predictor: shared GNN backbone + per-platform MLP heads.
//!
//! One configurable model covers the whole experimental matrix:
//!
//! * full NNLP (Table 3 winner): SAGE backbone, sum pooling, static
//!   features;
//! * `wo/F0`, `wo/gnn`, `wo/static` (Table 4 ablations);
//! * BRP-NAS (Appendix E): same node features, GNN backbone, but *no*
//!   static features and mean pooling — the configuration that "can not
//!   extract useful graph embedding of the entire model".

use crate::features::{GraphFeatures, Normalizer, NODE_FEAT_DIM, STATIC_DIM};
use nnlqp_ir::Rng64;
use nnlqp_nn::{
    layers::mse_loss, relu, relu_backward, Activation, Adam, Csr, Dropout, Linear, LinearGrad,
    Matrix, SageGrad, SageLayer, Scratch,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Conditioning factor applied to the sum-pooled graph embedding; see the
/// comment at the pooling site. Shared with the transformer encoder so
/// both architectures pool into comparably conditioned embeddings.
pub(crate) const SUM_POOL_SCALE: f32 = 1.0 / 32.0;

/// Model hyper-parameters and ablation switches.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NnlpConfig {
    /// Node feature width (normally [`NODE_FEAT_DIM`]).
    pub node_feat_dim: usize,
    /// GNN hidden width.
    pub hidden: usize,
    /// Number of SAGEConv layers (`d` in Eq. 4).
    pub gnn_layers: usize,
    /// Head hidden width.
    pub head_hidden: usize,
    /// Number of prediction heads (platforms).
    pub n_heads: usize,
    /// Dropout probability in the heads.
    pub dropout: f64,
    /// Use node features at all (`false` = wo/F0: static features only).
    pub use_node_feats: bool,
    /// Run the GNN (`false` = wo/gnn: raw node features pooled directly).
    pub use_gnn: bool,
    /// Concatenate the four static features (`false` = wo/static).
    pub use_static: bool,
    /// Mean pooling instead of the paper's sum (BRP-NAS emulation).
    pub mean_pool: bool,
}

impl Default for NnlpConfig {
    fn default() -> Self {
        NnlpConfig {
            node_feat_dim: NODE_FEAT_DIM,
            hidden: 64,
            gnn_layers: 3,
            head_hidden: 64,
            n_heads: 1,
            dropout: 0.05,
            use_node_feats: true,
            use_gnn: true,
            use_static: true,
            mean_pool: false,
        }
    }
}

impl NnlpConfig {
    /// Table 4's `wo/F0`: static features only.
    pub fn without_node_features() -> Self {
        NnlpConfig {
            use_node_feats: false,
            use_gnn: false,
            ..Default::default()
        }
    }

    /// Table 4's `wo/gnn`: raw node features pooled without convolution.
    pub fn without_gnn() -> Self {
        NnlpConfig {
            use_gnn: false,
            ..Default::default()
        }
    }

    /// Table 4's `wo/static`.
    pub fn without_static() -> Self {
        NnlpConfig {
            use_static: false,
            ..Default::default()
        }
    }

    /// BRP-NAS configuration (Appendix E).
    pub fn brp_nas() -> Self {
        NnlpConfig {
            use_static: false,
            mean_pool: true,
            gnn_layers: 4,
            ..Default::default()
        }
    }

    /// Width of the pooled graph embedding entering a head.
    pub fn embedding_dim(&self) -> usize {
        let graph_part = if !self.use_node_feats {
            0
        } else if self.use_gnn {
            self.hidden
        } else {
            self.node_feat_dim
        };
        graph_part + if self.use_static { STATIC_DIM } else { 0 }
    }
}

/// One platform head: FC -> ReLU -> Dropout -> FC -> ReLU -> FC(1)
/// ("the prediction head is composed of Fully Connected (FC) layers, Relu
/// layers, and Dropout layers", §6.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Head {
    /// First FC.
    pub l1: Linear,
    /// Second FC.
    pub l2: Linear,
    /// Output FC.
    pub l3: Linear,
}

/// Head activations cached for backward.
#[derive(Debug, Clone)]
pub struct HeadCache {
    x: Matrix,
    z1: Matrix,
    a1_drop: Matrix,
    mask: Option<Vec<bool>>,
    z2: Matrix,
    a2: Matrix,
}

/// Head gradients.
#[derive(Debug, Clone)]
pub struct HeadGrad {
    /// dL/d(l1).
    pub d1: LinearGrad,
    /// dL/d(l2).
    pub d2: LinearGrad,
    /// dL/d(l3).
    pub d3: LinearGrad,
}

impl HeadGrad {
    /// Zero gradients matching a head.
    pub fn zeros_like(h: &Head) -> Self {
        HeadGrad {
            d1: LinearGrad::zeros_like(&h.l1),
            d2: LinearGrad::zeros_like(&h.l2),
            d3: LinearGrad::zeros_like(&h.l3),
        }
    }

    /// Accumulate.
    pub fn add_assign(&mut self, o: &HeadGrad) {
        self.d1.add_assign(&o.d1);
        self.d2.add_assign(&o.d2);
        self.d3.add_assign(&o.d3);
    }

    /// Scale.
    pub fn scale(&mut self, s: f32) {
        self.d1.scale(s);
        self.d2.scale(s);
        self.d3.scale(s);
    }
}

impl Head {
    pub(crate) fn new(in_dim: usize, hidden: usize, rng: &mut Rng64) -> Head {
        Head {
            l1: Linear::new(in_dim, hidden, rng),
            l2: Linear::new(hidden, hidden, rng),
            l3: Linear::new(hidden, 1, rng),
        }
    }

    pub(crate) fn forward(
        &self,
        x: Matrix,
        dropout: f64,
        rng: Option<&mut Rng64>,
    ) -> (f32, HeadCache) {
        let z1 = self.l1.forward(&x);
        let a1 = relu(&z1);
        let (a1_drop, mask) = match rng {
            Some(r) if dropout > 0.0 => {
                let d = Dropout { p: dropout };
                let (y, m) = d.forward_train(&a1, r);
                (y, Some(m))
            }
            _ => (a1, None),
        };
        let z2 = self.l2.forward(&a1_drop);
        let a2 = relu(&z2);
        let out = self.l3.forward(&a2);
        let pred = out.get(0, 0);
        (
            pred,
            HeadCache {
                x,
                z1,
                a1_drop,
                mask,
                z2,
                a2,
            },
        )
    }

    /// Inference-only forward on the fused GEMM+bias+activation kernels:
    /// arithmetic identical — bit for bit — to [`Head::forward`] with
    /// dropout disabled, with every intermediate drawn from `scratch`.
    pub(crate) fn eval(&self, x: &Matrix, scratch: &mut Scratch) -> f32 {
        let mut a1 = scratch.take(x.rows, self.l1.w.cols);
        self.l1
            .forward_into(x, Activation::Relu, &mut a1, scratch.pack_buf());
        let mut a2 = scratch.take(a1.rows, self.l2.w.cols);
        self.l2
            .forward_into(&a1, Activation::Relu, &mut a2, scratch.pack_buf());
        let mut out = scratch.take(a2.rows, 1);
        self.l3
            .forward_into(&a2, Activation::Identity, &mut out, scratch.pack_buf());
        let pred = out.get(0, 0);
        scratch.put(a1);
        scratch.put(a2);
        scratch.put(out);
        pred
    }

    pub(crate) fn backward(
        &self,
        cache: &HeadCache,
        d_pred: f32,
        dropout: f64,
    ) -> (Matrix, HeadGrad) {
        let dy = Matrix::from_rows(1, 1, vec![d_pred]);
        let (d_a2, d3) = self.l3.backward(&cache.a2, &dy);
        let d_z2 = relu_backward(&cache.z2, &d_a2);
        let (d_a1drop, d2) = self.l2.backward(&cache.a1_drop, &d_z2);
        let d_a1 = match &cache.mask {
            Some(m) => Dropout { p: dropout }.backward(m, &d_a1drop),
            None => d_a1drop,
        };
        let d_z1 = relu_backward(&cache.z1, &d_a1);
        let (d_x, d1) = self.l1.backward(&cache.x, &d_z1);
        (d_x, HeadGrad { d1, d2, d3 })
    }
}

/// The full predictor.
#[derive(Debug, Clone)]
pub struct NnlpModel {
    /// Configuration (immutable after construction).
    pub cfg: NnlpConfig,
    /// SAGE backbone (`f(;alpha)` in the paper).
    pub sage: Vec<SageLayer>,
    /// Per-platform heads (`g(;beta_P)`).
    pub heads: Vec<Head>,
    /// Feature normalizer fitted on the training corpus.
    pub norm: Normalizer,
}

impl NnlpConfig {
    fn to_value(self) -> serde_json::Value {
        serde_json::json!({
            "node_feat_dim": self.node_feat_dim,
            "hidden": self.hidden,
            "gnn_layers": self.gnn_layers,
            "head_hidden": self.head_hidden,
            "n_heads": self.n_heads,
            "dropout": self.dropout,
            "use_node_feats": self.use_node_feats,
            "use_gnn": self.use_gnn,
            "use_static": self.use_static,
            "mean_pool": self.mean_pool,
        })
    }

    fn from_value(v: &serde_json::Value) -> Result<Self, String> {
        let dim = |key: &str| {
            v[key]
                .as_u64()
                .map(|x| x as usize)
                .ok_or_else(|| format!("config {key} missing"))
        };
        let flag = |key: &str| {
            v[key]
                .as_bool()
                .ok_or_else(|| format!("config {key} missing"))
        };
        Ok(NnlpConfig {
            node_feat_dim: dim("node_feat_dim")?,
            hidden: dim("hidden")?,
            gnn_layers: dim("gnn_layers")?,
            head_hidden: dim("head_hidden")?,
            n_heads: dim("n_heads")?,
            dropout: v["dropout"].as_f64().ok_or("config dropout missing")?,
            use_node_feats: flag("use_node_feats")?,
            use_gnn: flag("use_gnn")?,
            use_static: flag("use_static")?,
            mean_pool: flag("mean_pool")?,
        })
    }
}

impl Head {
    pub(crate) fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "l1": self.l1.to_value(),
            "l2": self.l2.to_value(),
            "l3": self.l3.to_value(),
        })
    }

    pub(crate) fn from_value(v: &serde_json::Value) -> Result<Self, String> {
        Ok(Head {
            l1: Linear::from_value(&v["l1"])?,
            l2: Linear::from_value(&v["l2"])?,
            l3: Linear::from_value(&v["l3"])?,
        })
    }
}

impl Serialize for NnlpModel {
    fn __stub_to_json(&self) -> Option<String> {
        let sage: Vec<serde_json::Value> = self.sage.iter().map(SageLayer::to_value).collect();
        let heads: Vec<serde_json::Value> = self.heads.iter().map(Head::to_value).collect();
        let v = serde_json::json!({
            "cfg": self.cfg.to_value(),
            "sage": sage,
            "heads": heads,
            "norm": self.norm.to_value(),
        });
        Some(v.to_string())
    }
}

impl<'de> Deserialize<'de> for NnlpModel {
    fn __stub_from_json(s: &str) -> Option<Result<Self, String>> {
        let v: serde_json::Value = match serde_json::from_str(s) {
            Ok(v) => v,
            Err(e) => return Some(Err(e.to_string())),
        };
        let parse = || -> Result<NnlpModel, String> {
            let seq = |key: &str| {
                v[key]
                    .as_array()
                    .ok_or_else(|| format!("model {key} missing"))
            };
            Ok(NnlpModel {
                cfg: NnlpConfig::from_value(&v["cfg"])?,
                sage: seq("sage")?
                    .iter()
                    .map(SageLayer::from_value)
                    .collect::<Result<_, _>>()?,
                heads: seq("heads")?
                    .iter()
                    .map(Head::from_value)
                    .collect::<Result<_, _>>()?,
                norm: Normalizer::from_value(&v["norm"])?,
            })
        };
        Some(parse())
    }
}

/// Per-sample caches for the backward pass.
pub struct ForwardCache {
    sage: Vec<nnlqp_nn::sage::SageCache>,
    layer_inputs_rows: usize,
    pooled_no_static: Vec<f32>,
    head: HeadCache,
    head_idx: usize,
}

/// Per-sample gradients.
pub struct NnlpGrads {
    /// Backbone gradients, one per SAGE layer.
    pub sage: Vec<SageGrad>,
    /// Head gradient.
    pub head: HeadGrad,
    /// Which head the gradient belongs to.
    pub head_idx: usize,
}

impl NnlpGrads {
    /// Zero gradients for a model's backbone plus one head.
    pub fn zeros_like(m: &NnlpModel, head_idx: usize) -> Self {
        NnlpGrads {
            sage: m.sage.iter().map(SageGrad::zeros_like).collect(),
            head: HeadGrad::zeros_like(&m.heads[head_idx]),
            head_idx,
        }
    }
}

impl NnlpModel {
    /// Fresh model with `cfg.n_heads` heads.
    pub fn new(cfg: NnlpConfig, norm: Normalizer, rng: &mut Rng64) -> Self {
        let mut sage = Vec::new();
        if cfg.use_node_feats && cfg.use_gnn {
            let mut d_in = cfg.node_feat_dim;
            for _ in 0..cfg.gnn_layers {
                sage.push(SageLayer::new(d_in, cfg.hidden, rng));
                d_in = cfg.hidden;
            }
        }
        let heads = (0..cfg.n_heads)
            .map(|_| Head::new(cfg.embedding_dim(), cfg.head_hidden, rng))
            .collect();
        NnlpModel {
            cfg,
            sage,
            heads,
            norm,
        }
    }

    /// Add a head for a new (unseen) platform; returns its index.
    pub fn add_head(&mut self, rng: &mut Rng64) -> usize {
        self.heads.push(Head::new(
            self.cfg.embedding_dim(),
            self.cfg.head_hidden,
            rng,
        ));
        self.cfg.n_heads = self.heads.len();
        self.heads.len() - 1
    }

    /// Add a head warm-started as a copy of an existing platform's head.
    /// For platform transfer (Fig. 7) this puts the new head at a
    /// calibrated output scale, so few-sample fine-tuning only has to
    /// learn the platform *difference*.
    pub fn add_head_from(&mut self, src: usize) -> usize {
        let head = self.heads[src].clone();
        self.heads.push(head);
        self.cfg.n_heads = self.heads.len();
        self.heads.len() - 1
    }

    /// Forward pass on *normalized* inputs. `rng` enables dropout
    /// (training mode). Returns the prediction in `ln(1+ms)` space.
    pub fn forward(
        &self,
        nodes: &Matrix,
        adj: &Csr,
        stat: &[f32; STATIC_DIM],
        head_idx: usize,
        rng: Option<&mut Rng64>,
    ) -> (f32, ForwardCache) {
        let mut caches = Vec::new();
        let pooled_no_static: Vec<f32> = if !self.cfg.use_node_feats {
            Vec::new()
        } else {
            let mut h = nodes.clone();
            if self.cfg.use_gnn {
                for layer in &self.sage {
                    let (out, cache) = layer.forward(&h, adj);
                    caches.push(cache);
                    h = out;
                }
            }
            let mut pooled = h.col_sums();
            // Sum pooling (Eq. 5) keeps graph-size information, but its
            // magnitude grows with node count, which mis-conditions the
            // Kaiming-initialized head; a fixed scale restores unit-order
            // inputs without losing the size signal.
            let inv = if self.cfg.mean_pool {
                1.0 / h.rows.max(1) as f32
            } else {
                SUM_POOL_SCALE
            };
            for v in &mut pooled {
                *v *= inv;
            }
            pooled
        };
        let mut emb = pooled_no_static.clone();
        if self.cfg.use_static {
            emb.extend_from_slice(stat);
        }
        let x = Matrix::from_rows(1, emb.len(), emb);
        let (pred, head_cache) = self.heads[head_idx].forward(x, self.cfg.dropout, rng);
        (
            pred,
            ForwardCache {
                sage: caches,
                layer_inputs_rows: nodes.rows,
                pooled_no_static,
                head: head_cache,
                head_idx,
            },
        )
    }

    /// Backward pass; `d_pred` is the loss gradient wrt the scalar output.
    pub fn backward(&self, cache: &ForwardCache, d_pred: f32, adj: &Csr) -> NnlpGrads {
        let (d_emb, head_grad) =
            self.heads[cache.head_idx].backward(&cache.head, d_pred, self.cfg.dropout);
        // Split off the static part (no parameters behind it).
        let graph_dim = cache.pooled_no_static.len();
        let mut sage_grads: Vec<SageGrad> = Vec::new();
        if self.cfg.use_node_feats && self.cfg.use_gnn && !self.sage.is_empty() {
            // Un-pool: sum pooling broadcasts the gradient to every node.
            let n = cache.layer_inputs_rows;
            let scale = if self.cfg.mean_pool {
                1.0 / n as f32
            } else {
                SUM_POOL_SCALE
            };
            let mut d_h = Matrix::from_fn(n, graph_dim, |_, j| d_emb.get(0, j) * scale);
            // Walk the SAGE stack backwards.
            for (layer, c) in self.sage.iter().zip(&cache.sage).rev() {
                let (dx, g) = layer.backward(c, &d_h, adj);
                sage_grads.push(g);
                d_h = dx;
            }
            sage_grads.reverse();
        }
        NnlpGrads {
            sage: sage_grads,
            head: head_grad,
            head_idx: cache.head_idx,
        }
    }

    /// The expensive half of a prediction: normalize the raw features, run
    /// the GNN backbone and pool into the shared graph embedding
    /// (`f(;alpha)` in the paper, static features appended), drawing every
    /// intermediate from `scratch`. The cheap half is
    /// [`NnlpModel::head_eval_with`]; composed they reproduce the training
    /// path's forward bit for bit.
    pub fn embed_with(&self, feats: &GraphFeatures, scratch: &mut Scratch) -> Vec<f32> {
        let stat = self.norm.normalize_stat(&feats.stat);
        let mut emb: Vec<f32> = if !self.cfg.use_node_feats {
            Vec::new()
        } else {
            let mut h = self.norm.normalize_nodes(&feats.nodes);
            if self.cfg.use_gnn {
                for layer in &self.sage {
                    let next = layer.forward_eval(&h, &feats.adj, scratch);
                    scratch.put(h);
                    h = next;
                }
            }
            let mut pooled = h.col_sums();
            let inv = if self.cfg.mean_pool {
                1.0 / h.rows.max(1) as f32
            } else {
                SUM_POOL_SCALE
            };
            scratch.put(h);
            for v in &mut pooled {
                *v *= inv;
            }
            pooled
        };
        if self.cfg.use_static {
            emb.extend_from_slice(&stat);
        }
        emb
    }

    /// [`NnlpModel::embed_with`] over a private scratch arena.
    pub fn embed(&self, feats: &GraphFeatures) -> Vec<f32> {
        self.embed_with(feats, &mut Scratch::new())
    }

    /// The cheap half of a prediction: run one platform head (`g(;beta_P)`)
    /// over a shared embedding and map back to milliseconds. `emb` must
    /// come from [`NnlpModel::embed_with`] (or an embedding cache) for
    /// this exact model.
    pub fn head_eval_with(&self, emb: &[f32], head_idx: usize, scratch: &mut Scratch) -> f64 {
        let mut x = scratch.take(1, emb.len());
        x.data.copy_from_slice(emb);
        let pred = self.heads[head_idx].eval(&x, scratch);
        scratch.put(x);
        (pred as f64).exp_m1().max(1e-6)
    }

    /// [`NnlpModel::head_eval_with`] over a private scratch arena.
    pub fn head_eval(&self, emb: &[f32], head_idx: usize) -> f64 {
        self.head_eval_with(emb, head_idx, &mut Scratch::new())
    }

    /// Predict latency in milliseconds for raw (un-normalized) features.
    pub fn predict_ms(&self, feats: &GraphFeatures, head_idx: usize) -> f64 {
        let mut scratch = Scratch::new();
        let emb = self.embed_with(feats, &mut scratch);
        self.head_eval_with(&emb, head_idx, &mut scratch)
    }

    /// Predict latency on *every* platform head from a single backbone
    /// pass — the §8.5 efficiency of the multi-head design (the shared
    /// embedding is computed once; heads are cheap).
    pub fn predict_all_heads_ms(&self, feats: &GraphFeatures) -> Vec<f64> {
        let mut scratch = Scratch::new();
        let emb = self.embed_with(feats, &mut scratch);
        (0..self.heads.len())
            .map(|h| self.head_eval_with(&emb, h, &mut scratch))
            .collect()
    }

    /// Batched prediction: embeddings run rayon-parallel (one backbone
    /// pass per graph, each worker on its own scratch arena), then each
    /// embedding fans out across `head_idxs`. Returns latencies in
    /// milliseconds indexed `[graph][requested head]`, bit-identical to
    /// calling [`NnlpModel::predict_ms`] per (graph, head) pair.
    pub fn predict_batch(&self, feats: &[GraphFeatures], head_idxs: &[usize]) -> Vec<Vec<f64>> {
        feats
            .par_iter()
            .map(|f| {
                let mut scratch = Scratch::new();
                let emb = self.embed_with(f, &mut scratch);
                head_idxs
                    .iter()
                    .map(|&h| self.head_eval_with(&emb, h, &mut scratch))
                    .collect()
            })
            .collect()
    }

    /// One training loss evaluation (log-space MSE) with gradients.
    pub fn loss_and_grads(
        &self,
        nodes: &Matrix,
        adj: &Csr,
        stat: &[f32; STATIC_DIM],
        target_log: f32,
        head_idx: usize,
        rng: &mut Rng64,
    ) -> (f64, NnlpGrads) {
        let (pred, cache) = self.forward(nodes, adj, stat, head_idx, Some(rng));
        let (loss, grad) = mse_loss(&[pred], &[target_log]);
        let grads = self.backward(&cache, grad[0], adj);
        (loss, grads)
    }

    /// Apply accumulated gradients with Adam. Backbone tensors use keys
    /// `< 10_000`; head `h` tensors use `10_000 + 8h ..`.
    pub fn apply_grads(&mut self, grads: &NnlpGrads, opt: &mut Adam) {
        for (i, (layer, g)) in self.sage.iter_mut().zip(&grads.sage).enumerate() {
            let base = 100 + (i as u64) * 8;
            opt.update(base, &mut layer.w1.w.data, &g.d_w1.dw.data);
            opt.update(base + 1, &mut layer.w1.b, &g.d_w1.db);
            opt.update(base + 2, &mut layer.w2.w.data, &g.d_w2.dw.data);
            opt.update(base + 3, &mut layer.w2.b, &g.d_w2.db);
        }
        let h = grads.head_idx;
        let head = &mut self.heads[h];
        let base = 10_000 + (h as u64) * 8;
        opt.update(base, &mut head.l1.w.data, &grads.head.d1.dw.data);
        opt.update(base + 1, &mut head.l1.b, &grads.head.d1.db);
        opt.update(base + 2, &mut head.l2.w.data, &grads.head.d2.dw.data);
        opt.update(base + 3, &mut head.l2.b, &grads.head.d2.db);
        opt.update(base + 4, &mut head.l3.w.data, &grads.head.d3.dw.data);
        opt.update(base + 5, &mut head.l3.b, &grads.head.d3.db);
    }

    /// Serialize to JSON (model checkpointing for transfer learning).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_features;
    use nnlqp_ir::{GraphBuilder, Shape};

    fn tiny_feats() -> GraphFeatures {
        let mut b = GraphBuilder::new("t", Shape::nchw(1, 3, 16, 16));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let g = b.global_avgpool(r).unwrap();
        let f = b.flatten(g).unwrap();
        b.gemm(f, 10).unwrap();
        extract_features(&b.finish().unwrap())
    }

    fn make_model(cfg: NnlpConfig) -> (NnlpModel, GraphFeatures) {
        let feats = tiny_feats();
        let norm = Normalizer::fit(&[&feats]);
        let mut rng = Rng64::new(80);
        (NnlpModel::new(cfg, norm, &mut rng), feats)
    }

    #[test]
    fn forward_produces_finite_prediction() {
        let (m, feats) = make_model(NnlpConfig::default());
        let p = m.predict_ms(&feats, 0);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn embed_and_head_eval_match_forward_bitwise() {
        for cfg in [
            NnlpConfig::default(),
            NnlpConfig::without_node_features(),
            NnlpConfig::without_gnn(),
            NnlpConfig::without_static(),
            NnlpConfig::brp_nas(),
        ] {
            let (m, feats) = make_model(cfg);
            // Slow path: the training-kernel forward.
            let nodes = m.norm.normalize_nodes(&feats.nodes);
            let stat = m.norm.normalize_stat(&feats.stat);
            let (pred_log, _) = m.forward(&nodes, &feats.adj, &stat, 0, None);
            let want = (pred_log as f64).exp_m1().max(1e-6);
            // Fast path: split embed + head_eval on fused kernels.
            let emb = m.embed(&feats);
            assert_eq!(emb.len(), m.cfg.embedding_dim());
            assert_eq!(m.head_eval(&emb, 0), want);
            assert_eq!(m.predict_ms(&feats, 0), want);
        }
    }

    #[test]
    fn predict_batch_matches_per_sample_bitwise() {
        let (mut m, feats) = make_model(NnlpConfig::default());
        m.add_head(&mut Rng64::new(85));
        let feats2 = {
            let mut b = GraphBuilder::new("t2", Shape::nchw(1, 3, 8, 8));
            let c = b.conv(None, 4, 3, 1, 1, 1).unwrap();
            b.relu(c).unwrap();
            extract_features(&b.finish().unwrap())
        };
        let batch = m.predict_batch(&[feats.clone(), feats2.clone()], &[0, 1]);
        assert_eq!(batch.len(), 2);
        for (f, row) in [&feats, &feats2].into_iter().zip(&batch) {
            assert_eq!(row[0], m.predict_ms(f, 0));
            assert_eq!(row[1], m.predict_ms(f, 1));
        }
        assert_eq!(batch[0], m.predict_all_heads_ms(&feats));
    }

    #[test]
    fn ablation_configs_have_expected_dims() {
        assert_eq!(NnlpConfig::default().embedding_dim(), 64 + 4);
        assert_eq!(NnlpConfig::without_node_features().embedding_dim(), 4);
        assert_eq!(NnlpConfig::without_gnn().embedding_dim(), NODE_FEAT_DIM + 4);
        assert_eq!(NnlpConfig::without_static().embedding_dim(), 64);
        assert_eq!(NnlpConfig::brp_nas().embedding_dim(), 64);
    }

    #[test]
    fn all_configs_forward_and_backward() {
        for cfg in [
            NnlpConfig::default(),
            NnlpConfig::without_node_features(),
            NnlpConfig::without_gnn(),
            NnlpConfig::without_static(),
            NnlpConfig::brp_nas(),
        ] {
            let (m, feats) = make_model(cfg);
            let nodes = m.norm.normalize_nodes(&feats.nodes);
            let stat = m.norm.normalize_stat(&feats.stat);
            let mut rng = Rng64::new(81);
            let (loss, grads) = m.loss_and_grads(&nodes, &feats.adj, &stat, 1.0, 0, &mut rng);
            assert!(loss.is_finite());
            assert_eq!(grads.sage.len(), m.sage.len());
        }
    }

    #[test]
    fn training_single_sample_reduces_loss() {
        let (mut m, feats) = make_model(NnlpConfig {
            dropout: 0.0,
            ..Default::default()
        });
        let nodes = m.norm.normalize_nodes(&feats.nodes);
        let stat = m.norm.normalize_stat(&feats.stat);
        let target = 2.5f32;
        let mut opt = Adam::new(0.01);
        let mut rng = Rng64::new(82);
        let (first, _) = m.loss_and_grads(&nodes, &feats.adj, &stat, target, 0, &mut rng);
        for _ in 0..100 {
            let (_, g) = m.loss_and_grads(&nodes, &feats.adj, &stat, target, 0, &mut rng);
            opt.begin_step();
            m.apply_grads(&g, &mut opt);
        }
        let (last, _) = m.loss_and_grads(&nodes, &feats.adj, &stat, target, 0, &mut rng);
        assert!(last < first * 0.05, "loss {first} -> {last}");
    }

    #[test]
    fn end_to_end_gradcheck_backbone() {
        // Finite-difference check through the whole model (no dropout).
        let (m, feats) = make_model(NnlpConfig {
            dropout: 0.0,
            gnn_layers: 2,
            hidden: 8,
            head_hidden: 8,
            ..Default::default()
        });
        let nodes = m.norm.normalize_nodes(&feats.nodes);
        let stat = m.norm.normalize_stat(&feats.stat);
        let target = 1.0f32;
        let mut rng = Rng64::new(83);
        let (_, grads) = m.loss_and_grads(&nodes, &feats.adj, &stat, target, 0, &mut rng);
        let h = 1e-2f32;
        let loss_of = |mm: &NnlpModel| {
            let (p, _) = mm.forward(&nodes, &feats.adj, &stat, 0, None);
            ((p - target) as f64).powi(2)
        };
        for &(i, j) in &[(0usize, 0usize), (3, 5)] {
            let mut mp = m.clone();
            let mut mm2 = m.clone();
            let base = m.sage[0].w1.w.get(i, j);
            mp.sage[0].w1.w.set(i, j, base + h);
            mm2.sage[0].w1.w.set(i, j, base - h);
            let num = (loss_of(&mp) - loss_of(&mm2)) / (2.0 * h as f64);
            let analytic = grads.sage[0].d_w1.dw.get(i, j) as f64;
            assert!(
                (num - analytic).abs() < 5e-2 * (1.0 + num.abs()),
                "sage0.w1[{i},{j}] num {num} vs {analytic}"
            );
        }
    }

    #[test]
    fn add_head_extends_model() {
        let (mut m, feats) = make_model(NnlpConfig::default());
        let idx = m.add_head(&mut Rng64::new(84));
        assert_eq!(idx, 1);
        assert!(m.predict_ms(&feats, 1).is_finite());
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let (m, feats) = make_model(NnlpConfig::default());
        let m2 = NnlpModel::from_json(&m.to_json()).unwrap();
        assert_eq!(m.predict_ms(&feats, 0), m2.predict_ms(&feats, 0));
    }
}
