//! The [`Predictor`] trait: the embed/head split that has always lived
//! inside [`NnlpModel`], formalized so every future model — transformer
//! encoders, quantized variants, platform-transfer pools — is a drop-in
//! behind one object-safe API.
//!
//! The split is the contract the whole serving stack is built on:
//!
//! * [`Predictor::embed_with`] is the expensive half (backbone + pooling)
//!   whose output the facade's `EmbedCache` stores;
//! * [`Predictor::head_eval_with`] is the cheap per-platform half run on
//!   cache hits;
//! * [`Predictor::identity`] names the architecture for cache keying, so
//!   an A/B hot-swap between architectures can never resolve a stale
//!   cross-architecture embedding;
//! * [`Predictor::train_in_place`] / [`Predictor::to_json`] are the
//!   serializable train/eval entry points the retrain loop and model
//!   checkpointing use.

use crate::features::GraphFeatures;
use crate::model::NnlpModel;
use crate::train::{train, Sample, TrainConfig, TrainReport};
use crate::transformer::TransformerModel;
use nnlqp_nn::Scratch;
use rayon::prelude::*;
use std::fmt;
use std::str::FromStr;

/// The predictor architectures this workspace ships. `#[non_exhaustive]`:
/// future PRs add variants (quantized, platform-transfer, ...) without a
/// breaking change, so downstream `match`es need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredictorKind {
    /// GraphSAGE backbone + per-platform MLP heads (the paper's NNLP).
    #[default]
    Sage,
    /// Multi-head self-attention encoder with an adjacency-derived
    /// attention bias (NAR-Former-V2 direction).
    Transformer,
}

impl PredictorKind {
    /// Stable architecture discriminant for embed-cache keying. These
    /// values are part of the cache-key contract: never reuse or renumber.
    pub fn id(self) -> u64 {
        match self {
            PredictorKind::Sage => 1,
            PredictorKind::Transformer => 2,
        }
    }

    /// Canonical lowercase name (the `--arch` flag vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            PredictorKind::Sage => "sage",
            PredictorKind::Transformer => "transformer",
        }
    }

    /// Every kind, for "run all architectures" loops (benches, CI).
    pub fn all() -> &'static [PredictorKind] {
        &[PredictorKind::Sage, PredictorKind::Transformer]
    }
}

impl fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for PredictorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sage" | "graphsage" | "gnn" => Ok(PredictorKind::Sage),
            "transformer" | "attn" | "attention" => Ok(PredictorKind::Transformer),
            other => Err(format!(
                "unknown predictor architecture '{other}' (expected sage|transformer)"
            )),
        }
    }
}

/// A latency/accuracy predictor split into an expensive graph-embedding
/// half and cheap per-platform heads. Object-safe: the facade stores
/// `Arc<dyn Predictor>` and hot-swaps implementations at runtime.
pub trait Predictor: Send + Sync {
    /// Which architecture this is.
    fn kind(&self) -> PredictorKind;

    /// Stable identity for embed-cache keying. Embeddings from predictors
    /// with different identities are never interchangeable; the default is
    /// the architecture discriminant.
    fn identity(&self) -> u64 {
        self.kind().id()
    }

    /// Width of the pooled graph embedding entering a head.
    fn embedding_dim(&self) -> usize;

    /// Number of per-platform heads.
    fn n_heads(&self) -> usize;

    /// The expensive half: normalize raw features, run the backbone and
    /// pool into the shared graph embedding, drawing every intermediate
    /// from `scratch`.
    fn embed_with(&self, feats: &GraphFeatures, scratch: &mut Scratch) -> Vec<f32>;

    /// [`Predictor::embed_with`] over a private scratch arena.
    fn embed(&self, feats: &GraphFeatures) -> Vec<f32> {
        self.embed_with(feats, &mut Scratch::new())
    }

    /// The cheap half: one platform head over a shared embedding, mapped
    /// back to output units (ms for latency, percent for accuracy). `emb`
    /// must come from this exact predictor's [`Predictor::embed_with`].
    fn head_eval_with(&self, emb: &[f32], head_idx: usize, scratch: &mut Scratch) -> f64;

    /// [`Predictor::head_eval_with`] over a private scratch arena.
    fn head_eval(&self, emb: &[f32], head_idx: usize) -> f64 {
        self.head_eval_with(emb, head_idx, &mut Scratch::new())
    }

    /// Embed + head in one call.
    fn predict_ms(&self, feats: &GraphFeatures, head_idx: usize) -> f64 {
        let mut scratch = Scratch::new();
        let emb = self.embed_with(feats, &mut scratch);
        self.head_eval_with(&emb, head_idx, &mut scratch)
    }

    /// Batched prediction: one backbone pass per graph (rayon-parallel,
    /// each worker on its own scratch arena), fanned out across
    /// `head_idxs`. Bit-identical to per-(graph, head)
    /// [`Predictor::predict_ms`] calls.
    fn predict_batch(&self, feats: &[GraphFeatures], head_idxs: &[usize]) -> Vec<Vec<f64>> {
        feats
            .par_iter()
            .map(|f| {
                let mut scratch = Scratch::new();
                let emb = self.embed_with(f, &mut scratch);
                head_idxs
                    .iter()
                    .map(|&h| self.head_eval_with(&emb, h, &mut scratch))
                    .collect()
            })
            .collect()
    }

    /// Train on pre-normalized samples (mini-batch Adam; Algorithm 1).
    fn train_in_place(&mut self, samples: &[Sample], cfg: TrainConfig) -> TrainReport;

    /// Serialize to JSON (checkpointing / transfer). The inverse is
    /// [`predictor_from_json`], which dispatches on the architecture tag.
    fn to_json(&self) -> String;
}

impl Predictor for NnlpModel {
    fn kind(&self) -> PredictorKind {
        PredictorKind::Sage
    }

    fn embedding_dim(&self) -> usize {
        self.cfg.embedding_dim()
    }

    fn n_heads(&self) -> usize {
        self.heads.len()
    }

    fn embed_with(&self, feats: &GraphFeatures, scratch: &mut Scratch) -> Vec<f32> {
        NnlpModel::embed_with(self, feats, scratch)
    }

    fn head_eval_with(&self, emb: &[f32], head_idx: usize, scratch: &mut Scratch) -> f64 {
        NnlpModel::head_eval_with(self, emb, head_idx, scratch)
    }

    fn predict_batch(&self, feats: &[GraphFeatures], head_idxs: &[usize]) -> Vec<Vec<f64>> {
        NnlpModel::predict_batch(self, feats, head_idxs)
    }

    fn train_in_place(&mut self, samples: &[Sample], cfg: TrainConfig) -> TrainReport {
        train(self, samples, cfg)
    }

    fn to_json(&self) -> String {
        NnlpModel::to_json(self)
    }
}

/// Deserialize any [`Predictor`] from its [`Predictor::to_json`] form.
/// Transformer checkpoints carry a `"kind"` tag; `"quantized"` documents
/// wrap an inner f32 checkpoint and re-derive their int8 tables
/// deterministically; untagged documents are the legacy GraphSAGE format,
/// kept readable for existing checkpoints.
pub fn predictor_from_json(s: &str) -> Result<Box<dyn Predictor>, String> {
    let v: serde_json::Value = serde_json::from_str(s).map_err(|e| e.to_string())?;
    match v["kind"].as_str() {
        Some("transformer") => Ok(Box::new(TransformerModel::from_json(s)?)),
        Some("quantized") => Ok(Box::new(crate::quant::QuantizedPredictor::from_inner_json(
            s,
        )?)),
        Some(other) => Err(format!("unknown predictor kind '{other}'")),
        None => NnlpModel::from_json(s)
            .map(|m| Box::new(m) as Box<dyn Predictor>)
            .map_err(|e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{extract_features, Normalizer};
    use crate::model::NnlpConfig;
    use nnlqp_ir::{GraphBuilder, Rng64, Shape};

    fn tiny_feats() -> GraphFeatures {
        let mut b = GraphBuilder::new("t", Shape::nchw(1, 3, 16, 16));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let g = b.global_avgpool(r).unwrap();
        let f = b.flatten(g).unwrap();
        b.gemm(f, 10).unwrap();
        extract_features(&b.finish().unwrap())
    }

    #[test]
    fn kind_roundtrips_through_strings() {
        for &k in PredictorKind::all() {
            assert_eq!(k.to_string().parse::<PredictorKind>().unwrap(), k);
        }
        assert_eq!(
            "SAGE".parse::<PredictorKind>().unwrap(),
            PredictorKind::Sage
        );
        assert!("resnet".parse::<PredictorKind>().is_err());
    }

    #[test]
    fn kind_ids_are_distinct_and_stable() {
        assert_eq!(PredictorKind::Sage.id(), 1);
        assert_eq!(PredictorKind::Transformer.id(), 2);
    }

    #[test]
    fn sage_trait_path_is_bitwise_identical_to_direct_calls() {
        let feats = tiny_feats();
        let norm = Normalizer::fit(&[&feats]);
        let mut rng = Rng64::new(70);
        let m = NnlpModel::new(NnlpConfig::default(), norm, &mut rng);
        let dynref: &dyn Predictor = &m;
        assert_eq!(dynref.kind(), PredictorKind::Sage);
        assert_eq!(dynref.identity(), PredictorKind::Sage.id());
        assert_eq!(dynref.embedding_dim(), m.cfg.embedding_dim());
        // Single prediction, embed/head split and batch all agree with the
        // legacy direct path — bit for bit.
        assert_eq!(dynref.predict_ms(&feats, 0), m.predict_ms(&feats, 0));
        let emb = dynref.embed(&feats);
        assert_eq!(emb, m.embed(&feats));
        assert_eq!(dynref.head_eval(&emb, 0), m.head_eval(&emb, 0));
        assert_eq!(
            dynref.predict_batch(std::slice::from_ref(&feats), &[0]),
            NnlpModel::predict_batch(&m, std::slice::from_ref(&feats), &[0])
        );
    }

    #[test]
    fn json_dispatch_restores_the_right_architecture() {
        let feats = tiny_feats();
        let norm = Normalizer::fit(&[&feats]);
        let mut rng = Rng64::new(71);
        let sage = NnlpModel::new(NnlpConfig::default(), norm, &mut rng);
        let back = predictor_from_json(&Predictor::to_json(&sage)).unwrap();
        assert_eq!(back.kind(), PredictorKind::Sage);
        assert_eq!(back.predict_ms(&feats, 0), sage.predict_ms(&feats, 0));
        assert!(predictor_from_json("{\"kind\": \"marsprobe\"}").is_err());
    }
}
