//! The int8 quantized inference path: a [`QuantizedPredictor`] freezes a
//! trained f32 champion's `Linear` layers into [`QuantLinear`] (symmetric
//! per-output-channel weights, per-row dynamic activations — see
//! `nnlqp_nn::quant`) while every structurally sensitive op — mean
//! aggregation, the attention core (scores, bias, softmax, value mixing),
//! ReLU, row L2 normalization, pooling — stays f32. This is weight-only
//! dynamic quantization: the GEMMs that dominate inference run i8×i8→i32,
//! everything else is untouched, so accuracy degrades only through weight
//! and activation rounding.
//!
//! Training never sees int8. The serve layer quantizes a champion at
//! publish time and only installs it after an accuracy parity check
//! (`quantize_on_publish` in the serve config); [`QuantizedPredictor`]
//! itself refuses [`Predictor::train_in_place`].
//!
//! Serialization: `{"kind": "quantized", "inner": <f32 checkpoint>}`.
//! The f32 weights are the checkpoint of record; quantization is
//! deterministic, so reloading re-derives bit-identical int8 tables.

use crate::features::{GraphFeatures, Normalizer};
use crate::model::{Head, NnlpConfig, NnlpModel, SUM_POOL_SCALE};
use crate::predictor::{Predictor, PredictorKind};
use crate::train::{Sample, TrainConfig, TrainReport};
use crate::transformer::{TransformerConfig, TransformerModel};
use nnlqp_nn::attention::attend_eval;
use nnlqp_nn::{
    attention_bias, l2_normalize_rows_inplace, relu_inplace, Activation, AttnLayer, Matrix,
    QuantLinear, QuantRow, SageLayer, Scratch,
};

/// Offset added to the inner architecture's [`PredictorKind::id`] to form
/// a quantized predictor's [`Predictor::identity`]. Part of the
/// embed-cache key contract: a quantized sage (101) or transformer (102)
/// can never resolve an f32 embedding, and vice versa. Never reuse or
/// renumber.
pub const QUANT_IDENTITY_OFFSET: u64 = 100;

/// One platform head with all three FC layers quantized; the eval sweep
/// mirrors `Head::eval` (FC→ReLU→FC→ReLU→FC) on the int8 kernels.
struct QuantHead {
    l1: QuantLinear,
    l2: QuantLinear,
    l3: QuantLinear,
}

impl QuantHead {
    fn from_head(h: &Head) -> Self {
        QuantHead {
            l1: QuantLinear::from_linear(&h.l1),
            l2: QuantLinear::from_linear(&h.l2),
            l3: QuantLinear::from_linear(&h.l3),
        }
    }

    fn eval(&self, x: &Matrix, scratch: &mut Scratch, qrow: &mut QuantRow) -> f32 {
        let mut a1 = scratch.take(x.rows, self.l1.out_dim());
        self.l1.forward_quant(x, &mut a1, Activation::Relu, qrow);
        let mut a2 = scratch.take(a1.rows, self.l2.out_dim());
        self.l2.forward_quant(&a1, &mut a2, Activation::Relu, qrow);
        let mut out = scratch.take(a2.rows, 1);
        self.l3
            .forward_quant(&a2, &mut out, Activation::Identity, qrow);
        let pred = out.get(0, 0);
        scratch.put(a1);
        scratch.put(a2);
        scratch.put(out);
        pred
    }
}

/// A SAGE convolution with quantized self/neighbor transforms; the mean
/// aggregation, ReLU and L2 normalization mirror `SageLayer::forward_eval`
/// in f32.
struct QuantSageLayer {
    w1: QuantLinear,
    w2: QuantLinear,
    relu: bool,
}

impl QuantSageLayer {
    fn from_layer(l: &SageLayer) -> Self {
        QuantSageLayer {
            w1: QuantLinear::from_linear(&l.w1),
            w2: QuantLinear::from_linear(&l.w2),
            relu: l.relu,
        }
    }

    fn forward_eval(
        &self,
        x: &Matrix,
        adj: &nnlqp_nn::Csr,
        scratch: &mut Scratch,
        qrow: &mut QuantRow,
    ) -> Matrix {
        let mut agg = scratch.take(x.rows, x.cols);
        adj.mean_agg_into(x, &mut agg);
        let mut out = scratch.take(x.rows, self.w1.out_dim());
        self.w1
            .forward_quant(x, &mut out, Activation::Identity, qrow);
        let mut y2 = scratch.take(x.rows, self.w2.out_dim());
        self.w2
            .forward_quant(&agg, &mut y2, Activation::Identity, qrow);
        out.add_assign(&y2);
        scratch.put(agg);
        scratch.put(y2);
        if self.relu {
            relu_inplace(&mut out);
        }
        l2_normalize_rows_inplace(&mut out);
        out
    }
}

/// An attention block with all five projections quantized. The attention
/// core itself — scores, bias, softmax, value mixing — runs the shared
/// f32 [`attend_eval`]: activation×activation products have no frozen
/// weight tensor to pre-quantize, and the softmax is the numerically
/// delicate part of the whole model.
struct QuantAttnLayer {
    wq: QuantLinear,
    wk: QuantLinear,
    wv: QuantLinear,
    wo: QuantLinear,
    w1: QuantLinear,
    n_heads: usize,
    relu: bool,
}

impl QuantAttnLayer {
    fn from_layer(l: &AttnLayer) -> Self {
        QuantAttnLayer {
            wq: QuantLinear::from_linear(&l.wq),
            wk: QuantLinear::from_linear(&l.wk),
            wv: QuantLinear::from_linear(&l.wv),
            wo: QuantLinear::from_linear(&l.wo),
            w1: QuantLinear::from_linear(&l.w1),
            n_heads: l.n_heads,
            relu: l.relu,
        }
    }

    fn forward_eval(
        &self,
        x: &Matrix,
        bias: &Matrix,
        scratch: &mut Scratch,
        qrow: &mut QuantRow,
    ) -> Matrix {
        let mut q = scratch.take(x.rows, self.wq.out_dim());
        self.wq.forward_quant(x, &mut q, Activation::Identity, qrow);
        let mut k = scratch.take(x.rows, self.wk.out_dim());
        self.wk.forward_quant(x, &mut k, Activation::Identity, qrow);
        let mut v = scratch.take(x.rows, self.wv.out_dim());
        self.wv.forward_quant(x, &mut v, Activation::Identity, qrow);
        let o = attend_eval(&q, &k, &v, bias, self.n_heads, scratch);
        scratch.put(q);
        scratch.put(k);
        scratch.put(v);
        let mut out = scratch.take(x.rows, self.w1.out_dim());
        self.w1
            .forward_quant(x, &mut out, Activation::Identity, qrow);
        let mut mixed = scratch.take(o.rows, self.wo.out_dim());
        self.wo
            .forward_quant(&o, &mut mixed, Activation::Identity, qrow);
        scratch.put(o);
        out.add_assign(&mixed);
        scratch.put(mixed);
        if self.relu {
            relu_inplace(&mut out);
        }
        l2_normalize_rows_inplace(&mut out);
        out
    }
}

/// Quantized mirror of the SAGE backbone + heads.
struct QuantSageModel {
    cfg: NnlpConfig,
    sage: Vec<QuantSageLayer>,
    heads: Vec<QuantHead>,
    norm: Normalizer,
}

impl QuantSageModel {
    fn from_model(m: &NnlpModel) -> Self {
        QuantSageModel {
            cfg: m.cfg,
            sage: m.sage.iter().map(QuantSageLayer::from_layer).collect(),
            heads: m.heads.iter().map(QuantHead::from_head).collect(),
            norm: m.norm.clone(),
        }
    }

    /// Mirror of `NnlpModel::embed_with`, including every ablation switch,
    /// with the SAGE transforms on the int8 path.
    fn embed_with(
        &self,
        feats: &GraphFeatures,
        scratch: &mut Scratch,
        qrow: &mut QuantRow,
    ) -> Vec<f32> {
        let stat = self.norm.normalize_stat(&feats.stat);
        let mut emb: Vec<f32> = if !self.cfg.use_node_feats {
            Vec::new()
        } else {
            let mut h = self.norm.normalize_nodes(&feats.nodes);
            if self.cfg.use_gnn {
                for layer in &self.sage {
                    let next = layer.forward_eval(&h, &feats.adj, scratch, qrow);
                    scratch.put(h);
                    h = next;
                }
            }
            let mut pooled = h.col_sums();
            let inv = if self.cfg.mean_pool {
                1.0 / h.rows.max(1) as f32
            } else {
                SUM_POOL_SCALE
            };
            scratch.put(h);
            for v in &mut pooled {
                *v *= inv;
            }
            pooled
        };
        if self.cfg.use_static {
            emb.extend_from_slice(&stat);
        }
        emb
    }
}

/// Quantized mirror of the transformer backbone + heads.
struct QuantTransformerModel {
    cfg: TransformerConfig,
    embed_in: QuantLinear,
    blocks: Vec<QuantAttnLayer>,
    heads: Vec<QuantHead>,
    norm: Normalizer,
}

impl QuantTransformerModel {
    fn from_model(m: &TransformerModel) -> Self {
        QuantTransformerModel {
            cfg: m.cfg,
            embed_in: QuantLinear::from_linear(&m.embed_in),
            blocks: m.blocks.iter().map(QuantAttnLayer::from_layer).collect(),
            heads: m.heads.iter().map(QuantHead::from_head).collect(),
            norm: m.norm.clone(),
        }
    }

    /// Mirror of `TransformerModel::embed_with` with the token embedding
    /// and block projections on the int8 path.
    fn embed_with(
        &self,
        feats: &GraphFeatures,
        scratch: &mut Scratch,
        qrow: &mut QuantRow,
    ) -> Vec<f32> {
        let stat = self.norm.normalize_stat(&feats.stat);
        let nodes = self.norm.normalize_nodes(&feats.nodes);
        let bias = attention_bias(&feats.adj);
        let mut h = scratch.take(nodes.rows, self.embed_in.out_dim());
        self.embed_in
            .forward_quant(&nodes, &mut h, Activation::Identity, qrow);
        for block in &self.blocks {
            let next = block.forward_eval(&h, &bias, scratch, qrow);
            scratch.put(h);
            h = next;
        }
        let mut pooled = h.col_sums();
        scratch.put(h);
        for v in &mut pooled {
            *v *= SUM_POOL_SCALE;
        }
        let mut emb = pooled;
        emb.extend_from_slice(&stat);
        emb
    }
}

enum QuantBackbone {
    Sage(QuantSageModel),
    Transformer(QuantTransformerModel),
}

/// An inference-only int8 wrapper around a trained f32 predictor. Built
/// by [`quantize_predictor`]; installed by the serve layer only after the
/// accuracy parity gate passes.
pub struct QuantizedPredictor {
    inner_kind: PredictorKind,
    backbone: QuantBackbone,
    /// The f32 checkpoint of record — quantization re-derives the int8
    /// tables deterministically from it on every load.
    inner_json: String,
}

/// Quantize a trained predictor into its int8 inference form. Goes
/// through the checkpoint JSON, so it works on any `dyn Predictor` and is
/// byte-for-byte the same operation as reloading a serialized quantized
/// checkpoint. Idempotent: quantizing an already-quantized predictor
/// re-quantizes the same inner f32 weights.
pub fn quantize_predictor(p: &dyn Predictor) -> Result<QuantizedPredictor, String> {
    QuantizedPredictor::from_inner_json(&p.to_json())
}

impl QuantizedPredictor {
    /// Build from an f32 checkpoint document (or a `"quantized"` document,
    /// whose inner checkpoint is unwrapped).
    pub fn from_inner_json(s: &str) -> Result<Self, String> {
        let v: serde_json::Value = serde_json::from_str(s).map_err(|e| e.to_string())?;
        match v["kind"].as_str() {
            Some("quantized") => {
                let inner = &v["inner"];
                if inner.is_null() {
                    return Err("quantized checkpoint missing inner model".to_string());
                }
                Self::from_inner_json(&inner.to_string())
            }
            Some("transformer") => {
                let m = TransformerModel::from_json(s)?;
                Ok(QuantizedPredictor {
                    inner_kind: PredictorKind::Transformer,
                    backbone: QuantBackbone::Transformer(QuantTransformerModel::from_model(&m)),
                    inner_json: s.to_string(),
                })
            }
            Some(other) => Err(format!("cannot quantize predictor kind '{other}'")),
            None => {
                let m = NnlpModel::from_json(s).map_err(|e| e.to_string())?;
                Ok(QuantizedPredictor {
                    inner_kind: PredictorKind::Sage,
                    backbone: QuantBackbone::Sage(QuantSageModel::from_model(&m)),
                    inner_json: s.to_string(),
                })
            }
        }
    }
}

impl Predictor for QuantizedPredictor {
    /// The *inner* architecture: routing, fresh-model construction and
    /// `--arch` vocabulary stay unaware of quantization.
    fn kind(&self) -> PredictorKind {
        self.inner_kind
    }

    /// `QUANT_IDENTITY_OFFSET + inner id` — distinct from every f32
    /// identity so cached embeddings never cross the precision boundary.
    fn identity(&self) -> u64 {
        QUANT_IDENTITY_OFFSET + self.inner_kind.id()
    }

    fn embedding_dim(&self) -> usize {
        match &self.backbone {
            QuantBackbone::Sage(m) => m.cfg.embedding_dim(),
            QuantBackbone::Transformer(m) => m.cfg.embedding_dim(),
        }
    }

    fn n_heads(&self) -> usize {
        match &self.backbone {
            QuantBackbone::Sage(m) => m.heads.len(),
            QuantBackbone::Transformer(m) => m.heads.len(),
        }
    }

    fn embed_with(&self, feats: &GraphFeatures, scratch: &mut Scratch) -> Vec<f32> {
        let mut qrow = QuantRow::new();
        match &self.backbone {
            QuantBackbone::Sage(m) => m.embed_with(feats, scratch, &mut qrow),
            QuantBackbone::Transformer(m) => m.embed_with(feats, scratch, &mut qrow),
        }
    }

    fn head_eval_with(&self, emb: &[f32], head_idx: usize, scratch: &mut Scratch) -> f64 {
        let mut qrow = QuantRow::new();
        let mut x = scratch.take(1, emb.len());
        x.data.copy_from_slice(emb);
        let pred = match &self.backbone {
            QuantBackbone::Sage(m) => m.heads[head_idx].eval(&x, scratch, &mut qrow),
            QuantBackbone::Transformer(m) => m.heads[head_idx].eval(&x, scratch, &mut qrow),
        };
        scratch.put(x);
        (pred as f64).exp_m1().max(1e-6)
    }

    /// Quantized predictors are frozen deployment artifacts: retraining
    /// happens on the f32 champion, which is then re-quantized.
    fn train_in_place(&mut self, _samples: &[Sample], _cfg: TrainConfig) -> TrainReport {
        panic!("QuantizedPredictor is inference-only: retrain the f32 champion and re-quantize");
    }

    fn to_json(&self) -> String {
        let inner: serde_json::Value =
            serde_json::from_str(&self.inner_json).expect("inner checkpoint reparses");
        serde_json::json!({
            "kind": "quantized",
            "inner": inner,
        })
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_features;
    use crate::model::NnlpConfig;
    use crate::predictor::predictor_from_json;
    use nnlqp_ir::{GraphBuilder, Rng64, Shape};

    fn tiny_feats() -> GraphFeatures {
        let mut b = GraphBuilder::new("t", Shape::nchw(1, 3, 16, 16));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let g = b.global_avgpool(r).unwrap();
        let f = b.flatten(g).unwrap();
        b.gemm(f, 10).unwrap();
        extract_features(&b.finish().unwrap())
    }

    fn sage_model() -> (NnlpModel, GraphFeatures) {
        let feats = tiny_feats();
        let norm = Normalizer::fit(&[&feats]);
        let mut rng = Rng64::new(90);
        (NnlpModel::new(NnlpConfig::default(), norm, &mut rng), feats)
    }

    fn transformer_model() -> (TransformerModel, GraphFeatures) {
        let feats = tiny_feats();
        let norm = Normalizer::fit(&[&feats]);
        let mut rng = Rng64::new(91);
        (
            TransformerModel::new(TransformerConfig::default(), norm, &mut rng),
            feats,
        )
    }

    #[test]
    fn quantized_sage_tracks_f32_in_log_space() {
        let (m, feats) = sage_model();
        let q = quantize_predictor(&m).unwrap();
        assert_eq!(q.kind(), PredictorKind::Sage);
        assert_eq!(q.identity(), 101);
        assert_eq!(q.embedding_dim(), m.cfg.embedding_dim());
        assert_eq!(q.n_heads(), 1);
        let pf = Predictor::predict_ms(&m, &feats, 0);
        let pq = Predictor::predict_ms(&q, &feats, 0);
        assert!(pq.is_finite() && pq > 0.0);
        assert!(
            (pf.ln_1p() - pq.ln_1p()).abs() < 0.25,
            "f32 {pf} vs quant {pq}"
        );
    }

    #[test]
    fn quantized_transformer_tracks_f32_in_log_space() {
        let (m, feats) = transformer_model();
        let q = quantize_predictor(&m).unwrap();
        assert_eq!(q.kind(), PredictorKind::Transformer);
        assert_eq!(q.identity(), 102);
        let pf = Predictor::predict_ms(&m, &feats, 0);
        let pq = Predictor::predict_ms(&q, &feats, 0);
        assert!(pq.is_finite() && pq > 0.0);
        assert!(
            (pf.ln_1p() - pq.ln_1p()).abs() < 0.25,
            "f32 {pf} vs quant {pq}"
        );
    }

    #[test]
    fn quantized_json_roundtrip_is_bitwise_stable() {
        for build in [
            || -> Box<dyn Predictor> { Box::new(sage_model().0) },
            || -> Box<dyn Predictor> { Box::new(transformer_model().0) },
        ] {
            let m = build();
            let feats = tiny_feats();
            let q = quantize_predictor(m.as_ref()).unwrap();
            let back = predictor_from_json(&Predictor::to_json(&q)).unwrap();
            // Quantization is deterministic: the reloaded predictor is the
            // same int8 tables, so predictions match bit for bit.
            assert_eq!(back.identity(), q.identity());
            assert_eq!(back.kind(), q.kind());
            assert_eq!(
                back.predict_ms(&feats, 0),
                Predictor::predict_ms(&q, &feats, 0)
            );
        }
    }

    #[test]
    fn quantizing_a_quantized_predictor_is_idempotent() {
        let (m, feats) = sage_model();
        let q1 = quantize_predictor(&m).unwrap();
        let q2 = quantize_predictor(&q1).unwrap();
        assert_eq!(q2.identity(), q1.identity());
        assert_eq!(
            Predictor::predict_ms(&q2, &feats, 0),
            Predictor::predict_ms(&q1, &feats, 0)
        );
    }

    #[test]
    fn quantized_ablation_configs_embed() {
        // Every ablation switch flows through the quantized sage mirror.
        let feats = tiny_feats();
        let norm = Normalizer::fit(&[&feats]);
        for cfg in [
            NnlpConfig::without_node_features(),
            NnlpConfig::without_gnn(),
            NnlpConfig::without_static(),
            NnlpConfig::brp_nas(),
        ] {
            let mut rng = Rng64::new(92);
            let m = NnlpModel::new(cfg, norm.clone(), &mut rng);
            let q = quantize_predictor(&m).unwrap();
            let emb = Predictor::embed(&q, &feats);
            assert_eq!(emb.len(), m.cfg.embedding_dim());
            assert!(Predictor::predict_ms(&q, &feats, 0).is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn quantized_predictor_refuses_training() {
        let (m, _) = sage_model();
        let mut q = quantize_predictor(&m).unwrap();
        q.train_in_place(&[], TrainConfig::default());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(QuantizedPredictor::from_inner_json("{\"kind\":\"marsprobe\"}").is_err());
        assert!(QuantizedPredictor::from_inner_json("{\"kind\":\"quantized\"}").is_err());
    }
}
