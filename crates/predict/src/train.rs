//! Dataset assembly and the training loops (Algorithm 1).
//!
//! Mini-batch training per §8.1: batch size 16, Adam at lr 1e-3, average
//! batch loss backpropagated. Per-sample gradients are computed in
//! parallel with rayon (the model is borrowed immutably), summed, then
//! applied in one optimizer step — numerically identical to sequential
//! batch accumulation.

use crate::features::{extract_features, GraphFeatures, Normalizer, STATIC_DIM};
use crate::model::{NnlpGrads, NnlpModel};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_nn::{Adam, Csr, Matrix};
use rayon::prelude::*;

/// One training/evaluation sample with pre-normalized features.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Normalized node features.
    pub nodes: Matrix,
    /// Adjacency.
    pub adj: Csr,
    /// Normalized static features.
    pub stat: [f32; STATIC_DIM],
    /// Ground-truth latency in ms.
    pub target_ms: f64,
    /// Target in `ln(1+ms)` space.
    pub target_log: f32,
    /// Head (platform) index.
    pub head: usize,
}

/// A normalized dataset bound to the normalizer that produced it.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Samples.
    pub samples: Vec<Sample>,
    /// The normalizer (needed to featurize unseen graphs consistently).
    pub norm: Normalizer,
}

impl Dataset {
    /// Build from `(graph, latency_ms, head)` triples. The normalizer is
    /// fitted on exactly these graphs — fit on *training* data only, then
    /// use [`Dataset::extend_with`] for evaluation sets.
    pub fn build(entries: &[(&Graph, f64, usize)]) -> Dataset {
        // Feature extraction is the serial front half of every retrain
        // (including serve's background retrain loop) — run it, and the
        // per-sample normalization, graph-parallel with rayon.
        let feats: Vec<GraphFeatures> = entries
            .par_iter()
            .map(|(g, _, _)| extract_features(g))
            .collect();
        let norm = Normalizer::fit(&feats.iter().collect::<Vec<_>>());
        let samples = feats
            .par_iter()
            .zip(entries)
            .map(|(f, (_, ms, head))| make_sample(f, *ms, *head, &norm))
            .collect();
        Dataset { samples, norm }
    }

    /// Featurize additional graphs with this dataset's normalizer
    /// (graph-parallel, like [`Dataset::build`]).
    pub fn extend_with(&self, entries: &[(&Graph, f64, usize)]) -> Vec<Sample> {
        entries
            .par_iter()
            .map(|(g, ms, head)| {
                let f = extract_features(g);
                make_sample(&f, *ms, *head, &self.norm)
            })
            .collect()
    }
}

fn make_sample(f: &GraphFeatures, ms: f64, head: usize, norm: &Normalizer) -> Sample {
    Sample {
        nodes: norm.normalize_nodes(&f.nodes),
        adj: f.adj.clone(),
        stat: norm.normalize_stat(&f.stat),
        target_ms: ms,
        target_log: (ms.max(0.0)).ln_1p() as f32,
        head,
    }
}

/// Training hyper-parameters (§8.1 defaults).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed (shuffling, dropout).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 1e-3,
            seed: 1,
        }
    }
}

/// Loss trajectory of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean log-space MSE per epoch.
    pub epoch_loss: Vec<f64>,
}

/// Train a model in place on `samples` (multi-platform capable: each
/// sample routes its gradient to its own head while the backbone is shared
/// — Algorithm 1 with mini-batching).
pub fn train(model: &mut NnlpModel, samples: &[Sample], cfg: TrainConfig) -> TrainReport {
    assert!(!samples.is_empty(), "empty training set");
    let mut opt = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = Rng64::new(cfg.seed);
    let mut epoch_loss = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        rng.shuffle(&mut order);
        let mut total = 0.0f64;
        for (bi, batch) in order.chunks(cfg.batch_size).enumerate() {
            // Per-sample (loss, grads) in parallel; the model is immutable.
            let results: Vec<(f64, NnlpGrads)> = batch
                .par_iter()
                .map(|&si| {
                    let s = &samples[si];
                    let mut srng = Rng64::new(
                        cfg.seed ^ ((epoch as u64) << 40) ^ ((bi as u64) << 20) ^ si as u64,
                    );
                    model.loss_and_grads(&s.nodes, &s.adj, &s.stat, s.target_log, s.head, &mut srng)
                })
                .collect();

            // Accumulate: shared backbone over the whole batch; heads per
            // platform.
            let inv = 1.0 / batch.len() as f32;
            let mut acc: Option<NnlpGrads> = None;
            let mut head_acc: std::collections::HashMap<usize, crate::model::HeadGrad> =
                std::collections::HashMap::new();
            for (loss, g) in results {
                total += loss;
                head_acc
                    .entry(g.head_idx)
                    .and_modify(|hg| hg.add_assign(&g.head))
                    .or_insert_with(|| g.head.clone());
                match &mut acc {
                    None => acc = Some(g),
                    Some(a) => {
                        for (sa, sg) in a.sage.iter_mut().zip(&g.sage) {
                            sa.add_assign(sg);
                        }
                    }
                }
            }
            let Some(mut a) = acc else { continue };
            for sg in &mut a.sage {
                sg.scale(inv);
            }
            opt.begin_step();
            apply_backbone(model, &a, &mut opt);
            for (head_idx, mut hg) in head_acc {
                hg.scale(inv);
                apply_head(model, head_idx, &hg, &mut opt);
            }
        }
        epoch_loss.push(total / samples.len() as f64);
    }
    TrainReport { epoch_loss }
}

fn apply_backbone(model: &mut NnlpModel, grads: &NnlpGrads, opt: &mut Adam) {
    for (i, (layer, g)) in model.sage.iter_mut().zip(&grads.sage).enumerate() {
        let base = 100 + (i as u64) * 8;
        opt.update(base, &mut layer.w1.w.data, &g.d_w1.dw.data);
        opt.update(base + 1, &mut layer.w1.b, &g.d_w1.db);
        opt.update(base + 2, &mut layer.w2.w.data, &g.d_w2.dw.data);
        opt.update(base + 3, &mut layer.w2.b, &g.d_w2.db);
    }
}

fn apply_head(model: &mut NnlpModel, head_idx: usize, hg: &crate::model::HeadGrad, opt: &mut Adam) {
    let head = &mut model.heads[head_idx];
    let base = 10_000 + (head_idx as u64) * 8;
    opt.update(base, &mut head.l1.w.data, &hg.d1.dw.data);
    opt.update(base + 1, &mut head.l1.b, &hg.d1.db);
    opt.update(base + 2, &mut head.l2.w.data, &hg.d2.dw.data);
    opt.update(base + 3, &mut head.l2.b, &hg.d2.db);
    opt.update(base + 4, &mut head.l3.w.data, &hg.d3.dw.data);
    opt.update(base + 5, &mut head.l3.b, &hg.d3.db);
}

/// Predict latencies (ms) for a slice of samples.
pub fn predict_samples(model: &NnlpModel, samples: &[Sample]) -> Vec<f64> {
    samples
        .par_iter()
        .map(|s| {
            let (p, _) = model.forward(&s.nodes, &s.adj, &s.stat, s.head, None);
            (p as f64).exp_m1().max(1e-6)
        })
        .collect()
}

/// Ground-truth latencies (ms) of a slice of samples.
pub fn truths(samples: &[Sample]) -> Vec<f64> {
    samples.iter().map(|s| s.target_ms).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;
    use crate::model::NnlpConfig;
    use nnlqp_models::ModelFamily;
    use nnlqp_sim::{measure, PlatformSpec};

    /// Small real corpus: canonical + sampled variants across 3 families.
    fn corpus(n_per_family: usize, seed: u64) -> Vec<(Graph, f64)> {
        let platform = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let mut out = Vec::new();
        for f in [
            ModelFamily::ResNet,
            ModelFamily::MobileNetV2,
            ModelFamily::SqueezeNet,
        ] {
            for m in nnlqp_models::generate_family(f, n_per_family, seed) {
                let lat = measure(&m.graph, &platform, 5, seed).mean_ms;
                out.push((m.graph, lat));
            }
        }
        out
    }

    #[test]
    fn training_converges_and_beats_mean_predictor() {
        let data = corpus(12, 7);
        let entries: Vec<(&Graph, f64, usize)> =
            data.iter().map(|(g, l)| (g, *l, 0usize)).collect();
        let ds = Dataset::build(&entries);
        // Shuffled split so train and test cover all three families.
        let mut idx: Vec<usize> = (0..ds.samples.len()).collect();
        Rng64::new(89).shuffle(&mut idx);
        let train_s: Vec<Sample> = idx[..30].iter().map(|&i| ds.samples[i].clone()).collect();
        let test_s: Vec<Sample> = idx[30..].iter().map(|&i| ds.samples[i].clone()).collect();
        let (train_s, test_s) = (&train_s[..], &test_s[..]);
        let mut rng = Rng64::new(90);
        let mut model = NnlpModel::new(
            NnlpConfig {
                hidden: 32,
                head_hidden: 32,
                gnn_layers: 2,
                dropout: 0.0,
                ..Default::default()
            },
            ds.norm.clone(),
            &mut rng,
        );
        let report = train(
            &mut model,
            train_s,
            TrainConfig {
                epochs: 60,
                batch_size: 8,
                lr: 2e-3,
                seed: 3,
            },
        );
        assert!(
            report.epoch_loss.last().unwrap() < &(report.epoch_loss[0] * 0.2),
            "loss {:?} -> {:?}",
            report.epoch_loss[0],
            report.epoch_loss.last().unwrap()
        );
        let preds = predict_samples(&model, test_s);
        let t = truths(test_s);
        let model_mape = mape(&preds, &t);
        // Mean predictor baseline.
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        let mean_mape = mape(&vec![mean; t.len()], &t);
        assert!(
            model_mape < mean_mape,
            "model {model_mape}% vs mean-predictor {mean_mape}%"
        );
    }

    #[test]
    fn multi_head_training_routes_gradients() {
        // Two synthetic platforms: head 1 sees 3x the latency of head 0.
        let data = corpus(8, 11);
        let mut entries: Vec<(&Graph, f64, usize)> = Vec::new();
        for (g, l) in &data {
            entries.push((g, *l, 0usize));
        }
        for (g, l) in &data {
            entries.push((g, *l * 3.0, 1usize));
        }
        let ds = Dataset::build(&entries);
        let mut rng = Rng64::new(91);
        let mut model = NnlpModel::new(
            NnlpConfig {
                hidden: 32,
                head_hidden: 32,
                gnn_layers: 2,
                n_heads: 2,
                dropout: 0.0,
                ..Default::default()
            },
            ds.norm.clone(),
            &mut rng,
        );
        train(
            &mut model,
            &ds.samples,
            TrainConfig {
                epochs: 50,
                batch_size: 8,
                lr: 2e-3,
                seed: 5,
            },
        );
        // The two heads must diverge: same graph, ~3x ratio.
        let s0 = &ds.samples[0];
        let (p0, _) = model.forward(&s0.nodes, &s0.adj, &s0.stat, 0, None);
        let (p1, _) = model.forward(&s0.nodes, &s0.adj, &s0.stat, 1, None);
        let r = (p1 as f64).exp_m1() / (p0 as f64).exp_m1();
        assert!(r > 1.8, "head ratio {r}, p0 {p0} p1 {p1}");
    }

    #[test]
    fn dataset_extend_uses_train_normalizer() {
        let data = corpus(4, 13);
        let entries: Vec<(&Graph, f64, usize)> =
            data.iter().map(|(g, l)| (g, *l, 0usize)).collect();
        let ds = Dataset::build(&entries[..8]);
        let extra = ds.extend_with(&entries[8..]);
        assert_eq!(extra.len(), entries.len() - 8);
        for s in &extra {
            assert!(s.target_log > 0.0);
        }
    }
}
