//! Kernel-level predictors: the nn-Meter and TPU baselines (Appendix E)
//! and NNLP-on-kernels (Table 5).
//!
//! Both baselines follow the paper's protocol: predict each fused kernel's
//! *isolated* latency, sum over the model's kernels, then correct the sum
//! with a linear regression fitted against true model latencies (the
//! correction is needed because additivity does not hold — Fig. 2).

use crate::features::extract_kernel_features;
use crate::model::{NnlpConfig, NnlpModel};
use crate::train::{train, Sample, TrainConfig};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_nn::{LinearRegression, RandomForest, RandomForestConfig};
use nnlqp_sim::fusion::{self, Kernel, KernelDesc, KernelFamily};
use nnlqp_sim::{kernel_latency_isolated_ms, PlatformSpec};
use std::collections::HashMap;

/// Measured (kernel, isolated latency) dataset entry.
#[derive(Debug, Clone)]
pub struct KernelSample {
    /// Index of the parent graph in the corpus.
    pub graph_idx: usize,
    /// The fused kernel.
    pub kernel: Kernel,
    /// Numeric description.
    pub desc: KernelDesc,
    /// Isolated latency with measurement jitter (the kernel benchmark).
    pub latency_ms: f64,
}

/// Split a corpus into kernels and measure each in isolation (with the
/// same jitter model as whole-model measurements).
pub fn build_kernel_dataset(
    graphs: &[&Graph],
    platform: &PlatformSpec,
    seed: u64,
) -> Vec<KernelSample> {
    let mut rng = Rng64::new(seed ^ 0x4B45_524E);
    let mut out = Vec::new();
    for (gi, g) in graphs.iter().enumerate() {
        for k in fusion::fuse(g) {
            let desc = fusion::describe(g, &k, platform.dtype);
            let base = kernel_latency_isolated_ms(&desc, platform);
            let noisy = base * (1.0 + rng.normal(0.0, 0.012));
            out.push(KernelSample {
                graph_idx: gi,
                kernel: k,
                desc,
                latency_ms: noisy.max(base * 0.5),
            });
        }
    }
    out
}

/// Hand-crafted kernel features for the random-forest regressor, in the
/// spirit of nn-Meter's per-kernel feature vectors.
pub fn kernel_feature_vector(d: &KernelDesc) -> Vec<f64> {
    vec![
        (d.flops / 1e6).ln_1p(),
        (d.read_bytes / 1e3).ln_1p(),
        (d.write_bytes / 1e3).ln_1p(),
        (d.out_elems).ln_1p(),
        d.out_channels as f64,
        d.out_h as f64,
        d.kernel_hw as f64,
        (d.groups as f64).ln_1p(),
        d.stride as f64,
        d.batch as f64,
    ]
}

/// nn-Meter baseline: one random forest per kernel family + linear
/// correction of the kernel-latency sum.
#[derive(Debug)]
pub struct NnMeter {
    forests: HashMap<KernelFamily, RandomForest>,
    correction: LinearRegression,
}

impl NnMeter {
    /// Train from a kernel dataset plus `(graph, true latency)` pairs for
    /// the correction fit.
    pub fn fit(
        kernel_data: &[KernelSample],
        model_data: &[(&Graph, f64)],
        platform: &PlatformSpec,
        seed: u64,
    ) -> NnMeter {
        // Group kernels by family.
        let mut by_family: HashMap<KernelFamily, (Vec<Vec<f64>>, Vec<f64>)> = HashMap::new();
        for ks in kernel_data {
            let e = by_family.entry(ks.desc.family).or_default();
            e.0.push(kernel_feature_vector(&ks.desc));
            e.1.push(ks.latency_ms.ln_1p());
        }
        let forests: HashMap<KernelFamily, RandomForest> = by_family
            .into_iter()
            .map(|(fam, (x, y))| {
                let cfg = RandomForestConfig {
                    n_trees: 30,
                    ..Default::default()
                };
                (fam, RandomForest::fit(&x, &y, cfg, seed ^ fam as u64))
            })
            .collect();
        // Correction: predicted kernel-sum -> true model latency.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (g, true_ms) in model_data {
            let sum = Self::raw_sum(&forests, g, platform);
            xs.push(vec![sum]);
            ys.push(*true_ms);
        }
        let correction = LinearRegression::fit(&xs, &ys, 1e-9);
        NnMeter {
            forests,
            correction,
        }
    }

    fn raw_sum(
        forests: &HashMap<KernelFamily, RandomForest>,
        g: &Graph,
        platform: &PlatformSpec,
    ) -> f64 {
        fusion::fuse(g)
            .iter()
            .map(|k| {
                let d = fusion::describe(g, k, platform.dtype);
                match forests.get(&d.family) {
                    Some(f) => f.predict(&kernel_feature_vector(&d)).exp_m1().max(0.0),
                    // Unseen family: fall back to the analytic roofline.
                    None => kernel_latency_isolated_ms(&d, platform),
                }
            })
            .sum()
    }

    /// Predict a kernel's isolated latency in ms.
    pub fn predict_kernel(&self, d: &KernelDesc, platform: &PlatformSpec) -> f64 {
        match self.forests.get(&d.family) {
            Some(f) => f.predict(&kernel_feature_vector(d)).exp_m1().max(1e-6),
            None => kernel_latency_isolated_ms(d, platform),
        }
    }

    /// Predict a whole model's latency (corrected kernel sum).
    pub fn predict_model(&self, g: &Graph, platform: &PlatformSpec) -> f64 {
        let sum = Self::raw_sum(&self.forests, g, platform);
        self.correction.predict(&[sum]).max(1e-6)
    }
}

/// TPU baseline: a GraphSAGE model over *kernels* (each kernel is a tiny
/// graph), summed and linearly corrected.
pub struct TpuPredictor {
    model: NnlpModel,
    correction: LinearRegression,
}

impl TpuPredictor {
    /// Train the kernel-level GNN then fit the correction.
    pub fn fit(
        graphs: &[&Graph],
        kernel_data: &[KernelSample],
        model_data: &[(&Graph, f64)],
        epochs: usize,
        seed: u64,
    ) -> TpuPredictor {
        // Kernel-level dataset for the GNN.
        let feats: Vec<crate::features::GraphFeatures> = kernel_data
            .iter()
            .map(|ks| extract_kernel_features(graphs[ks.graph_idx], &ks.kernel))
            .collect();
        let norm = crate::features::Normalizer::fit(&feats.iter().collect::<Vec<_>>());
        let samples: Vec<Sample> = feats
            .iter()
            .zip(kernel_data)
            .map(|(f, ks)| Sample {
                nodes: norm.normalize_nodes(&f.nodes),
                adj: f.adj.clone(),
                stat: norm.normalize_stat(&f.stat),
                target_ms: ks.latency_ms,
                target_log: ks.latency_ms.ln_1p() as f32,
                head: 0,
            })
            .collect();
        let mut rng = Rng64::new(seed);
        let mut model = NnlpModel::new(
            NnlpConfig {
                hidden: 32,
                head_hidden: 32,
                gnn_layers: 2,
                dropout: 0.0,
                ..Default::default()
            },
            norm,
            &mut rng,
        );
        train(
            &mut model,
            &samples,
            TrainConfig {
                epochs,
                seed,
                ..Default::default()
            },
        );
        // Correction over model latencies (identity when no model-level
        // data is supplied, e.g. kernel-only evaluation in Table 5).
        let correction = if model_data.is_empty() {
            LinearRegression {
                coef: vec![1.0],
                intercept: 0.0,
            }
        } else {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for (g, true_ms) in model_data {
                xs.push(vec![Self::raw_sum(&model, g)]);
                ys.push(*true_ms);
            }
            LinearRegression::fit(&xs, &ys, 1e-9)
        };
        TpuPredictor { model, correction }
    }

    fn raw_sum(model: &NnlpModel, g: &Graph) -> f64 {
        fusion::fuse(g)
            .iter()
            .map(|k| {
                let f = extract_kernel_features(g, k);
                model.predict_ms(&f, 0)
            })
            .sum()
    }

    /// Predict a kernel's isolated latency in ms.
    pub fn predict_kernel(&self, g: &Graph, k: &Kernel) -> f64 {
        let f = extract_kernel_features(g, k);
        self.model.predict_ms(&f, 0)
    }

    /// Predict a whole model's latency (corrected kernel sum).
    pub fn predict_model(&self, g: &Graph) -> f64 {
        self.correction
            .predict(&[Self::raw_sum(&self.model, g)])
            .max(1e-6)
    }
}

/// NNLP applied at kernel level (Table 5): the standard model trained on
/// kernels-as-graphs.
pub struct NnlpKernelPredictor {
    model: NnlpModel,
}

impl NnlpKernelPredictor {
    /// Train on a kernel dataset.
    pub fn fit(
        graphs: &[&Graph],
        kernel_data: &[KernelSample],
        epochs: usize,
        seed: u64,
    ) -> NnlpKernelPredictor {
        let feats: Vec<crate::features::GraphFeatures> = kernel_data
            .iter()
            .map(|ks| extract_kernel_features(graphs[ks.graph_idx], &ks.kernel))
            .collect();
        let norm = crate::features::Normalizer::fit(&feats.iter().collect::<Vec<_>>());
        let samples: Vec<Sample> = feats
            .iter()
            .zip(kernel_data)
            .map(|(f, ks)| Sample {
                nodes: norm.normalize_nodes(&f.nodes),
                adj: f.adj.clone(),
                stat: norm.normalize_stat(&f.stat),
                target_ms: ks.latency_ms,
                target_log: ks.latency_ms.ln_1p() as f32,
                head: 0,
            })
            .collect();
        let mut rng = Rng64::new(seed ^ 0x7A617);
        let mut model = NnlpModel::new(
            NnlpConfig {
                hidden: 32,
                head_hidden: 32,
                gnn_layers: 2,
                dropout: 0.0,
                ..Default::default()
            },
            norm,
            &mut rng,
        );
        train(
            &mut model,
            &samples,
            TrainConfig {
                epochs,
                seed,
                ..Default::default()
            },
        );
        NnlpKernelPredictor { model }
    }

    /// Predict a kernel's isolated latency in ms.
    pub fn predict_kernel(&self, g: &Graph, k: &Kernel) -> f64 {
        self.model.predict_ms(&extract_kernel_features(g, k), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;
    use nnlqp_models::ModelFamily;
    use nnlqp_sim::exec::model_latency_ms;

    fn small_corpus() -> (Vec<Graph>, Vec<f64>, PlatformSpec) {
        let p = PlatformSpec::by_name("gpu-gtx1660-trt7.1-fp32").unwrap();
        let mut graphs = Vec::new();
        let mut lats = Vec::new();
        for f in [ModelFamily::ResNet, ModelFamily::SqueezeNet] {
            for m in nnlqp_models::generate_family(f, 10, 17) {
                lats.push(model_latency_ms(&m.graph, &p));
                graphs.push(m.graph);
            }
        }
        (graphs, lats, p)
    }

    #[test]
    fn kernel_dataset_covers_models() {
        let (graphs, _, p) = small_corpus();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let ks = build_kernel_dataset(&refs, &p, 1);
        assert!(ks.len() > graphs.len() * 5, "kernels {}", ks.len());
        assert!(ks.iter().all(|k| k.latency_ms > 0.0));
        // Every graph contributed.
        let covered: std::collections::HashSet<usize> = ks.iter().map(|k| k.graph_idx).collect();
        assert_eq!(covered.len(), graphs.len());
    }

    #[test]
    fn nn_meter_learns_kernels_and_models() {
        let (graphs, lats, p) = small_corpus();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let kd = build_kernel_dataset(&refs, &p, 2);
        let md: Vec<(&Graph, f64)> = refs.iter().zip(&lats).map(|(g, l)| (*g, *l)).collect();
        let nm = NnMeter::fit(&kd, &md, &p, 3);
        // Kernel-level predictions close to isolated truth on train set.
        let preds: Vec<f64> = kd.iter().map(|k| nm.predict_kernel(&k.desc, &p)).collect();
        let truth: Vec<f64> = kd.iter().map(|k| k.latency_ms).collect();
        let m = mape(&preds, &truth);
        assert!(m < 25.0, "kernel MAPE {m}%");
        // Model predictions in the right ballpark.
        let mp: Vec<f64> = refs.iter().map(|g| nm.predict_model(g, &p)).collect();
        let mm = mape(&mp, &lats);
        assert!(mm < 40.0, "model MAPE {mm}%");
    }

    #[test]
    fn corrected_sum_beats_raw_sum() {
        // The linear correction must improve on the naive kernel sum
        // (which systematically over-estimates, Fig. 2).
        let (graphs, lats, p) = small_corpus();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let kd = build_kernel_dataset(&refs, &p, 4);
        let md: Vec<(&Graph, f64)> = refs.iter().zip(&lats).map(|(g, l)| (*g, *l)).collect();
        let nm = NnMeter::fit(&kd, &md, &p, 5);
        let corrected: Vec<f64> = refs.iter().map(|g| nm.predict_model(g, &p)).collect();
        let raw: Vec<f64> = refs
            .iter()
            .map(|g| nnlqp_sim::exec::sum_kernel_latencies_ms(g, &p))
            .collect();
        assert!(mape(&corrected, &lats) < mape(&raw, &lats));
    }
}
