//! # nnlqp-predict
//!
//! NNLP — the neural-network latency predictor (paper §6):
//!
//! * the **unified graph embedding**: node features (one-hot operator ⊕
//!   attribute vector ⊕ output-shape encoding, Eq. 3), GraphSAGE node
//!   embeddings (Eq. 4) and the graph-level embedding with its four static
//!   features (batch, FLOPs, params, memory access, Eq. 5);
//! * the **multi-platform predictor**: a shared GNN backbone with one MLP
//!   head per platform, trained with Adam/MSE per Algorithm 1;
//! * **transfer learning** for unseen structures, unseen platforms and new
//!   tasks (§6.2, Figs. 6–8);
//! * the **baselines** of Table 3: FLOPs / FLOPs+MAC linear regression,
//!   nn-Meter (random forests over fused kernels + corrected summation),
//!   TPU (learned kernel model + corrected summation) and BRP-NAS (GCN
//!   without static features);
//! * the evaluation **metrics**: MAPE, error-bound accuracy Acc(δ)
//!   (Appendix C) and Kendall's tau for the NAS study.
//!
//! Deviation note: training minimizes MSE in `ln(1+ms)` space rather than
//! raw milliseconds. The paper's corpus spans three orders of magnitude of
//! latency; raw-MSE training lets the largest models dominate the loss,
//! and the log transform is the standard remedy (it is monotone, so MAPE /
//! Acc(δ) comparisons are unaffected in kind).

pub mod baselines;
pub mod features;
pub mod kernels;
pub mod metrics;
pub mod model;
pub mod predictor;
pub mod quant;
pub mod train;
pub mod transfer;
pub mod transformer;

pub use features::{
    extract_features, extract_kernel_features, GraphFeatures, Normalizer, NODE_FEAT_DIM, STATIC_DIM,
};
pub use metrics::{acc_at, kendall_tau, mape};
pub use model::{Head, NnlpConfig, NnlpModel};
pub use nnlqp_nn::Scratch;
pub use predictor::{predictor_from_json, Predictor, PredictorKind};
pub use quant::{quantize_predictor, QuantizedPredictor, QUANT_IDENTITY_OFFSET};
pub use train::{train, Dataset, Sample, TrainConfig, TrainReport};
pub use transformer::{train_transformer, TransformerConfig, TransformerModel};
