//! Transfer learning (§6.2, Figs. 6–8): load pre-trained parameters and
//! fine-tune on a small sample set.

use crate::model::NnlpModel;
use crate::train::{train, Sample, TrainConfig, TrainReport};
use nnlqp_ir::Rng64;

/// Fine-tune a clone of `pretrained` on `samples` (unseen *structures*:
/// both the backbone `alpha` and the head `beta` continue training, as in
/// Fig. 5 left). Returns the fine-tuned model.
pub fn fine_tune_structures(
    pretrained: &NnlpModel,
    samples: &[Sample],
    cfg: TrainConfig,
) -> (NnlpModel, TrainReport) {
    let mut model = pretrained.clone();
    let report = train(&mut model, samples, cfg);
    (model, report)
}

/// Fine-tune for an unseen *platform* (Fig. 5 right): the backbone is
/// loaded from the multi-platform pre-trained model, a fresh head
/// `beta_Px` is attached, and both are fine-tuned on the new platform's
/// samples. Samples must already carry the new head's index (the return
/// value of the internal `add_head`), which this helper assigns for you.
pub fn fine_tune_platform(
    pretrained: &NnlpModel,
    samples: &[Sample],
    cfg: TrainConfig,
) -> (NnlpModel, usize, TrainReport) {
    let mut model = pretrained.clone();
    // Warm-start from an existing platform head (calibrated output scale)
    // when one exists; otherwise initialize fresh.
    let head = if model.heads.is_empty() {
        let mut rng = Rng64::new(cfg.seed ^ 0x9EAD);
        model.add_head(&mut rng)
    } else {
        model.add_head_from(0)
    };
    let routed: Vec<Sample> = samples
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.head = head;
            s
        })
        .collect();
    let report = train(&mut model, &routed, cfg);
    (model, head, report)
}

/// Train a fresh model of the same architecture from scratch — the
/// "general learning" control curve of Figs. 6–8.
pub fn train_from_scratch(
    reference: &NnlpModel,
    samples: &[Sample],
    cfg: TrainConfig,
) -> (NnlpModel, TrainReport) {
    let mut rng = Rng64::new(cfg.seed ^ 0x5C5A);
    let mut model = NnlpModel::new(reference.cfg, reference.norm.clone(), &mut rng);
    // Keep head count aligned with sample routing.
    let max_head = samples.iter().map(|s| s.head).max().unwrap_or(0);
    while model.heads.len() <= max_head {
        model.add_head(&mut rng);
    }
    let report = train(&mut model, samples, cfg);
    (model, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::acc_at;
    use crate::model::NnlpConfig;
    use crate::train::{predict_samples, truths, Dataset};
    use nnlqp_ir::Graph;
    use nnlqp_models::ModelFamily;
    use nnlqp_sim::{exec::model_latency_ms, PlatformSpec};

    fn family_data(f: ModelFamily, n: usize, seed: u64, p: &PlatformSpec) -> Vec<(Graph, f64)> {
        nnlqp_models::generate_family(f, n, seed)
            .into_iter()
            .map(|m| {
                let l = model_latency_ms(&m.graph, p);
                (m.graph, l)
            })
            .collect()
    }

    #[test]
    fn pretraining_helps_with_few_samples() {
        // Pretrain on MobileNetV2 + SqueezeNet, fine-tune on 16 ResNets,
        // compare against scratch-training on the same 16.
        let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let mut pre = family_data(ModelFamily::MobileNetV2, 25, 21, &p);
        pre.extend(family_data(ModelFamily::SqueezeNet, 25, 22, &p));
        let entries: Vec<(&Graph, f64, usize)> = pre.iter().map(|(g, l)| (g, *l, 0usize)).collect();
        let ds = Dataset::build(&entries);
        let mut rng = Rng64::new(23);
        let mut base = NnlpModel::new(
            NnlpConfig {
                hidden: 32,
                head_hidden: 32,
                gnn_layers: 2,
                dropout: 0.0,
                ..Default::default()
            },
            ds.norm.clone(),
            &mut rng,
        );
        train(
            &mut base,
            &ds.samples,
            TrainConfig {
                epochs: 40,
                batch_size: 8,
                lr: 2e-3,
                seed: 24,
            },
        );

        let rn = family_data(ModelFamily::ResNet, 48, 25, &p);
        let rn_entries: Vec<(&Graph, f64, usize)> =
            rn.iter().map(|(g, l)| (g, *l, 0usize)).collect();
        let rn_samples = ds.extend_with(&rn_entries);
        let (ft_set, test_set) = rn_samples.split_at(16);

        let ft_cfg = TrainConfig {
            epochs: 25,
            batch_size: 8,
            lr: 1e-3,
            seed: 26,
        };
        let (tuned, _) = fine_tune_structures(&base, ft_set, ft_cfg);
        let (scratch, _) = train_from_scratch(&base, ft_set, ft_cfg);

        let t = truths(test_set);
        let acc_tuned = acc_at(&predict_samples(&tuned, test_set), &t, 0.10);
        let acc_scratch = acc_at(&predict_samples(&scratch, test_set), &t, 0.10);
        // Fig. 6: the pre-trained curve lies above the scratch curve at
        // small sample counts. Allow equality-slack but require a margin.
        assert!(
            acc_tuned + 1.0 >= acc_scratch,
            "tuned {acc_tuned}% vs scratch {acc_scratch}%"
        );
    }

    #[test]
    fn platform_transfer_adds_and_trains_new_head() {
        let gpu = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let asic = PlatformSpec::by_name("hi3559A-nnie11-int8").unwrap();
        let data = family_data(ModelFamily::ResNet, 30, 31, &gpu);
        let entries: Vec<(&Graph, f64, usize)> =
            data.iter().map(|(g, l)| (g, *l, 0usize)).collect();
        let ds = Dataset::build(&entries);
        let mut rng = Rng64::new(32);
        let mut base = NnlpModel::new(
            NnlpConfig {
                hidden: 32,
                head_hidden: 32,
                gnn_layers: 2,
                dropout: 0.0,
                ..Default::default()
            },
            ds.norm.clone(),
            &mut rng,
        );
        train(
            &mut base,
            &ds.samples,
            TrainConfig {
                epochs: 25,
                batch_size: 8,
                lr: 2e-3,
                seed: 33,
            },
        );
        // New platform data.
        let asic_data = family_data(ModelFamily::ResNet, 20, 34, &asic);
        let asic_entries: Vec<(&Graph, f64, usize)> =
            asic_data.iter().map(|(g, l)| (g, *l, 0usize)).collect();
        let asic_samples = ds.extend_with(&asic_entries);
        let (tuned, head, _) = fine_tune_platform(
            &base,
            &asic_samples,
            TrainConfig {
                epochs: 25,
                batch_size: 8,
                lr: 2e-3,
                seed: 35,
            },
        );
        assert_eq!(head, 1);
        assert_eq!(tuned.heads.len(), 2);
        // The original head is untouched by construction of the routing.
        let s = &ds.samples[0];
        let (p_orig, _) = base.forward(&s.nodes, &s.adj, &s.stat, 0, None);
        let (p_kept, _) = tuned.forward(&s.nodes, &s.adj, &s.stat, 0, None);
        // Backbone changed, so predictions may drift, but must stay finite.
        assert!(p_orig.is_finite() && p_kept.is_finite());
    }
}
