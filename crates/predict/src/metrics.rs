//! Evaluation metrics (Appendix C) plus Kendall's tau for the NAS study.
//!
//! The MAPE / Acc(δ) formulas themselves live in `nnlqp-obs` and are
//! re-exported here: the serving layer's online shadow evaluator
//! (`nnlqp_obs::ErrorWindow`) and this crate's offline training/eval code
//! must be the *same* functions so that online and offline quality
//! numbers agree bitwise on the same pairs (pinned by
//! `tests/quality_monitor.rs` and the parity test below).

pub use nnlqp_obs::{acc_at, mape};

/// Kendall's tau-a rank correlation between two paired samples.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    assert!(n >= 2, "kendall tau needs >= 2 samples");
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_formula_parity_with_obs() {
        // `mape`/`acc_at` here must be the exact `nnlqp-obs` functions —
        // re-exported, not reimplemented — so the online shadow evaluator
        // and offline evaluation can never drift apart.
        let p = [110.0, 95.5, 130.25];
        let t = [100.0, 100.0, 120.0];
        assert_eq!(mape(&p, &t).to_bits(), nnlqp_obs::mape(&p, &t).to_bits());
        assert_eq!(
            acc_at(&p, &t, 0.10).to_bits(),
            nnlqp_obs::acc_at(&p, &t, 0.10).to_bits()
        );
    }

    #[test]
    fn mape_known_values() {
        let m = mape(&[110.0, 90.0], &[100.0, 100.0]);
        assert!((m - 10.0).abs() < 1e-9);
        assert_eq!(mape(&[5.0], &[5.0]), 0.0);
    }

    #[test]
    fn acc_boundary_inclusive() {
        // Exactly 10% error counts as within Acc(10%).
        let a = acc_at(&[110.0, 130.0], &[100.0, 100.0], 0.10);
        assert!((a - 50.0).abs() < 1e-9);
    }

    #[test]
    fn acc_perfect_and_zero() {
        assert_eq!(acc_at(&[1.0, 2.0], &[1.0, 2.0], 0.1), 100.0);
        assert_eq!(acc_at(&[2.0, 4.0], &[1.0, 2.0], 0.1), 0.0);
    }

    #[test]
    fn kendall_perfect_and_inverted() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_uncorrelated_near_zero() {
        use nnlqp_ir::Rng64;
        let mut r = Rng64::new(70);
        let a: Vec<f64> = (0..500).map(|_| r.uniform()).collect();
        let b: Vec<f64> = (0..500).map(|_| r.uniform()).collect();
        assert!(kendall_tau(&a, &b).abs() < 0.08);
    }

    #[test]
    fn kendall_ties_reduce_magnitude() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let t = kendall_tau(&a, &b);
        assert!(t > 0.0 && t < 1.0, "tau {t}");
    }
}
