//! Evaluation metrics (Appendix C) plus Kendall's tau for the NAS study.

/// Mean Absolute Percentage Error (Eq. 6), in percent. Lower is better.
pub fn mape(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty(), "empty metric input");
    let s: f64 = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| ((p - t) / t).abs())
        .sum();
    s / pred.len() as f64 * 100.0
}

/// Error-bound accuracy Acc(δ) (Eq. 7), in percent: the share of samples
/// whose relative error is within `delta` (e.g. 0.10). Higher is better.
pub fn acc_at(pred: &[f64], truth: &[f64], delta: f64) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty(), "empty metric input");
    let hit = pred
        .iter()
        .zip(truth)
        .filter(|(p, t)| ((*p - *t) / *t).abs() <= delta)
        .count();
    hit as f64 / pred.len() as f64 * 100.0
}

/// Kendall's tau-a rank correlation between two paired samples.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    assert!(n >= 2, "kendall tau needs >= 2 samples");
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_known_values() {
        let m = mape(&[110.0, 90.0], &[100.0, 100.0]);
        assert!((m - 10.0).abs() < 1e-9);
        assert_eq!(mape(&[5.0], &[5.0]), 0.0);
    }

    #[test]
    fn acc_boundary_inclusive() {
        // Exactly 10% error counts as within Acc(10%).
        let a = acc_at(&[110.0, 130.0], &[100.0, 100.0], 0.10);
        assert!((a - 50.0).abs() < 1e-9);
    }

    #[test]
    fn acc_perfect_and_zero() {
        assert_eq!(acc_at(&[1.0, 2.0], &[1.0, 2.0], 0.1), 100.0);
        assert_eq!(acc_at(&[2.0, 4.0], &[1.0, 2.0], 0.1), 0.0);
    }

    #[test]
    fn kendall_perfect_and_inverted() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_uncorrelated_near_zero() {
        use nnlqp_ir::Rng64;
        let mut r = Rng64::new(70);
        let a: Vec<f64> = (0..500).map(|_| r.uniform()).collect();
        let b: Vec<f64> = (0..500).map(|_| r.uniform()).collect();
        assert!(kendall_tau(&a, &b).abs() < 0.08);
    }

    #[test]
    fn kendall_ties_reduce_magnitude() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let t = kendall_tau(&a, &b);
        assert!(t > 0.0 && t < 1.0, "tau {t}");
    }
}
