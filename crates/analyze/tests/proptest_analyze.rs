//! Property tests for the analyzer: every built-in model family lints
//! clean, and seeded mutations each trigger their specific diagnostic code.

use nnlqp_analyze::{analyze, fusion_checks, schedule_checks, Analyzer, Code};
use nnlqp_ir::{Graph, NodeId, Rng64, Shape};
use nnlqp_models::family::CORPUS_FAMILIES;
use nnlqp_models::ModelFamily;
use nnlqp_sim::platform::PlatformSpec;
use nnlqp_sim::{exec, fusion};
use proptest::prelude::*;

fn t4() -> PlatformSpec {
    PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap()
}

/// A canonical family graph picked by seed.
fn family_graph(seed: u64) -> Graph {
    let f = CORPUS_FAMILIES[(seed as usize) % CORPUS_FAMILIES.len()];
    f.canonical().unwrap()
}

#[test]
fn every_builtin_family_lints_clean() {
    let p = t4();
    let analyzer = Analyzer::full();
    for f in CORPUS_FAMILIES {
        let g = f.canonical().unwrap();
        let report = analyzer.analyze(&g, Some(&p));
        assert!(!report.has_errors(), "{f}:\n{}", report.render_text());
        assert_eq!(report.passes_run.len(), 5, "{f} skipped a pass");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sampled (randomized) family variants lint without errors too — the
    /// strict query path must never reject a graph our own generators made.
    #[test]
    fn sampled_family_variants_lint_clean(seed in 0u64..1_000) {
        let f = CORPUS_FAMILIES[(seed as usize) % CORPUS_FAMILIES.len()];
        let mut r = Rng64::new(seed);
        let g = f.sample(&format!("prop-{seed}"), &mut r).unwrap();
        let report = analyze(&g, Some(&t4()));
        prop_assert!(!report.has_errors(), "{}", report.render_text());
    }

    /// NNL001: retargeting an edge at a nonexistent node.
    #[test]
    fn dangling_input_triggers_nnl001(seed in 0u64..64) {
        let mut g = family_graph(seed);
        let mut r = Rng64::new(seed);
        // Pick a non-source node and point one input out of range.
        let victims: Vec<usize> =
            (0..g.len()).filter(|&i| !g.nodes[i].inputs.is_empty()).collect();
        let v = victims[r.below(victims.len())];
        g.nodes[v].inputs[0] = NodeId(g.len() as u32 + 7);
        let report = analyze(&g, None);
        prop_assert!(report.has_code(Code::OrphanInput), "{}", report.render_text());
        prop_assert!(report.has_errors());
    }

    /// NNL002: shuffling the node vector of a sequential model breaks
    /// canonical topological order.
    #[test]
    fn shuffled_node_order_triggers_nnl002(seed in 0u64..64) {
        // VGG is a chain: every non-identity permutation breaks order.
        let mut g = ModelFamily::Vgg.canonical().unwrap();
        let mut r = Rng64::new(seed ^ 0xabcd);
        // Seeded Fisher-Yates, retried until the permutation moves something.
        let before = g.nodes.clone();
        loop {
            for i in (1..g.nodes.len()).rev() {
                g.nodes.swap(i, r.below(i + 1));
            }
            if g.nodes != before {
                break;
            }
        }
        let report = analyze(&g, None);
        prop_assert!(report.has_code(Code::NonCanonicalOrder), "{}", report.render_text());
    }

    /// NNL003: adding a surplus input to a unary op.
    #[test]
    fn surplus_input_triggers_nnl003(seed in 0u64..64) {
        let mut g = family_graph(seed);
        let v = g
            .iter()
            .find(|(_, n)| n.op.arity().1 == 1 && !n.inputs.is_empty())
            .map(|(id, _)| id)
            .unwrap();
        let extra = g.nodes[v.index()].inputs[0];
        g.nodes[v.index()].inputs.push(extra);
        let report = analyze(&g, None);
        prop_assert!(report.has_code(Code::ArityMismatch), "{}", report.render_text());
    }

    /// NNL004: tampering with a stored output shape.
    #[test]
    fn tampered_shape_triggers_nnl004(seed in 0u64..64) {
        let mut g = family_graph(seed);
        let mut r = Rng64::new(seed);
        let v = r.below(g.len());
        g.nodes[v].out_shape = Shape(vec![3, 5, 7, 11]);
        let report = analyze(&g, None);
        prop_assert!(report.has_code(Code::ShapeMismatch), "{}", report.render_text());
    }

    /// NNL005: a zero dimension anywhere is degenerate.
    #[test]
    fn zero_dim_triggers_nnl005(seed in 0u64..64) {
        let mut g = family_graph(seed);
        let mut r = Rng64::new(seed);
        let v = r.below(g.len());
        g.nodes[v].out_shape = Shape(vec![0; g.nodes[v].out_shape.rank()]);
        let report = analyze(&g, None);
        prop_assert!(report.has_code(Code::DegenerateShape), "{}", report.render_text());
    }
}

#[test]
fn dead_branch_triggers_nnl006() {
    // Graft a sigmoid onto an interior node; nothing consumes it, so it
    // never reaches the model output. A trailing relu keeps the original
    // classifier head as the last sink (= the model output).
    let mut g = ModelFamily::ResNet.canonical().unwrap();
    let mid = NodeId((g.len() / 2) as u32);
    let head = NodeId((g.len() - 1) as u32);
    let dead_id = g.len() as u32;
    g.nodes.push(nnlqp_ir::Node {
        op: nnlqp_ir::OpType::Sigmoid,
        attrs: nnlqp_ir::Attrs::default(),
        inputs: vec![mid],
        out_shape: g.node(mid).out_shape.clone(),
    });
    g.nodes.push(nnlqp_ir::Node {
        op: nnlqp_ir::OpType::Relu,
        attrs: nnlqp_ir::Attrs::default(),
        inputs: vec![head],
        out_shape: g.node(head).out_shape.clone(),
    });
    let report = analyze(&g, None);
    let dead = report.with_code(Code::DeadNode);
    assert_eq!(dead.len(), 1, "{}", report.render_text());
    assert_eq!(dead[0].anchor, nnlqp_analyze::Anchor::Node(dead_id));
    // A dead node is a warning, not an error: the graph still executes.
    assert!(!report.has_errors(), "{}", report.render_text());
}

#[test]
fn duplicate_branch_triggers_nnl007() {
    // Clone an interior unary node so two nodes compute the same value.
    // Appending keeps the node vector topologically ordered.
    let mut g = ModelFamily::ResNet.canonical().unwrap();
    let twin = g
        .iter()
        .find(|(_, n)| n.op.arity().1 == 1 && !n.inputs.is_empty())
        .map(|(_, n)| n.clone())
        .unwrap();
    g.nodes.push(twin);
    let report = analyze(&g, None);
    assert!(
        report.has_code(Code::DuplicateSubgraph),
        "{}",
        report.render_text()
    );
}

#[test]
fn inverted_clip_triggers_nnl008() {
    let mut g = ModelFamily::MobileNetV2.canonical().unwrap();
    let clip = g
        .iter()
        .find(|(_, n)| n.op == nnlqp_ir::OpType::Clip)
        .map(|(id, _)| id)
        .unwrap();
    let a = &mut g.nodes[clip.index()].attrs;
    std::mem::swap(&mut a.clip_min, &mut a.clip_max);
    let report = analyze(&g, None);
    assert!(
        report.has_code(Code::SuspiciousAttrs),
        "{}",
        report.render_text()
    );
}

#[test]
fn u16_truncation_triggers_nnl009() {
    // out_channels wider than the u16 the binary format stores: the graph
    // is self-consistent (no NNL004) yet changes under a round trip.
    let mut b = nnlqp_ir::GraphBuilder::new("wide", Shape::nchw(1, 3, 8, 8));
    let c = b.conv(None, 65_536 + 16, 1, 1, 0, 1).unwrap();
    b.relu(c).unwrap();
    let g = b.finish().unwrap();
    let report = analyze(&g, None);
    assert!(
        report.has_code(Code::HashNotCanonical),
        "{}",
        report.render_text()
    );
    assert!(!report.has_code(Code::ShapeMismatch));
}

#[test]
fn dropped_kernel_triggers_nnl101() {
    let g = ModelFamily::SqueezeNet.canonical().unwrap();
    let mut kernels = fusion::fuse(&g);
    kernels.remove(kernels.len() / 2);
    let out = fusion_checks::verify_partition(&g, &kernels);
    assert!(
        out.iter().any(|d| d.code == Code::KernelCoverage),
        "{out:?}"
    );
}

#[test]
fn illegal_grouping_triggers_nnl102_and_nnl103() {
    // Merge two dependent kernels while leaving the node between them
    // outside: the plan is cyclic and the merged kernel non-convex.
    let mut b = nnlqp_ir::GraphBuilder::new("chain3", Shape::nchw(1, 8, 8, 8));
    let c1 = b.conv(None, 8, 3, 1, 1, 1).unwrap();
    let s = b.sigmoid(c1).unwrap();
    b.conv(Some(s), 8, 3, 1, 1, 1).unwrap();
    let g = b.finish().unwrap();
    let kernels = vec![
        fusion::Kernel {
            family: fusion::KernelFamily::Conv,
            nodes: vec![NodeId(0), NodeId(2)],
        },
        fusion::Kernel {
            family: fusion::KernelFamily::Sigmoid,
            nodes: vec![NodeId(1)],
        },
    ];
    let out = fusion_checks::verify_kernels(&g, &kernels);
    assert!(out.iter().any(|d| d.code == Code::KernelCycle), "{out:?}");
    assert!(
        out.iter().any(|d| d.code == Code::KernelNotConvex),
        "{out:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// NNL201: pulling a dependent kernel's start before its producer's
    /// finish violates happens-before.
    #[test]
    fn early_start_triggers_nnl201(seed in 0u64..64) {
        let g = family_graph(seed);
        let p = t4();
        let kernels = fusion::fuse(&g);
        let deps = fusion::kernel_deps(&g, &kernels);
        let mut trace = exec::execute(&g, &p);
        let mut r = Rng64::new(seed);
        let dependents: Vec<usize> =
            (0..deps.len()).filter(|&i| !deps[i].is_empty()).collect();
        let v = dependents[r.below(dependents.len())];
        let producer = deps[v][0];
        trace.kernels[v].start_ms = trace.kernels[producer].finish_ms - 0.5;
        let out = schedule_checks::verify_trace(&trace, &deps, p.streams);
        prop_assert!(out.iter().any(|d| d.code == Code::HazardHappensBefore), "{out:?}");
    }

    /// NNL202: collapsing a parallel schedule onto one stream makes its
    /// intervals overlap.
    #[test]
    fn overlapping_intervals_trigger_nnl202(seed in 0u64..64) {
        // GoogleNet's inception branches guarantee true multi-stream
        // parallelism in the trace; the seed varies the collapsed stream.
        let g = ModelFamily::GoogleNet.canonical().unwrap();
        let p = t4();
        let target = (seed as usize) % p.streams;
        let kernels = fusion::fuse(&g);
        let deps = fusion::kernel_deps(&g, &kernels);
        let mut trace = exec::execute(&g, &p);
        prop_assert!(trace.kernels.iter().any(|k| k.stream != trace.kernels[0].stream));
        for k in &mut trace.kernels {
            k.stream = target;
        }
        let out = schedule_checks::verify_trace(&trace, &deps, p.streams);
        prop_assert!(out.iter().any(|d| d.code == Code::HazardStreamOverlap), "{out:?}");
    }

    /// NNL203: any tampering with the reported latency is caught.
    #[test]
    fn tampered_latency_triggers_nnl203(seed in 0u64..64) {
        let g = family_graph(seed);
        let p = t4();
        let kernels = fusion::fuse(&g);
        let deps = fusion::kernel_deps(&g, &kernels);
        let mut trace = exec::execute(&g, &p);
        trace.latency_ms += 0.125;
        let out = schedule_checks::verify_trace(&trace, &deps, p.streams);
        prop_assert!(out.iter().any(|d| d.code == Code::LatencyMismatch), "{out:?}");
    }

    /// NNL204: a single bit of drift between two executions is
    /// nondeterminism.
    #[test]
    fn trace_drift_triggers_nnl204(seed in 0u64..64) {
        let g = family_graph(seed);
        let p = t4();
        let a = exec::execute(&g, &p);
        let mut b = exec::execute(&g, &p);
        // Sanity: identical runs compare clean.
        prop_assert!(schedule_checks::compare_traces(&a, &b).is_empty());
        let mut r = Rng64::new(seed);
        let v = r.below(b.kernels.len());
        let bits = b.kernels[v].finish_ms.to_bits() ^ 1;
        b.kernels[v].finish_ms = f64::from_bits(bits);
        let out = schedule_checks::compare_traces(&a, &b);
        prop_assert!(out.iter().any(|d| d.code == Code::NonDeterministic), "{out:?}");
    }

    /// NNL205: a stream index past the platform's stream count.
    #[test]
    fn ghost_stream_triggers_nnl205(seed in 0u64..64) {
        let g = family_graph(seed);
        let p = t4();
        let kernels = fusion::fuse(&g);
        let deps = fusion::kernel_deps(&g, &kernels);
        let mut trace = exec::execute(&g, &p);
        let mut r = Rng64::new(seed);
        let v = r.below(trace.kernels.len());
        trace.kernels[v].stream = p.streams + 3;
        let out = schedule_checks::verify_trace(&trace, &deps, p.streams);
        prop_assert!(out.iter().any(|d| d.code == Code::StreamOutOfRange), "{out:?}");
    }
}
