//! Tensor liveness and peak-activation-memory feasibility (`NNL301`,
//! `NNL302`).
//!
//! The canonical node vector is the execution schedule, so tensor lifetime
//! is a classic backward liveness problem over that straight-line program:
//! a value is live from its definition until its last consumer (or until
//! the end of the model, for the output). The peak resident set — live
//! activations plus the executing node's output, plus all weights — is a
//! static lower bound on the memory a device needs to run the graph at
//! all. A graph whose peak exceeds the platform's memory capacity can
//! never produce a valid latency measurement, so strict-mode admission
//! rejects it before the farm or database see it.

use crate::dataflow::{self, BitSet, DataflowAnalysis, DepStructure, Direction};
use crate::diagnostic::{Anchor, Code, Diagnostic};
use crate::{AnalysisContext, Pass};
use nnlqp_ir::{cost, DType, Graph, NodeId};

/// Footprint fraction of capacity above which `NNL302` warns that the
/// graph leaves too little headroom for the runtime's own allocations.
pub const HIGH_WATERMARK: f64 = 0.80;

/// Backward liveness over the execution order. The fact at node `i` is
/// the set of values that must be resident immediately before `i`
/// executes: bits `0..len` are node outputs, bit `len` is the graph input
/// tensor.
pub struct LivenessAnalysis {
    len: usize,
    output: usize,
}

impl LivenessAnalysis {
    /// `None` on an empty graph.
    pub fn new(g: &Graph) -> Option<Self> {
        g.sinks().last().map(|out| LivenessAnalysis {
            len: g.len(),
            output: out.index(),
        })
    }

    /// The bit representing the graph input tensor.
    pub fn graph_input_bit(&self) -> usize {
        self.len
    }
}

impl DataflowAnalysis for LivenessAnalysis {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn structure(&self) -> DepStructure {
        DepStructure::ExecutionOrder
    }

    fn bottom(&self, _g: &Graph, _id: NodeId) -> BitSet {
        BitSet::with_capacity(self.len + 1)
    }

    /// Past the last node only the model output remains live.
    fn boundary(&self, _g: &Graph, _id: NodeId) -> BitSet {
        let mut b = BitSet::with_capacity(self.len + 1);
        b.insert(self.output);
        b
    }

    /// May-liveness: union.
    fn join(&self, mut acc: BitSet, dep: &BitSet) -> BitSet {
        acc.union_with(dep);
        acc
    }

    /// `live_in(i) = (live_out(i) \ {i}) ∪ uses(i)` — the textbook
    /// equation with `def(i) = {i}` (every node defines exactly its own
    /// output tensor).
    fn transfer(&self, g: &Graph, id: NodeId, deps: &[BitSet]) -> BitSet {
        let mut live = self.joined(g, id, deps);
        live.remove(id.index());
        let node = g.node(id);
        if node.inputs.is_empty() {
            live.insert(self.graph_input_bit());
        } else {
            for inp in &node.inputs {
                live.insert(inp.index());
            }
        }
        live
    }
}

/// Static memory requirement of a graph at a given precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryEstimate {
    /// Peak resident activation bytes (live tensors plus the executing
    /// node's output; includes the graph input while it is live).
    pub peak_activation_bytes: u64,
    /// Total parameter bytes (resident for the whole run).
    pub weight_bytes: u64,
    /// Node at whose execution point the activation peak occurs.
    pub peak_node: u32,
    /// Tensors resident at the peak (including the output being written).
    pub live_at_peak: usize,
    /// False only if the liveness solve hit its iteration cap (malformed
    /// edges); the estimate is then a best effort.
    pub converged: bool,
}

impl MemoryEstimate {
    /// Activations at peak plus weights: the least memory that can run
    /// the graph.
    pub fn footprint_bytes(&self) -> u64 {
        self.peak_activation_bytes + self.weight_bytes
    }
}

/// Solve liveness and fold the facts into a peak-memory estimate.
pub fn estimate_peak_memory(g: &Graph, dt: DType) -> Option<MemoryEstimate> {
    let analysis = LivenessAnalysis::new(g)?;
    let fix = dataflow::solve(g, &analysis);
    let bytes_of = |bit: usize| -> u64 {
        if bit == analysis.graph_input_bit() {
            g.input_shape.bytes(dt) as u64
        } else {
            g.nodes[bit].out_shape.bytes(dt) as u64
        }
    };
    let mut peak = 0u64;
    let mut peak_node = 0u32;
    let mut live_at_peak = 0usize;
    for (i, live_in) in fix.facts.iter().enumerate() {
        // While node i executes, its inputs (and everything needed later)
        // are resident *and* its output buffer is being written.
        let mut resident = g.nodes[i].out_shape.bytes(dt) as u64;
        let mut count = 1;
        for bit in live_in.iter() {
            resident += bytes_of(bit);
            count += 1;
        }
        if resident > peak {
            peak = resident;
            peak_node = i as u32;
            live_at_peak = count;
        }
    }
    let weight_bytes: f64 = g
        .iter()
        .map(|(id, _)| cost::node_cost(g, id, dt).params * dt.bytes() as f64)
        .sum();
    Some(MemoryEstimate {
        peak_activation_bytes: peak,
        weight_bytes: weight_bytes as u64,
        peak_node,
        live_at_peak,
        converged: fix.converged,
    })
}

/// `1.50 GiB` / `12.0 MiB` / `980 KiB` style rendering.
fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = b as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.1} MiB", b / (KIB * KIB))
    } else {
        format!("{:.0} KiB", b / KIB)
    }
}

/// The `memory-feasibility` pass: peak footprint vs. the platform's
/// memory capacity. `NNL301` (error) when the graph cannot fit,
/// `NNL302` (warning) when it leaves less than `1 - HIGH_WATERMARK`
/// headroom.
pub struct MemoryFeasibilityPass;

impl Pass for MemoryFeasibilityPass {
    fn name(&self) -> &'static str {
        "memory-feasibility"
    }

    fn needs_sound_ir(&self) -> bool {
        true
    }

    fn needs_platform(&self) -> bool {
        true
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let p = ctx.platform.expect("pass gated on platform presence");
        check_memory_feasibility(ctx.graph, p.dtype, p.mem_capacity_bytes)
    }
}

/// Compare the graph's static footprint at `dt` against a capacity in
/// bytes. Public with explicit parameters (like the schedule verifiers)
/// so tests can probe thresholds directly; a capacity of zero means
/// "unknown" and disables the check.
pub fn check_memory_feasibility(g: &Graph, dt: DType, capacity_bytes: u64) -> Vec<Diagnostic> {
    if capacity_bytes == 0 {
        return Vec::new();
    }
    let Some(est) = estimate_peak_memory(g, dt) else {
        return Vec::new();
    };
    let footprint = est.footprint_bytes();
    let detail = format!(
        "peak activations {} (at n{}, {} tensors resident) + weights {} = {} vs capacity {}",
        fmt_bytes(est.peak_activation_bytes),
        est.peak_node,
        est.live_at_peak,
        fmt_bytes(est.weight_bytes),
        fmt_bytes(footprint),
        fmt_bytes(capacity_bytes),
    );
    if footprint > capacity_bytes {
        vec![Diagnostic::new(
            Code::MemoryInfeasible,
            Anchor::Node(est.peak_node),
            format!("graph cannot fit on the platform: {detail}"),
        )]
    } else if footprint as f64 > HIGH_WATERMARK * capacity_bytes as f64 {
        vec![Diagnostic::new(
            Code::MemoryHighWater,
            Anchor::Node(est.peak_node),
            format!(
                "footprint above {:.0}% of platform memory: {detail}",
                HIGH_WATERMARK * 100.0
            ),
        )]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, Shape};

    /// n0 conv -> (n1 relu, n2 sigmoid) -> n3 add, input (1,1,4,4).
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new("d", Shape::nchw(1, 1, 4, 4));
        let c = b.conv(None, 2, 1, 1, 0, 1).unwrap();
        let r = b.relu(c).unwrap();
        let s = b.sigmoid(c).unwrap();
        b.add(r, s).unwrap();
        b.finish().unwrap()
    }

    fn set(bits: &[usize]) -> BitSet {
        let mut b = BitSet::with_capacity(8);
        for &i in bits {
            b.insert(i);
        }
        b
    }

    #[test]
    fn liveness_fixpoint_matches_hand_computation() {
        // Backward over the schedule (output = n3, graph input = bit 4):
        //   live_in(3) = ({3} \ {3}) ∪ {1,2}   = {1,2}
        //   live_in(2) = ({1,2} \ {2}) ∪ {0}   = {0,1}
        //   live_in(1) = ({0,1} \ {1}) ∪ {0}   = {0}
        //   live_in(0) = ({0} \ {0}) ∪ {input} = {4}
        let g = diamond();
        let a = LivenessAnalysis::new(&g).unwrap();
        assert_eq!(a.graph_input_bit(), 4);
        let fix = dataflow::solve(&g, &a);
        assert!(fix.converged);
        assert_eq!(fix.sweeps, 2);
        assert_eq!(
            fix.facts,
            vec![set(&[4]), set(&[0]), set(&[0, 1]), set(&[1, 2])]
        );
    }

    #[test]
    fn peak_memory_matches_hand_computation() {
        // f32 tensor bytes: input 16*4 = 64, every node output 32*4 = 128.
        // Resident at each execution point (live_in + own output):
        //   n0: 64 + 128 = 192    n1: 128 + 128 = 256
        //   n2: 256 + 128 = 384   n3: 256 + 128 = 384
        // Peak 384 first reached at n2. Conv weights: 2*1*1 + 2 = 4
        // params * 4 bytes = 16.
        let g = diamond();
        let est = estimate_peak_memory(&g, DType::F32).unwrap();
        assert!(est.converged);
        assert_eq!(est.peak_activation_bytes, 384);
        assert_eq!(est.peak_node, 2);
        assert_eq!(est.live_at_peak, 3);
        assert_eq!(est.weight_bytes, 16);
        assert_eq!(est.footprint_bytes(), 400);
    }

    #[test]
    fn int8_footprint_is_quarter_of_f32() {
        let g = diamond();
        let f = estimate_peak_memory(&g, DType::F32).unwrap();
        let q = estimate_peak_memory(&g, DType::I8).unwrap();
        assert_eq!(q.peak_activation_bytes * 4, f.peak_activation_bytes);
        assert_eq!(q.weight_bytes * 4, f.weight_bytes);
    }

    #[test]
    fn dead_value_is_freed_after_definition() {
        // A dead sigmoid's output is live only while it is computed, so it
        // does not raise the peak of later nodes.
        let mut b = GraphBuilder::new("dead", Shape::nchw(1, 1, 4, 4));
        let c = b.conv(None, 2, 1, 1, 0, 1).unwrap();
        b.sigmoid(c).unwrap(); // dead
        let r = b.relu(c).unwrap();
        b.relu(r).unwrap();
        let g = b.finish().unwrap();
        let a = LivenessAnalysis::new(&g).unwrap();
        let fix = dataflow::solve(&g, &a);
        // Before n2 executes, only n0 is needed: the dead n1 is gone.
        assert_eq!(fix.facts[2], set(&[0]));
    }

    #[test]
    fn feasibility_thresholds() {
        let g = diamond();
        let foot = estimate_peak_memory(&g, DType::F32)
            .unwrap()
            .footprint_bytes();
        // Comfortable capacity: clean.
        assert!(check_memory_feasibility(&g, DType::F32, foot * 2).is_empty());
        // Exactly at capacity: fits, but above the high watermark.
        let warn = check_memory_feasibility(&g, DType::F32, foot);
        assert_eq!(warn.len(), 1);
        assert_eq!(warn[0].code, Code::MemoryHighWater);
        // One byte short: infeasible.
        let err = check_memory_feasibility(&g, DType::F32, foot - 1);
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].code, Code::MemoryInfeasible);
        assert_eq!(err[0].anchor, Anchor::Node(2));
        assert!(err[0].severity == crate::Severity::Error);
        // Unknown capacity disables the check.
        assert!(check_memory_feasibility(&g, DType::F32, 0).is_empty());
    }

    #[test]
    fn corpus_model_fits_on_t4() {
        let g = nnlqp_models::ModelFamily::ResNet.canonical().unwrap();
        let p = nnlqp_sim::PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let out = check_memory_feasibility(&g, p.dtype, p.mem_capacity_bytes);
        assert!(out.is_empty(), "{out:?}");
        let est = estimate_peak_memory(&g, p.dtype).unwrap();
        assert!(est.footprint_bytes() > 1 << 20, "ResNet is at least a MiB");
    }
}
