//! The shared diagnostic vocabulary: stable codes, severities, anchors and
//! human/JSON rendering.
//!
//! Every pass in this crate reports through [`Diagnostic`]. Codes are
//! stable API: tools (and the seeded-mutation property tests) match on them,
//! so a code is never renumbered or reused once released.

use std::fmt;

/// How bad a finding is.
///
/// `Error` findings make a graph untrustworthy as ground truth: a strict
/// query refuses to measure it and `nnlqp lint` exits non-zero. `Warn`
/// findings are almost certainly mistakes but do not corrupt results.
/// `Lint` findings are optimization opportunities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Correctness violation; rejects the graph in strict mode.
    Error,
    /// Suspicious construct; reported but not fatal.
    Warn,
    /// Improvement opportunity (e.g. a CSE candidate).
    Lint,
}

impl Severity {
    /// Lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Lint => "lint",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable diagnostic codes.
///
/// Numbering scheme: `NNL0xx` are IR dataflow lints, `NNL1xx` are
/// fusion-legality violations, `NNL2xx` are schedule hazards, `NNL3xx`
/// are fixed-point dataflow findings (memory feasibility, cost sanity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// NNL001 — a node references an input id that is not a node.
    OrphanInput,
    /// NNL002 — the node vector is not in (canonical) topological order;
    /// consumers must follow their producers or graph-hash canonicalization
    /// and every downstream pass break.
    NonCanonicalOrder,
    /// NNL003 — input arity does not match the operator.
    ArityMismatch,
    /// NNL004 — stored output shape disagrees with re-run shape inference.
    ShapeMismatch,
    /// NNL005 — a tensor shape has zero elements.
    DegenerateShape,
    /// NNL006 — dead node: its value never reaches the model output.
    DeadNode,
    /// NNL007 — duplicate subgraph: the node recomputes a value an earlier
    /// node already produces (common-subexpression-elimination candidate).
    DuplicateSubgraph,
    /// NNL008 — suspicious attribute combination for the operator.
    SuspiciousAttrs,
    /// NNL009 — the graph does not survive a serialize/deserialize round
    /// trip with its hash intact, so the database cache key is not
    /// canonical.
    HashNotCanonical,
    /// NNL101 — fusion did not cover a node by exactly one kernel.
    KernelCoverage,
    /// NNL102 — the kernel dependency graph has a cycle.
    KernelCycle,
    /// NNL103 — a kernel is not convex: a data path leaves the kernel and
    /// re-enters it, so no legal launch order exists for its members.
    KernelNotConvex,
    /// NNL201 — happens-before violation: a kernel starts before one of its
    /// producers finishes.
    HazardHappensBefore,
    /// NNL202 — two kernels overlap in time on the same stream.
    HazardStreamOverlap,
    /// NNL203 — the trace's reported latency is not the max finish time.
    LatencyMismatch,
    /// NNL204 — two executions of the same graph produced different
    /// schedules (nondeterminism poisons the evolving database).
    NonDeterministic,
    /// NNL205 — a kernel ran on a stream the platform does not have.
    StreamOutOfRange,
    /// NNL301 — the graph's static peak memory footprint (live
    /// activations + weights, from the liveness fixpoint) exceeds the
    /// platform's memory capacity; it can never run there.
    MemoryInfeasible,
    /// NNL302 — the footprint fits but leaves less headroom than the
    /// high watermark allows; the runtime's own allocations may tip it.
    MemoryHighWater,
    /// NNL303 — a scheduled kernel interval beats the static roofline
    /// floor (`max(flops/peak, output_bytes/bw)`): physically impossible
    /// throughput, so the latency is untrustworthy as ground truth.
    CostUnderRoofline,
    /// NNL304 — a scheduled kernel interval exceeds the worst-case
    /// ceiling even at minimum utilization: a stalled or mis-accounted
    /// schedule.
    CostOverRoofline,
}

/// All codes, in numbering order (for documentation and exhaustive tests).
pub const ALL_CODES: [Code; 21] = [
    Code::OrphanInput,
    Code::NonCanonicalOrder,
    Code::ArityMismatch,
    Code::ShapeMismatch,
    Code::DegenerateShape,
    Code::DeadNode,
    Code::DuplicateSubgraph,
    Code::SuspiciousAttrs,
    Code::HashNotCanonical,
    Code::KernelCoverage,
    Code::KernelCycle,
    Code::KernelNotConvex,
    Code::HazardHappensBefore,
    Code::HazardStreamOverlap,
    Code::LatencyMismatch,
    Code::NonDeterministic,
    Code::StreamOutOfRange,
    Code::MemoryInfeasible,
    Code::MemoryHighWater,
    Code::CostUnderRoofline,
    Code::CostOverRoofline,
];

impl Code {
    /// The stable `NNLxxx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::OrphanInput => "NNL001",
            Code::NonCanonicalOrder => "NNL002",
            Code::ArityMismatch => "NNL003",
            Code::ShapeMismatch => "NNL004",
            Code::DegenerateShape => "NNL005",
            Code::DeadNode => "NNL006",
            Code::DuplicateSubgraph => "NNL007",
            Code::SuspiciousAttrs => "NNL008",
            Code::HashNotCanonical => "NNL009",
            Code::KernelCoverage => "NNL101",
            Code::KernelCycle => "NNL102",
            Code::KernelNotConvex => "NNL103",
            Code::HazardHappensBefore => "NNL201",
            Code::HazardStreamOverlap => "NNL202",
            Code::LatencyMismatch => "NNL203",
            Code::NonDeterministic => "NNL204",
            Code::StreamOutOfRange => "NNL205",
            Code::MemoryInfeasible => "NNL301",
            Code::MemoryHighWater => "NNL302",
            Code::CostUnderRoofline => "NNL303",
            Code::CostOverRoofline => "NNL304",
        }
    }

    /// Default severity of findings with this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::OrphanInput
            | Code::NonCanonicalOrder
            | Code::ArityMismatch
            | Code::ShapeMismatch
            | Code::HashNotCanonical
            | Code::KernelCoverage
            | Code::KernelCycle
            | Code::KernelNotConvex
            | Code::HazardHappensBefore
            | Code::HazardStreamOverlap
            | Code::LatencyMismatch
            | Code::NonDeterministic
            | Code::MemoryInfeasible
            | Code::CostUnderRoofline => Severity::Error,
            Code::DegenerateShape
            | Code::DeadNode
            | Code::SuspiciousAttrs
            | Code::StreamOutOfRange
            | Code::MemoryHighWater
            | Code::CostOverRoofline => Severity::Warn,
            Code::DuplicateSubgraph => Severity::Lint,
        }
    }

    /// One-line description used in documentation and `nnlqp lint --help`.
    pub fn title(self) -> &'static str {
        match self {
            Code::OrphanInput => "input id does not name a node",
            Code::NonCanonicalOrder => "node vector is not topologically ordered",
            Code::ArityMismatch => "input arity does not match the operator",
            Code::ShapeMismatch => "stored shape disagrees with shape inference",
            Code::DegenerateShape => "tensor shape has zero elements",
            Code::DeadNode => "node output never reaches the model output",
            Code::DuplicateSubgraph => "duplicate subgraph (CSE candidate)",
            Code::SuspiciousAttrs => "suspicious operator attributes",
            Code::HashNotCanonical => "graph hash not stable across serialization",
            Code::KernelCoverage => "node not covered by exactly one kernel",
            Code::KernelCycle => "kernel dependency graph has a cycle",
            Code::KernelNotConvex => "kernel node set is not convex",
            Code::HazardHappensBefore => "kernel starts before a producer finishes",
            Code::HazardStreamOverlap => "kernels overlap on one stream",
            Code::LatencyMismatch => "reported latency is not the max finish time",
            Code::NonDeterministic => "re-execution produced a different schedule",
            Code::StreamOutOfRange => "kernel ran on a nonexistent stream",
            Code::MemoryInfeasible => "peak memory footprint exceeds platform capacity",
            Code::MemoryHighWater => "peak memory footprint near platform capacity",
            Code::CostUnderRoofline => "kernel interval beats the static roofline floor",
            Code::CostOverRoofline => "kernel interval exceeds the worst-case ceiling",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Anchor {
    /// The graph as a whole.
    Graph,
    /// A node, by id.
    Node(u32),
    /// A fused kernel, by index in the fusion output.
    Kernel(usize),
    /// An execution stream, by index.
    Stream(usize),
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anchor::Graph => write!(f, "graph"),
            Anchor::Node(n) => write!(f, "n{n}"),
            Anchor::Kernel(k) => write!(f, "k{k}"),
            Anchor::Stream(s) => write!(f, "s{s}"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (defaults to `code.severity()`, occasionally escalated).
    pub severity: Severity,
    /// What the finding points at.
    pub anchor: Anchor,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// A finding at the code's default severity.
    pub fn new(code: Code, anchor: Anchor, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            anchor,
            message: message.into(),
        }
    }

    /// A finding escalated to `Error` regardless of the code's default.
    pub fn error(code: Code, anchor: Anchor, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            anchor,
            message: message.into(),
        }
    }

    /// `error[NNL001] n3: message` style single-line rendering.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity, self.code, self.anchor, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Minimal JSON string escaping (the diagnostic messages are ASCII, but
/// graph names are user-controlled).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Version of the JSON report layout emitted by [`Report::render_json`].
/// Bumped on any field addition, removal or reordering so downstream
/// tooling can gate on it. History: 1 = initial layout (implicit, not
/// emitted); 2 = added `schema_version` itself and the `NNL3xx` codes.
pub const REPORT_SCHEMA_VERSION: u32 = 2;

/// The result of running an [`crate::Analyzer`] over one graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Name of the analyzed graph.
    pub graph_name: String,
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Passes that ran, in order.
    pub passes_run: Vec<&'static str>,
    /// Passes skipped because an earlier pass reported errors.
    pub passes_skipped: Vec<&'static str>,
}

impl Report {
    /// True when any finding is `Severity::Error`.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// True when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings at a given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// All findings with a given code.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// True if at least one finding carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// `2 errors, 1 warning, 0 lints` style one-liner.
    pub fn summary(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} lint(s)",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Lint)
        )
    }

    /// Multi-line human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}: {}\n", self.graph_name, self.summary()));
        for d in &self.diagnostics {
            out.push_str("  ");
            out.push_str(&d.render());
            out.push('\n');
        }
        if !self.passes_skipped.is_empty() {
            out.push_str(&format!(
                "  note: skipped passes after errors: {}\n",
                self.passes_skipped.join(", ")
            ));
        }
        out
    }

    /// Machine-readable JSON rendering (hand-rolled: no serialization
    /// dependency, stable field order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"schema_version\":{REPORT_SCHEMA_VERSION},"));
        out.push_str(&format!("\"graph\":\"{}\",", json_escape(&self.graph_name)));
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"lints\":{},",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Lint)
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"anchor\":\"{}\",\"message\":\"{}\"}}",
                d.code,
                d.severity,
                d.anchor,
                json_escape(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for c in ALL_CODES {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().starts_with("NNL"));
            assert_eq!(c.as_str().len(), 6);
        }
    }

    /// Position of every `Code` variant in `ALL_CODES`. The match is
    /// exhaustive, so adding a variant without registering it here — and
    /// therefore in the registry itself — fails to compile.
    fn registry_index(c: Code) -> usize {
        match c {
            Code::OrphanInput => 0,
            Code::NonCanonicalOrder => 1,
            Code::ArityMismatch => 2,
            Code::ShapeMismatch => 3,
            Code::DegenerateShape => 4,
            Code::DeadNode => 5,
            Code::DuplicateSubgraph => 6,
            Code::SuspiciousAttrs => 7,
            Code::HashNotCanonical => 8,
            Code::KernelCoverage => 9,
            Code::KernelCycle => 10,
            Code::KernelNotConvex => 11,
            Code::HazardHappensBefore => 12,
            Code::HazardStreamOverlap => 13,
            Code::LatencyMismatch => 14,
            Code::NonDeterministic => 15,
            Code::StreamOutOfRange => 16,
            Code::MemoryInfeasible => 17,
            Code::MemoryHighWater => 18,
            Code::CostUnderRoofline => 19,
            Code::CostOverRoofline => 20,
        }
    }

    #[test]
    fn registry_is_exhaustive_sorted_and_described() {
        // Every variant appears exactly once, at its expected position.
        for (i, c) in ALL_CODES.iter().enumerate() {
            assert_eq!(registry_index(*c), i, "{c} registered out of place");
        }
        // Codes are sorted ascending (numbering order == lexical order).
        for w in ALL_CODES.windows(2) {
            assert!(
                w[0].as_str() < w[1].as_str(),
                "{} must precede {}",
                w[0],
                w[1]
            );
        }
        // Every code carries a non-empty description.
        for c in ALL_CODES {
            assert!(!c.title().is_empty(), "{c} has no description");
        }
    }

    #[test]
    fn rendering_shapes() {
        let d = Diagnostic::new(Code::DeadNode, Anchor::Node(3), "unused");
        assert_eq!(d.render(), "warn[NNL006] n3: unused");
        let e = Diagnostic::error(Code::DegenerateShape, Anchor::Graph, "empty");
        assert_eq!(e.severity, Severity::Error);
    }

    #[test]
    fn report_counts_and_json() {
        let mut r = Report {
            graph_name: "g\"x".into(),
            ..Default::default()
        };
        r.diagnostics
            .push(Diagnostic::new(Code::OrphanInput, Anchor::Node(0), "bad"));
        r.diagnostics.push(Diagnostic::new(
            Code::DuplicateSubgraph,
            Anchor::Node(1),
            "dup",
        ));
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Lint), 1);
        let j = r.render_json();
        assert!(j.contains("\"errors\":1"));
        assert!(j.contains("NNL007"));
        assert!(j.contains("g\\\"x"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
