//! # nnlqp-analyze
//!
//! Multi-pass static analysis for NNLQP graphs, fusion plans and execution
//! schedules.
//!
//! NNLQP's premise is that query results are trustworthy ground truth for
//! the evolving database and the GNN predictor. A silently malformed graph,
//! an illegal fusion, or a scheduler hazard poisons both the cache (keyed
//! by graph hash) and the training set. This crate is the guard: a pass
//! framework producing [`Diagnostic`]s with stable `NNLxxx` codes, rendered
//! as text or JSON.
//!
//! Whole-graph facts (reachability, liveness, value numbers) come from a
//! shared fixed-point engine ([`dataflow`]): analyses declare a lattice
//! and a transfer function, the engine sweeps the topological node order
//! to convergence. Five pass families sit on top:
//!
//! * **IR dataflow lints** ([`ir_lints`], `NNL0xx`) over [`nnlqp_ir::Graph`]:
//!   orphan inputs, non-canonical node order (a graph-hash cache-miss
//!   source), arity/shape violations, degenerate shapes, dead regions
//!   (backward reachability), duplicate subgraphs (CSE candidates, via
//!   forward value numbering), suspicious attributes, and database
//!   cache-key canonicalization (serialize round trip preserves the graph
//!   hash).
//! * **Memory feasibility** ([`memory`], `NNL3xx` low range): backward
//!   tensor liveness over the execution order gives the peak activation
//!   footprint; adding weights, the graph either fits the platform's
//!   memory capacity (`NNL301` error when it cannot, `NNL302` warning
//!   near the high watermark) or is rejected before any measurement.
//! * **Fusion legality** ([`fusion_checks`], `NNL1xx`): the kernels from
//!   [`nnlqp_sim::fusion::fuse`] must partition the node set, their
//!   dependency graph must be acyclic, and every kernel must be convex.
//! * **Cost sanity** ([`cost_sanity`], `NNL3xx` high range): every
//!   scheduled kernel interval must land inside the static roofline
//!   window derived from [`nnlqp_ir::cost`] (`NNL303` impossibly fast,
//!   `NNL304` implausibly slow).
//! * **Schedule hazards** ([`schedule_checks`], `NNL2xx`) over
//!   [`nnlqp_sim::exec::ExecutionTrace`]: happens-before, no same-stream
//!   overlap, reported latency equals the makespan, deterministic
//!   re-execution.
//!
//! ```
//! use nnlqp_analyze::Analyzer;
//! use nnlqp_models::ModelFamily;
//! use nnlqp_sim::platform::PlatformSpec;
//!
//! let g = ModelFamily::SqueezeNet.canonical().unwrap();
//! let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
//! let report = Analyzer::full().analyze(&g, Some(&p));
//! assert!(!report.has_errors());
//! ```

pub mod cost_sanity;
pub mod dataflow;
pub mod diagnostic;
pub mod fusion_checks;
pub mod ir_lints;
pub mod memory;
pub mod schedule_checks;

pub use diagnostic::{
    Anchor, Code, Diagnostic, Report, Severity, ALL_CODES, REPORT_SCHEMA_VERSION,
};

use nnlqp_ir::Graph;
use nnlqp_sim::platform::PlatformSpec;

/// Everything a pass may look at.
pub struct AnalysisContext<'a> {
    /// The graph under analysis.
    pub graph: &'a Graph,
    /// Target platform, when known. Passes that need one (the schedule
    /// checker) are skipped without it.
    pub platform: Option<&'a PlatformSpec>,
}

/// One analysis pass.
pub trait Pass {
    /// Stable pass name (shown in reports).
    fn name(&self) -> &'static str;
    /// True when the pass walks structures derived from the graph
    /// (fusion, schedules) and therefore requires a structurally sound IR.
    /// Such passes are skipped once a structural error is on record.
    fn needs_sound_ir(&self) -> bool {
        false
    }
    /// True when the pass needs a platform in the context.
    fn needs_platform(&self) -> bool {
        false
    }
    /// Run the pass, returning its findings.
    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic>;
}

/// True for codes that make the graph unsafe to even feed into fusion or
/// the simulator (out-of-range ids, broken topology, bad arity/shapes).
pub fn is_structural(code: Code) -> bool {
    matches!(
        code,
        Code::OrphanInput | Code::NonCanonicalOrder | Code::ArityMismatch | Code::ShapeMismatch
    )
}

/// A configured pipeline of passes.
pub struct Analyzer {
    passes: Vec<Box<dyn Pass>>,
}

impl Analyzer {
    /// The full pipeline: IR lints, memory feasibility, fusion legality,
    /// cost sanity, schedule hazards.
    pub fn full() -> Self {
        Analyzer {
            passes: vec![
                Box::new(ir_lints::IrLintPass),
                Box::new(memory::MemoryFeasibilityPass),
                Box::new(fusion_checks::FusionLegalityPass),
                Box::new(cost_sanity::CostSanityPass),
                Box::new(schedule_checks::ScheduleHazardPass),
            ],
        }
    }

    /// IR lints only (no simulator involvement).
    pub fn ir_only() -> Self {
        Analyzer {
            passes: vec![Box::new(ir_lints::IrLintPass)],
        }
    }

    /// A custom pipeline.
    pub fn with_passes(passes: Vec<Box<dyn Pass>>) -> Self {
        Analyzer { passes }
    }

    /// Run every applicable pass over `g` and collect a [`Report`].
    ///
    /// Passes that require a sound IR are skipped (and recorded as skipped)
    /// as soon as any structural error is found, so downstream passes never
    /// index out of range on a malformed graph.
    pub fn analyze(&self, g: &Graph, platform: Option<&PlatformSpec>) -> Report {
        let ctx = AnalysisContext { graph: g, platform };
        let mut report = Report {
            graph_name: g.name.clone(),
            ..Report::default()
        };
        for pass in &self.passes {
            let structurally_broken = report
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error && is_structural(d.code));
            if (pass.needs_sound_ir() && structurally_broken)
                || (pass.needs_platform() && ctx.platform.is_none())
            {
                report.passes_skipped.push(pass.name());
                continue;
            }
            report.passes_run.push(pass.name());
            report.diagnostics.extend(pass.run(&ctx));
        }
        report
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::full()
    }
}

/// Convenience: run the full pipeline (IR + fusion; memory, cost and
/// schedule checks too when a platform is given).
pub fn analyze(g: &Graph, platform: Option<&PlatformSpec>) -> Report {
    Analyzer::full().analyze(g, platform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, NodeId, Shape};

    fn small() -> Graph {
        let mut b = GraphBuilder::new("small", Shape::nchw(1, 3, 8, 8));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        b.relu(c).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn clean_graph_runs_all_passes() {
        let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let r = Analyzer::full().analyze(&small(), Some(&p));
        assert!(r.is_clean(), "{}", r.render_text());
        assert_eq!(r.passes_run.len(), 5);
        assert!(r.passes_skipped.is_empty());
    }

    #[test]
    fn no_platform_skips_platform_passes() {
        let r = Analyzer::full().analyze(&small(), None);
        assert!(r.is_clean());
        assert_eq!(r.passes_run.len(), 2);
        assert_eq!(
            r.passes_skipped,
            vec!["memory-feasibility", "cost-sanity", "schedule-hazards"]
        );
    }

    #[test]
    fn structural_error_gates_downstream_passes() {
        let mut g = small();
        g.nodes[1].inputs = vec![NodeId(77)]; // orphan input
        let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let r = Analyzer::full().analyze(&g, Some(&p));
        assert!(r.has_code(Code::OrphanInput));
        assert_eq!(r.passes_run, vec!["ir-lints"]);
        assert_eq!(
            r.passes_skipped,
            vec![
                "memory-feasibility",
                "fusion-legality",
                "cost-sanity",
                "schedule-hazards"
            ]
        );
    }
}
