//! Schedule hazard checking (`NNL201`–`NNL205`).
//!
//! The multi-stream list scheduler in [`nnlqp_sim::exec::execute`] feeds
//! latencies straight into the evolving database, so its traces must be
//! internally consistent: every kernel starts after its producers finish
//! (`NNL201`), no two kernels overlap on one stream (`NNL202`), the
//! reported latency is the makespan (`NNL203`), re-running the same graph
//! yields a bit-identical schedule (`NNL204`), and no kernel lands on a
//! stream the platform does not have (`NNL205`).
//!
//! As in [`crate::fusion_checks`], the verifiers take the trace and
//! dependency lists as parameters so seeded-mutation tests can feed them
//! hazardous schedules the real scheduler never emits;
//! [`ScheduleHazardPass`] wires them to two fresh `execute()` runs.

use crate::diagnostic::{Anchor, Code, Diagnostic};
use crate::{AnalysisContext, Pass};
use nnlqp_sim::exec::{self, ExecutionTrace};
use nnlqp_sim::fusion;

/// Tolerance for floating-point schedule arithmetic (milliseconds).
pub const EPS_MS: f64 = 1e-9;

/// The `schedule-hazards` pass: executes the graph twice on the context
/// platform and verifies both the trace and its determinism.
pub struct ScheduleHazardPass;

impl Pass for ScheduleHazardPass {
    fn name(&self) -> &'static str {
        "schedule-hazards"
    }

    fn needs_sound_ir(&self) -> bool {
        true
    }

    fn needs_platform(&self) -> bool {
        true
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let p = ctx.platform.expect("pass gated on platform presence");
        let kernels = fusion::fuse(ctx.graph);
        let deps = fusion::kernel_deps(ctx.graph, &kernels);
        let first = exec::execute(ctx.graph, p);
        let mut out = verify_trace(&first, &deps, p.streams);
        let second = exec::execute(ctx.graph, p);
        out.extend(compare_traces(&first, &second));
        out
    }
}

/// Verify one trace against the kernel dependency lists and the platform's
/// stream count. Covers `NNL201`, `NNL202`, `NNL203` and `NNL205`.
pub fn verify_trace(
    trace: &ExecutionTrace,
    deps: &[Vec<usize>],
    streams: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if trace.kernels.len() != deps.len() {
        out.push(Diagnostic::new(
            Code::HazardHappensBefore,
            Anchor::Graph,
            format!(
                "trace schedules {} kernels but the dependency graph has {}",
                trace.kernels.len(),
                deps.len()
            ),
        ));
        return out;
    }

    // NNL201: happens-before — no kernel starts before all producers finish.
    for (i, d) in deps.iter().enumerate() {
        let k = &trace.kernels[i];
        if k.finish_ms + EPS_MS < k.start_ms {
            out.push(Diagnostic::new(
                Code::HazardHappensBefore,
                Anchor::Kernel(i),
                format!(
                    "kernel finishes at {} before it starts at {}",
                    k.finish_ms, k.start_ms
                ),
            ));
        }
        for &producer in d {
            if trace.kernels[producer].finish_ms > k.start_ms + EPS_MS {
                out.push(Diagnostic::new(
                    Code::HazardHappensBefore,
                    Anchor::Kernel(i),
                    format!(
                        "starts at {} ms before producer kernel {} finishes at {} ms",
                        k.start_ms, producer, trace.kernels[producer].finish_ms
                    ),
                ));
            }
        }
    }

    // NNL202: kernels sharing a stream must not overlap in time.
    // NNL205: streams must exist on the platform.
    let mut by_stream: Vec<Vec<usize>> = Vec::new();
    for (i, k) in trace.kernels.iter().enumerate() {
        if k.stream >= streams.max(1) {
            out.push(Diagnostic::new(
                Code::StreamOutOfRange,
                Anchor::Kernel(i),
                format!(
                    "scheduled on stream {} but the platform has {}",
                    k.stream, streams
                ),
            ));
        }
        if k.stream >= by_stream.len() {
            by_stream.resize(k.stream + 1, Vec::new());
        }
        by_stream[k.stream].push(i);
    }
    for (s, members) in by_stream.iter().enumerate() {
        let mut sorted = members.clone();
        sorted.sort_by(|&a, &b| {
            trace.kernels[a]
                .start_ms
                .partial_cmp(&trace.kernels[b].start_ms)
                .expect("finite schedule times")
        });
        for w in sorted.windows(2) {
            let (a, b) = (&trace.kernels[w[0]], &trace.kernels[w[1]]);
            if a.finish_ms > b.start_ms + EPS_MS {
                out.push(Diagnostic::new(
                    Code::HazardStreamOverlap,
                    Anchor::Stream(s),
                    format!(
                        "kernels {} and {} overlap: [{}, {}] vs [{}, {}]",
                        w[0], w[1], a.start_ms, a.finish_ms, b.start_ms, b.finish_ms
                    ),
                ));
            }
        }
    }

    // NNL203: the reported latency is the makespan.
    let makespan = trace
        .kernels
        .iter()
        .map(|k| k.finish_ms)
        .fold(0.0f64, f64::max);
    if (trace.latency_ms - makespan).abs() > EPS_MS * makespan.max(1.0) {
        out.push(Diagnostic::new(
            Code::LatencyMismatch,
            Anchor::Graph,
            format!(
                "trace reports {} ms but the max finish time is {} ms",
                trace.latency_ms, makespan
            ),
        ));
    }
    out
}

/// `NNL204`: two executions of the same graph on the same platform must be
/// bit-identical — a nondeterministic scheduler poisons the evolving
/// database with irreproducible ground truth. Times are compared on their
/// bit patterns, not within a tolerance.
pub fn compare_traces(a: &ExecutionTrace, b: &ExecutionTrace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if a.kernels.len() != b.kernels.len() {
        out.push(Diagnostic::new(
            Code::NonDeterministic,
            Anchor::Graph,
            format!(
                "re-execution scheduled {} kernels instead of {}",
                b.kernels.len(),
                a.kernels.len()
            ),
        ));
        return out;
    }
    if a.latency_ms.to_bits() != b.latency_ms.to_bits() {
        out.push(Diagnostic::new(
            Code::NonDeterministic,
            Anchor::Graph,
            format!(
                "re-execution latency {} ms differs from {} ms",
                b.latency_ms, a.latency_ms
            ),
        ));
    }
    for (i, (ka, kb)) in a.kernels.iter().zip(&b.kernels).enumerate() {
        if ka.stream != kb.stream
            || ka.start_ms.to_bits() != kb.start_ms.to_bits()
            || ka.finish_ms.to_bits() != kb.finish_ms.to_bits()
        {
            out.push(Diagnostic::new(
                Code::NonDeterministic,
                Anchor::Kernel(i),
                format!(
                    "re-execution moved the kernel: stream {} [{}, {}] vs stream {} [{}, {}]",
                    ka.stream, ka.start_ms, ka.finish_ms, kb.stream, kb.start_ms, kb.finish_ms
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::Graph;
    use nnlqp_sim::platform::PlatformSpec;

    fn t4() -> PlatformSpec {
        PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap()
    }

    fn traced() -> (Graph, ExecutionTrace, Vec<Vec<usize>>, PlatformSpec) {
        let p = t4();
        let g = nnlqp_models::ModelFamily::GoogleNet.canonical().unwrap();
        let kernels = fusion::fuse(&g);
        let deps = fusion::kernel_deps(&g, &kernels);
        let trace = exec::execute(&g, &p);
        (g, trace, deps, p)
    }

    #[test]
    fn real_trace_is_hazard_free() {
        let (_, trace, deps, p) = traced();
        assert!(verify_trace(&trace, &deps, p.streams).is_empty());
    }

    #[test]
    fn real_execution_is_deterministic() {
        let (g, trace, _, p) = traced();
        let again = exec::execute(&g, &p);
        assert!(compare_traces(&trace, &again).is_empty());
    }

    #[test]
    fn early_start_is_nnl201() {
        let (_, mut trace, deps, p) = traced();
        // Find a kernel with a producer and pull its start before the
        // producer's finish.
        let victim = deps.iter().position(|d| !d.is_empty()).unwrap();
        trace.kernels[victim].start_ms = -1.0;
        let out = verify_trace(&trace, &deps, p.streams);
        assert!(
            out.iter().any(|d| d.code == Code::HazardHappensBefore),
            "{out:?}"
        );
    }

    #[test]
    fn stream_overlap_is_nnl202() {
        let (_, mut trace, deps, p) = traced();
        // Force every kernel onto stream 0 while keeping the original
        // overlapping times from the multi-stream schedule.
        let parallel = trace.kernels.iter().any(|k| k.stream != 0);
        assert!(parallel, "GoogleNet should use more than one stream");
        for k in &mut trace.kernels {
            k.stream = 0;
        }
        let out = verify_trace(&trace, &deps, p.streams);
        assert!(
            out.iter().any(|d| d.code == Code::HazardStreamOverlap),
            "{out:?}"
        );
    }

    #[test]
    fn tampered_latency_is_nnl203() {
        let (_, mut trace, deps, p) = traced();
        trace.latency_ms *= 0.5;
        let out = verify_trace(&trace, &deps, p.streams);
        assert!(
            out.iter().any(|d| d.code == Code::LatencyMismatch),
            "{out:?}"
        );
    }

    #[test]
    fn differing_traces_are_nnl204() {
        let (_, trace, _, _) = traced();
        let mut other = trace.clone();
        other.kernels[0].finish_ms += 1e-6;
        let out = compare_traces(&trace, &other);
        assert!(out.iter().any(|d| d.code == Code::NonDeterministic));
        // Even a sub-EPS change is nondeterminism: comparison is bitwise.
        let mut tiny = trace.clone();
        tiny.kernels[0].start_ms = f64::from_bits(tiny.kernels[0].start_ms.to_bits() ^ 1);
        assert!(!compare_traces(&trace, &tiny).is_empty());
    }

    #[test]
    fn ghost_stream_is_nnl205() {
        let (_, mut trace, deps, p) = traced();
        trace.kernels[0].stream = 99;
        let out = verify_trace(&trace, &deps, p.streams);
        assert!(
            out.iter().any(|d| d.code == Code::StreamOutOfRange),
            "{out:?}"
        );
    }

    #[test]
    fn kernel_count_mismatch_is_reported() {
        let (_, mut trace, deps, p) = traced();
        trace.kernels.pop();
        let out = verify_trace(&trace, &deps, p.streams);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::HazardHappensBefore);
    }
}
