//! A generic fixed-point dataflow engine over NNLQP graphs.
//!
//! Classic iterative dataflow analysis, specialized to the two structures
//! an inference graph offers:
//!
//! * the **data DAG** — facts flow along tensor edges (producer to
//!   consumer, or the reverse), as in reachability and value numbering;
//! * the **execution order** — the node vector *is* the canonical
//!   sequential schedule, so liveness-style analyses treat it as a
//!   straight-line program (node `i`'s only CFG successor is `i + 1`).
//!
//! An analysis supplies a lattice (`bottom`, `boundary`, `join`) and a
//! `transfer` function; [`solve`] sweeps the nodes in dependency order
//! until no fact changes. Because a well-formed graph's node vector is a
//! topological order, one sweep reaches the fixpoint and a second verifies
//! it — the engine still caps iterations at `len + 2` so a malformed
//! (cyclic) edge set terminates with [`Fixpoint::converged`] = `false`
//! instead of spinning.
//!
//! `transfer` receives the facts of the node's dataflow dependencies as an
//! ordered slice rather than pre-joined, so positional analyses (value
//! numbering hashes input facts in argument order) and join-lattice
//! analyses (which fold the slice through [`DataflowAnalysis::joined`])
//! share the same engine.

use nnlqp_ir::{Graph, NodeId};

/// Which way facts propagate along the dependency structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from dependencies to dependents (sources first).
    Forward,
    /// Facts flow from dependents back to dependencies (sinks first).
    Backward,
}

/// The structure facts flow along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepStructure {
    /// Tensor edges: a forward analysis sees each node's inputs, a
    /// backward one its consumers.
    DataEdges,
    /// The sequential execution schedule (the node vector): node `i`
    /// depends on `i - 1` forward, on `i + 1` backward.
    ExecutionOrder,
}

/// One dataflow analysis: a lattice plus a transfer function.
pub trait DataflowAnalysis {
    /// Per-node fact. Equality drives convergence detection.
    type Fact: Clone + PartialEq;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// What facts flow along. Defaults to the data DAG.
    fn structure(&self) -> DepStructure {
        DepStructure::DataEdges
    }

    /// The lattice bottom: every node's fact before the first sweep.
    fn bottom(&self, g: &Graph, id: NodeId) -> Self::Fact;

    /// Fact entering the graph at a node with no dataflow dependencies
    /// (a source in a forward analysis, a sink in a backward one).
    fn boundary(&self, g: &Graph, id: NodeId) -> Self::Fact;

    /// Lattice join (least upper bound) of two facts.
    fn join(&self, acc: Self::Fact, dep: &Self::Fact) -> Self::Fact;

    /// Compute the node's fact from its dependencies' current facts, in
    /// graph order (input order forward, ascending consumer id backward).
    /// Join-lattice analyses fold `deps` through [`Self::joined`];
    /// positional analyses consume the slice directly.
    fn transfer(&self, g: &Graph, id: NodeId, deps: &[Self::Fact]) -> Self::Fact;

    /// Join of `deps`, or the boundary fact when there are none.
    fn joined(&self, g: &Graph, id: NodeId, deps: &[Self::Fact]) -> Self::Fact {
        match deps.split_first() {
            None => self.boundary(g, id),
            Some((first, rest)) => rest.iter().fold(first.clone(), |acc, d| self.join(acc, d)),
        }
    }
}

/// The result of running an analysis to fixpoint.
#[derive(Debug, Clone)]
pub struct Fixpoint<F> {
    /// Final fact per node, indexed by node id.
    pub facts: Vec<F>,
    /// Sweeps performed (a DAG in topological order needs exactly two:
    /// one to compute, one to verify).
    pub sweeps: usize,
    /// False only when the iteration cap was hit before stabilizing —
    /// possible only on a malformed (cyclic) edge set.
    pub converged: bool,
}

/// Dependency index lists for `a` over `g`, in the order `transfer` sees
/// them.
fn dep_lists<A: DataflowAnalysis>(g: &Graph, a: &A) -> Vec<Vec<usize>> {
    let n = g.len();
    match (a.structure(), a.direction()) {
        (DepStructure::DataEdges, Direction::Forward) => g
            .nodes
            .iter()
            .map(|node| node.inputs.iter().map(|i| i.index()).collect())
            .collect(),
        (DepStructure::DataEdges, Direction::Backward) => g
            .successors()
            .into_iter()
            .map(|succ| succ.into_iter().map(nnlqp_ir::NodeId::index).collect())
            .collect(),
        (DepStructure::ExecutionOrder, Direction::Forward) => (0..n)
            .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
            .collect(),
        (DepStructure::ExecutionOrder, Direction::Backward) => (0..n)
            .map(|i| if i + 1 == n { vec![] } else { vec![i + 1] })
            .collect(),
    }
}

/// Run `a` over `g` to a fixpoint.
///
/// Sweeps the node vector in the analysis direction (it is the canonical
/// topological order on well-formed graphs, so the fixpoint lands in one
/// sweep and the second confirms it), iterating until no fact changes or
/// `len + 2` sweeps elapse.
pub fn solve<A: DataflowAnalysis>(g: &Graph, a: &A) -> Fixpoint<A::Fact> {
    let n = g.len();
    let mut facts: Vec<A::Fact> = (0..n).map(|i| a.bottom(g, NodeId(i as u32))).collect();
    if n == 0 {
        return Fixpoint {
            facts,
            sweeps: 0,
            converged: true,
        };
    }
    let deps = dep_lists(g, a);
    let order: Vec<usize> = match a.direction() {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };
    let max_sweeps = n + 2;
    let mut sweeps = 0;
    let mut converged = false;
    let mut scratch: Vec<A::Fact> = Vec::new();
    while sweeps < max_sweeps {
        sweeps += 1;
        let mut changed = false;
        for &i in &order {
            scratch.clear();
            scratch.extend(deps[i].iter().map(|&d| facts[d].clone()));
            let new = a.transfer(g, NodeId(i as u32), &scratch);
            if new != facts[i] {
                facts[i] = new;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    Fixpoint {
        facts,
        sweeps,
        converged,
    }
}

/// Reachability to the model output (the last sink, which is what
/// [`Graph::output_shape`] reports): a backward data-edge analysis whose
/// fact is "this node's value can reach the output". The complement is
/// the dead region [`crate::ir_lints::check_dead_nodes`] diagnoses.
pub struct ReachabilityAnalysis {
    output: usize,
}

impl ReachabilityAnalysis {
    /// `None` on an empty graph.
    pub fn new(g: &Graph) -> Option<Self> {
        g.sinks().last().map(|out| ReachabilityAnalysis {
            output: out.index(),
        })
    }
}

impl DataflowAnalysis for ReachabilityAnalysis {
    type Fact = bool;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _g: &Graph, _id: NodeId) -> bool {
        false
    }

    fn boundary(&self, _g: &Graph, id: NodeId) -> bool {
        id.index() == self.output
    }

    fn join(&self, acc: bool, dep: &bool) -> bool {
        acc || *dep
    }

    fn transfer(&self, g: &Graph, id: NodeId, deps: &[bool]) -> bool {
        id.index() == self.output || self.joined(g, id, deps)
    }
}

/// A compact fixed-capacity bit set, the fact type of set-valued analyses
/// (liveness). Equality ignores capacity: two sets with the same members
/// compare equal regardless of how they were sized.
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set sized for members `0..bits`.
    pub fn with_capacity(bits: usize) -> BitSet {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Add a member, growing if needed.
    pub fn insert(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (i % 64);
    }

    /// Remove a member.
    pub fn remove(&mut self, i: usize) {
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1 << (i % 64));
        }
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Set union, in place.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no members are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        let common = self.words.len().min(other.words.len());
        self.words[..common] == other.words[..common]
            && self.words[common..].iter().all(|&w| w == 0)
            && other.words[common..].iter().all(|&w| w == 0)
    }
}

impl Eq for BitSet {}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, Shape};

    /// Forward data-edge analysis: longest path from a source, in nodes.
    struct Depth;

    impl DataflowAnalysis for Depth {
        type Fact = u64;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn bottom(&self, _g: &Graph, _id: NodeId) -> u64 {
            0
        }

        fn boundary(&self, _g: &Graph, _id: NodeId) -> u64 {
            0
        }

        fn join(&self, acc: u64, dep: &u64) -> u64 {
            acc.max(*dep)
        }

        fn transfer(&self, g: &Graph, id: NodeId, deps: &[u64]) -> u64 {
            if deps.is_empty() {
                self.boundary(g, id)
            } else {
                1 + self.joined(g, id, deps)
            }
        }
    }

    fn diamond() -> Graph {
        // n0 conv -> (n1 relu, n2 sigmoid) -> n3 add
        let mut b = GraphBuilder::new("d", Shape::nchw(1, 2, 4, 4));
        let c = b.conv(None, 2, 1, 1, 0, 1).unwrap();
        let r = b.relu(c).unwrap();
        let s = b.sigmoid(c).unwrap();
        b.add(r, s).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn forward_depth_converges_in_two_sweeps() {
        let g = diamond();
        let fix = solve(&g, &Depth);
        assert!(fix.converged);
        assert_eq!(fix.sweeps, 2, "topo-ordered DAG: compute + verify");
        assert_eq!(fix.facts, vec![0, 1, 1, 2]);
    }

    #[test]
    fn backward_reachability_finds_dead_branch() {
        // n1 sigmoid is dead: nothing consumes it and n4 relu is the
        // model output.
        let mut b = GraphBuilder::new("dead", Shape::nchw(1, 2, 4, 4));
        let c = b.conv(None, 2, 1, 1, 0, 1).unwrap();
        b.sigmoid(c).unwrap();
        let r = b.relu(c).unwrap();
        b.relu(r).unwrap();
        let g = b.finish().unwrap();
        let fix = solve(&g, &ReachabilityAnalysis::new(&g).unwrap());
        assert!(fix.converged);
        assert_eq!(fix.facts, vec![true, false, true, true]);
    }

    #[test]
    fn cyclic_edges_terminate_unconverged() {
        // Tamper a chain into a 2-cycle; Depth then never stabilizes, and
        // the engine must stop at the cap instead of spinning.
        let mut g = diamond();
        g.nodes[1].inputs = vec![NodeId(3)];
        let fix = solve(&g, &Depth);
        assert!(!fix.converged);
        assert_eq!(fix.sweeps, g.len() + 2);
    }

    #[test]
    fn execution_order_chains_adjacent_nodes() {
        struct Position;
        impl DataflowAnalysis for Position {
            type Fact = u64;
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn structure(&self) -> DepStructure {
                DepStructure::ExecutionOrder
            }
            fn bottom(&self, _g: &Graph, _id: NodeId) -> u64 {
                0
            }
            fn boundary(&self, _g: &Graph, _id: NodeId) -> u64 {
                0
            }
            fn join(&self, acc: u64, dep: &u64) -> u64 {
                acc.max(*dep)
            }
            fn transfer(&self, g: &Graph, id: NodeId, deps: &[u64]) -> u64 {
                if deps.is_empty() {
                    self.boundary(g, id)
                } else {
                    1 + self.joined(g, id, deps)
                }
            }
        }
        let g = diamond();
        let fix = solve(&g, &Position);
        assert!(fix.converged);
        // Along the schedule, not the DAG: every node is one step after
        // its predecessor in the node vector.
        assert_eq!(fix.facts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_graph_is_trivially_converged() {
        let g = Graph {
            name: "empty".into(),
            input_shape: Shape::nchw(1, 1, 1, 1),
            nodes: Vec::new(),
        };
        let fix = solve(&g, &Depth);
        assert!(fix.converged);
        assert!(fix.facts.is_empty());
        assert_eq!(fix.sweeps, 0);
    }

    #[test]
    fn bitset_semantics() {
        let mut a = BitSet::with_capacity(4);
        a.insert(1);
        a.insert(70); // grows past the initial capacity
        assert!(a.contains(1) && a.contains(70) && !a.contains(2));
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 70]);
        let mut b = BitSet::with_capacity(128);
        b.insert(70);
        b.insert(1);
        // Equality ignores capacity.
        assert_eq!(a, b);
        a.remove(70);
        assert_ne!(a, b);
        b.remove(70);
        assert_eq!(a, b);
        let mut c = BitSet::with_capacity(0);
        c.union_with(&b);
        assert!(c.contains(1));
        assert!(!c.is_empty());
    }
}
