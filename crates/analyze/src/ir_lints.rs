//! IR dataflow lints (`NNL001`–`NNL009`).
//!
//! These passes re-derive, diagnostically, everything
//! [`nnlqp_ir::validate::validate`] enforces fatally — and go further:
//! validation stops at the first violation, while the linter reports every
//! finding with a stable code, then layers on dataflow facts validation
//! does not track (reachability, value numbering, serialization round
//! trips). The whole-graph facts come from the fixed-point engine in
//! [`crate::dataflow`]: dead-region detection is a backward reachability
//! analysis, duplicate-subgraph detection a forward value-numbering one.

use crate::dataflow::{self, DataflowAnalysis, Direction, ReachabilityAnalysis};
use crate::diagnostic::{Anchor, Code, Diagnostic};
use crate::{AnalysisContext, Pass};
use nnlqp_hash::{graph_hash, HashAlgo, StreamHasher};
use nnlqp_ir::infer::infer_shape;
use nnlqp_ir::{serialize, Graph, NodeId, OpType, Shape};
use std::collections::HashMap;

/// The `ir-lints` pass: runs every check in this module.
pub struct IrLintPass;

impl Pass for IrLintPass {
    fn name(&self) -> &'static str {
        "ir-lints"
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let g = ctx.graph;
        let mut out = check_structure(g);
        let structurally_sound = !out.iter().any(|d| crate::is_structural(d.code));
        out.extend(check_degenerate_shapes(g));
        if structurally_sound {
            // Liveness, value numbering and serialization all walk edges /
            // round-trip the graph; only meaningful on a sound IR.
            out.extend(check_dead_nodes(g));
            out.extend(check_duplicate_subgraphs(g));
            out.extend(check_cache_canonical(g));
        }
        out.extend(check_suspicious_attrs(g));
        out
    }
}

/// `NNL001`–`NNL004`: orphan inputs, non-canonical order, arity and shape
/// violations. The diagnostic mirror of [`nnlqp_ir::validate::validate`],
/// but exhaustive instead of fail-fast.
pub fn check_structure(g: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if g.nodes.is_empty() {
        out.push(Diagnostic::error(
            Code::DegenerateShape,
            Anchor::Graph,
            "graph has no nodes",
        ));
        return out;
    }
    for (i, n) in g.nodes.iter().enumerate() {
        let id = i as u32;
        let mut inputs_ok = true;
        for &inp in &n.inputs {
            if inp.index() >= g.len() {
                inputs_ok = false;
                out.push(Diagnostic::new(
                    Code::OrphanInput,
                    Anchor::Node(id),
                    format!(
                        "input n{} does not exist (graph has {} nodes)",
                        inp.0,
                        g.len()
                    ),
                ));
            } else if inp.index() >= i {
                inputs_ok = false;
                out.push(Diagnostic::new(
                    Code::NonCanonicalOrder,
                    Anchor::Node(id),
                    format!(
                        "input n{} does not precede its consumer; the node vector is not a \
                         topological order, so the graph hash is not a canonical cache key",
                        inp.0
                    ),
                ));
            }
        }
        let (min, max) = n.op.arity();
        let got = n.inputs.len();
        // Zero inputs means the node reads the graph input, legal only for
        // ops whose minimum arity is zero.
        let arity_ok = if got == 0 {
            min == 0
        } else {
            got >= min.max(1) && got <= max
        };
        if !arity_ok {
            out.push(Diagnostic::new(
                Code::ArityMismatch,
                Anchor::Node(id),
                format!(
                    "{} expects {}..={} inputs, got {}",
                    n.op.name(),
                    min,
                    max,
                    got
                ),
            ));
            continue;
        }
        if !inputs_ok {
            continue; // cannot infer shapes over broken edges
        }
        let in_shapes: Vec<&Shape> = n
            .inputs
            .iter()
            .map(|x| &g.nodes[x.index()].out_shape)
            .collect();
        match infer_shape(id, n.op, &n.attrs, &in_shapes, &g.input_shape) {
            Ok(expect) if expect == n.out_shape => {}
            Ok(expect) => out.push(Diagnostic::new(
                Code::ShapeMismatch,
                Anchor::Node(id),
                format!(
                    "stored shape {} but inference yields {}",
                    n.out_shape, expect
                ),
            )),
            Err(e) => out.push(Diagnostic::new(
                Code::ShapeMismatch,
                Anchor::Node(id),
                format!("shape inference failed: {e}"),
            )),
        }
    }
    out
}

/// `NNL005`: zero-element tensors anywhere in the graph. These execute as
/// no-ops but corrupt FLOPs/memory accounting and latency records.
pub fn check_degenerate_shapes(g: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if g.input_shape.numel() == 0 {
        out.push(Diagnostic::new(
            Code::DegenerateShape,
            Anchor::Graph,
            format!("graph input shape {} has zero elements", g.input_shape),
        ));
    }
    for (i, n) in g.nodes.iter().enumerate() {
        if n.out_shape.numel() == 0 {
            out.push(Diagnostic::new(
                Code::DegenerateShape,
                Anchor::Node(i as u32),
                format!(
                    "{} output shape {} has zero elements",
                    n.op.name(),
                    n.out_shape
                ),
            ));
        }
    }
    out
}

/// `NNL006`: nodes whose value never reaches the model output (the last
/// sink, which is what [`Graph::output_shape`] reports and what the
/// simulator's makespan is measured against). Liveness comes from the
/// backward [`ReachabilityAnalysis`] fixpoint; dead nodes are then
/// grouped into weakly connected dead *regions*, so a whole orphaned
/// branch reads as one region rather than a scatter of unrelated nodes.
pub fn check_dead_nodes(g: &Graph) -> Vec<Diagnostic> {
    let Some(analysis) = ReachabilityAnalysis::new(g) else {
        return Vec::new();
    };
    let output = *g.sinks().last().expect("non-empty graph has a sink");
    let live = dataflow::solve(g, &analysis).facts;
    // Union-find over edges whose endpoints are both dead: connected
    // components of the dead subgraph are the dead regions.
    let mut parent: Vec<usize> = (0..g.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for (i, n) in g.nodes.iter().enumerate() {
        if live[i] {
            continue;
        }
        for inp in &n.inputs {
            if !live[inp.index()] {
                let (a, b) = (find(&mut parent, i), find(&mut parent, inp.index()));
                parent[a.max(b)] = a.min(b);
            }
        }
    }
    let mut region_size: HashMap<usize, usize> = HashMap::new();
    for i in (0..g.len()).filter(|&i| !live[i]) {
        *region_size.entry(find(&mut parent, i)).or_insert(0) += 1;
    }
    (0..g.len())
        .filter(|&i| !live[i])
        .map(|i| {
            let root = find(&mut parent, i);
            Diagnostic::new(
                Code::DeadNode,
                Anchor::Node(i as u32),
                format!(
                    "{} output never reaches the model output n{} \
                     (dead region of {} node(s) rooted at n{})",
                    g.nodes[i].op.name(),
                    output.0,
                    region_size[&root],
                    root
                ),
            )
        })
        .collect()
}

/// Sentinel value number for "reads the graph input".
const GRAPH_INPUT: u64 = 0x6e6e_6c71_7069_6e00;

/// Forward value numbering on the dataflow engine. The fact is a hash of
/// op code, attributes and the input facts in argument order (sorted for
/// commutative ops, so `add(a, b)` and `add(b, a)` match) — a positional
/// analysis, so `transfer` consumes the dep slice directly instead of
/// folding it through the join.
struct ValueNumbering;

impl DataflowAnalysis for ValueNumbering {
    type Fact = u64;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _g: &Graph, _id: NodeId) -> u64 {
        0
    }

    fn boundary(&self, _g: &Graph, _id: NodeId) -> u64 {
        GRAPH_INPUT
    }

    /// Order-insensitive combine; only `joined` uses it, the transfer
    /// below hashes dep facts positionally.
    fn join(&self, acc: u64, dep: &u64) -> u64 {
        acc ^ *dep
    }

    fn transfer(&self, g: &Graph, id: NodeId, deps: &[u64]) -> u64 {
        let n = g.node(id);
        let mut h = StreamHasher::new(HashAlgo::Fnv1a);
        h.write_u64(n.op.code() as u64);
        for a in n.attrs.to_vec() {
            h.write_f32(a);
        }
        let mut ins: Vec<u64> = if deps.is_empty() {
            vec![self.boundary(g, id)]
        } else {
            deps.to_vec()
        };
        if matches!(n.op, OpType::Add | OpType::Mul) {
            ins.sort_unstable();
        }
        h.write_all(&ins);
        h.finish()
    }
}

/// Value number of every node, from the forward fixpoint. Two nodes with
/// equal value numbers compute the same value from the same sources.
fn value_numbers(g: &Graph) -> Vec<u64> {
    dataflow::solve(g, &ValueNumbering).facts
}

/// `NNL007`: duplicate subgraphs. A node whose value number collides with
/// an earlier node recomputes an identical subgraph — a common
/// subexpression elimination candidate (and a latency the database pays
/// twice for).
pub fn check_duplicate_subgraphs(g: &Graph) -> Vec<Diagnostic> {
    let vn = value_numbers(g);
    let mut first: HashMap<u64, usize> = HashMap::new();
    let mut out = Vec::new();
    for (i, &h) in vn.iter().enumerate() {
        if let Some(&earlier) = first.get(&h) {
            out.push(Diagnostic::new(
                Code::DuplicateSubgraph,
                Anchor::Node(i as u32),
                format!(
                    "recomputes the same value as n{earlier} ({}); CSE candidate",
                    g.nodes[earlier].op.name()
                ),
            ));
        } else {
            first.insert(h, i);
        }
    }
    out
}

/// `NNL008`: attribute combinations that type-check but cannot mean what
/// the author intended.
pub fn check_suspicious_attrs(g: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, n) in g.nodes.iter().enumerate() {
        let id = i as u32;
        let a = &n.attrs;
        match n.op {
            OpType::Clip if a.clip_min > a.clip_max => out.push(Diagnostic::new(
                Code::SuspiciousAttrs,
                Anchor::Node(id),
                format!(
                    "clip_min {} > clip_max {}: output is constant",
                    a.clip_min, a.clip_max
                ),
            )),
            OpType::Conv | OpType::MaxPool | OpType::AveragePool => {
                if a.kernel[0] == 0 || a.kernel[1] == 0 {
                    out.push(Diagnostic::new(
                        Code::SuspiciousAttrs,
                        Anchor::Node(id),
                        format!("{} with zero kernel size {:?}", n.op.name(), a.kernel),
                    ));
                }
                if a.stride[0] == 0 || a.stride[1] == 0 {
                    out.push(Diagnostic::new(
                        Code::SuspiciousAttrs,
                        Anchor::Node(id),
                        format!("{} with zero stride {:?}", n.op.name(), a.stride),
                    ));
                }
                if n.op == OpType::Conv {
                    if a.groups == 0 {
                        out.push(Diagnostic::new(
                            Code::SuspiciousAttrs,
                            Anchor::Node(id),
                            "conv with zero groups",
                        ));
                    } else if a.out_channels % a.groups != 0 {
                        out.push(Diagnostic::new(
                            Code::SuspiciousAttrs,
                            Anchor::Node(id),
                            format!(
                                "groups {} does not divide out_channels {}",
                                a.groups, a.out_channels
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// `NNL009`: the database cache key is the graph hash of the *stored*
/// graph. If a serialize → deserialize round trip changes the hash (or
/// fails), the graph that comes back out of `nnlqp-db` is a different
/// cache key than the one that went in, and every future lookup misses.
pub fn check_cache_canonical(g: &Graph) -> Vec<Diagnostic> {
    let before = graph_hash(g);
    match serialize::decode(serialize::encode(g)) {
        Err(e) => vec![Diagnostic::new(
            Code::HashNotCanonical,
            Anchor::Graph,
            format!("graph does not survive serialization: {e}"),
        )],
        Ok(back) => {
            let after = graph_hash(&back);
            if after == before {
                Vec::new()
            } else {
                vec![Diagnostic::new(
                    Code::HashNotCanonical,
                    Anchor::Graph,
                    format!(
                        "graph hash {before:#018x} becomes {after:#018x} after a \
                         serialize round trip; the database would never hit on this key"
                    ),
                )]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, NodeId};

    fn chain() -> Graph {
        let mut b = GraphBuilder::new("chain", Shape::nchw(1, 3, 16, 16));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let p = b.global_avgpool(r).unwrap();
        let f = b.flatten(p).unwrap();
        b.gemm(f, 10).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn clean_chain_has_no_findings() {
        let g = chain();
        assert!(check_structure(&g).is_empty());
        assert!(check_degenerate_shapes(&g).is_empty());
        assert!(check_dead_nodes(&g).is_empty());
        assert!(check_duplicate_subgraphs(&g).is_empty());
        assert!(check_suspicious_attrs(&g).is_empty());
        assert!(check_cache_canonical(&g).is_empty());
    }

    #[test]
    fn orphan_input_is_nnl001() {
        let mut g = chain();
        g.nodes[1].inputs = vec![NodeId(99)];
        let out = check_structure(&g);
        assert!(out.iter().any(|d| d.code == Code::OrphanInput));
    }

    #[test]
    fn forward_edge_is_nnl002() {
        let mut g = chain();
        g.nodes[0].inputs = vec![NodeId(1)];
        let out = check_structure(&g);
        assert!(out.iter().any(|d| d.code == Code::NonCanonicalOrder));
    }

    #[test]
    fn extra_input_is_nnl003() {
        let mut g = chain();
        g.nodes[1].inputs = vec![NodeId(0), NodeId(0)];
        let out = check_structure(&g);
        assert!(out.iter().any(|d| d.code == Code::ArityMismatch));
    }

    #[test]
    fn tampered_shape_is_nnl004() {
        let mut g = chain();
        g.nodes[1].out_shape = Shape::nchw(1, 99, 16, 16);
        let out = check_structure(&g);
        assert!(out.iter().any(|d| d.code == Code::ShapeMismatch));
    }

    #[test]
    fn reports_every_violation_not_just_first() {
        let mut g = chain();
        g.nodes[1].inputs = vec![NodeId(99)];
        g.nodes[2].inputs = vec![NodeId(50)];
        let out = check_structure(&g);
        assert_eq!(
            out.iter().filter(|d| d.code == Code::OrphanInput).count(),
            2
        );
    }

    #[test]
    fn dead_branch_is_nnl006() {
        // A second sink that never reaches the model output.
        let mut b = GraphBuilder::new("dead", Shape::nchw(1, 3, 16, 16));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        b.sigmoid(c).unwrap(); // dead: nothing consumes it, not the output
        let r = b.relu(c).unwrap();
        let p = b.global_avgpool(r).unwrap();
        let f = b.flatten(p).unwrap();
        b.gemm(f, 10).unwrap();
        let g = b.finish().unwrap();
        let out = check_dead_nodes(&g);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::DeadNode);
        assert_eq!(out[0].anchor, Anchor::Node(1));
    }

    #[test]
    fn duplicate_branches_are_nnl007() {
        let mut b = GraphBuilder::new("dup", Shape::nchw(1, 8, 8, 8));
        let stem = b.conv(None, 8, 1, 1, 0, 1).unwrap();
        let x = b.conv(Some(stem), 8, 3, 1, 1, 1).unwrap();
        let y = b.conv(Some(stem), 8, 3, 1, 1, 1).unwrap(); // identical twin
        b.add(x, y).unwrap();
        let g = b.finish().unwrap();
        let out = check_duplicate_subgraphs(&g);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].anchor, Anchor::Node(y.0));
    }

    #[test]
    fn commutative_inputs_value_number_equal() {
        // add(x, y) and add(y, x) are the same value.
        let mut b = GraphBuilder::new("comm", Shape::nchw(1, 8, 8, 8));
        let stem = b.conv(None, 8, 1, 1, 0, 1).unwrap();
        let x = b.conv(Some(stem), 8, 3, 1, 1, 1).unwrap();
        let y = b.conv(Some(stem), 8, 5, 1, 2, 1).unwrap();
        let a1 = b.add(x, y).unwrap();
        let a2 = b.add(y, x).unwrap();
        b.mul(a1, a2).unwrap();
        let g = b.finish().unwrap();
        let out = check_duplicate_subgraphs(&g);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].anchor, Anchor::Node(a2.0));
    }

    #[test]
    fn bad_clip_range_is_nnl008() {
        let mut b = GraphBuilder::new("clip", Shape::nchw(1, 8, 8, 8));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        b.relu6(c).unwrap();
        let mut g = b.finish().unwrap();
        g.nodes[1].attrs.clip_min = 9.0;
        let out = check_suspicious_attrs(&g);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::SuspiciousAttrs);
    }

    #[test]
    fn group_mismatch_is_nnl008() {
        let mut g = chain();
        g.nodes[0].attrs.groups = 3; // 3 does not divide 8
        let out = check_suspicious_attrs(&g);
        assert!(out.iter().any(|d| d.code == Code::SuspiciousAttrs));
    }

    #[test]
    fn truncating_serialization_is_nnl009() {
        // The binary format stores out_channels as u16: a conv with
        // 65536 + 8 output channels is internally consistent (no NNL004)
        // but round-trips to out_channels = 8, so the decoded graph is a
        // different cache key.
        let mut b = GraphBuilder::new("wide", Shape::nchw(1, 3, 8, 8));
        let c = b.conv(None, 65_544, 3, 1, 1, 1).unwrap();
        b.relu(c).unwrap();
        let g = b.finish().unwrap();
        assert!(check_structure(&g).is_empty());
        let out = check_cache_canonical(&g);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, Code::HashNotCanonical);
    }

    #[test]
    fn degenerate_node_is_detected() {
        let mut g = chain();
        g.nodes[1].out_shape = Shape(vec![1, 0, 16, 16]);
        let out = check_degenerate_shapes(&g);
        assert!(out.iter().any(|d| d.code == Code::DegenerateShape));
    }

    #[test]
    fn full_pass_on_builder_output_is_clean() {
        let pass = IrLintPass;
        let g = chain();
        let ctx = AnalysisContext {
            graph: &g,
            platform: None,
        };
        assert!(pass.run(&ctx).is_empty());
    }

    #[test]
    fn attrs_defaults_do_not_trip_nnl008() {
        // Non-conv ops carry kernel [0, 0] in their default attrs; only
        // conv/pool ops may be flagged for it.
        let mut b = GraphBuilder::new("d", Shape::nchw(1, 4, 8, 8));
        let c = b.conv(None, 4, 1, 1, 0, 1).unwrap();
        b.relu(c).unwrap();
        let g = b.finish().unwrap();
        assert!(check_suspicious_attrs(&g).is_empty());
    }
}
