//! Cost sanity (`NNL303`, `NNL304`): static roofline bounds on simulated
//! kernel latencies.
//!
//! The static FLOPs/bytes accounting in [`nnlqp_ir::cost`] and the
//! simulator's scheduled kernel times are independent derivations from the
//! same graph, so each kernel's scheduled interval must land inside a
//! physics window:
//!
//! * **floor** — no kernel beats `max(flops / peak, output_bytes / bw)`:
//!   utilization cannot exceed 1.0 and output bytes are always written at
//!   DRAM bandwidth. A faster interval means the simulator (or a tampered
//!   trace headed for the evolving database) is claiming impossible
//!   throughput, which poisons ground truth — an error.
//! * **ceiling** — the cost model's utilization is clamped at 0.005 and
//!   reads are at worst cold, so `launch + flops / (peak * 0.005) +
//!   all_bytes / bw`, doubled for slack, bounds any plausible interval.
//!   Slower is suspicious (a stalled or mis-accounted schedule) — a
//!   warning.
//!
//! As in [`crate::schedule_checks`], the verifier takes the trace as a
//! parameter so seeded-mutation tests can feed it tampered schedules;
//! [`CostSanityPass`] wires it to a fresh `execute()` run.

use crate::diagnostic::{Anchor, Code, Diagnostic};
use crate::schedule_checks::EPS_MS;
use crate::{AnalysisContext, Pass};
use nnlqp_ir::{cost, DType, Graph};
use nnlqp_sim::exec::{self, ExecutionTrace};
use nnlqp_sim::fusion::{self, Kernel};
use nnlqp_sim::platform::PlatformSpec;

/// The cost model's utilization clamp floor (see
/// `nnlqp_sim::kernel_cost::utilization`); the ceiling assumes no kernel
/// runs below it.
pub const MIN_UTILIZATION: f64 = 0.005;

/// Multiplier on the summed worst-case ceiling, absorbing scheduling
/// residue (a kernel's interval also covers unpipelined launch slack).
const CEILING_SLACK: f64 = 2.0;

/// Static per-kernel bounds, derived from the IR only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelBounds {
    /// Fastest physically possible interval (ms).
    pub floor_ms: f64,
    /// Slowest plausible interval (ms).
    pub ceiling_ms: f64,
}

/// Roofline window for one kernel from the IR's static cost accounting.
pub fn kernel_bounds(g: &Graph, k: &Kernel, dt: DType, p: &PlatformSpec) -> KernelBounds {
    let mut flops = 0.0f64;
    let mut read_bytes = 0.0f64;
    for &id in &k.nodes {
        let c = cost::node_cost(g, id, dt);
        flops += c.flops;
        // Over-counts fused intermediates vs. the kernel's true external
        // traffic; harmless, it only widens the ceiling.
        read_bytes += c.read_bytes;
    }
    let write_bytes = g
        .node(*k.nodes.last().expect("kernel has nodes"))
        .out_shape
        .bytes(dt) as f64;
    let peak = p.peak_gflops * 1.0e9;
    let bw = p.mem_bw_gbps * 1.0e9;
    let floor_ms = (flops / peak).max(write_bytes / bw) * 1.0e3;
    let ceiling_ms = CEILING_SLACK
        * (p.launch_us * 1.0e-3
            + flops / (peak * MIN_UTILIZATION) * 1.0e3
            + (read_bytes + write_bytes) / bw * 1.0e3)
        + 1.0e-3;
    KernelBounds {
        floor_ms,
        ceiling_ms,
    }
}

/// Check every scheduled kernel interval against its static roofline
/// window. Covers `NNL303` (implausibly fast) and `NNL304` (implausibly
/// slow).
pub fn verify_kernel_costs(
    g: &Graph,
    kernels: &[Kernel],
    trace: &ExecutionTrace,
    p: &PlatformSpec,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if trace.kernels.len() != kernels.len() {
        out.push(Diagnostic::new(
            Code::CostUnderRoofline,
            Anchor::Graph,
            format!(
                "trace schedules {} kernels but fusion produced {}",
                trace.kernels.len(),
                kernels.len()
            ),
        ));
        return out;
    }
    for (i, (k, sched)) in kernels.iter().zip(&trace.kernels).enumerate() {
        let bounds = kernel_bounds(g, k, p.dtype, p);
        let span_ms = sched.finish_ms - sched.start_ms;
        if span_ms + EPS_MS < bounds.floor_ms * (1.0 - 1.0e-6) {
            out.push(Diagnostic::new(
                Code::CostUnderRoofline,
                Anchor::Kernel(i),
                format!(
                    "{} interval {:.6} ms beats the roofline floor {:.6} ms \
                     (peak {} GFLOP/s, bw {} GB/s cannot go faster)",
                    k.family, span_ms, bounds.floor_ms, p.peak_gflops, p.mem_bw_gbps
                ),
            ));
        } else if span_ms > bounds.ceiling_ms {
            out.push(Diagnostic::new(
                Code::CostOverRoofline,
                Anchor::Kernel(i),
                format!(
                    "{} interval {:.6} ms exceeds the worst-case ceiling {:.6} ms \
                     even at minimum utilization",
                    k.family, span_ms, bounds.ceiling_ms
                ),
            ));
        }
    }
    out
}

/// The `cost-sanity` pass: fuses and executes the graph on the context
/// platform, then cross-checks the schedule against the static bounds.
pub struct CostSanityPass;

impl Pass for CostSanityPass {
    fn name(&self) -> &'static str {
        "cost-sanity"
    }

    fn needs_sound_ir(&self) -> bool {
        true
    }

    fn needs_platform(&self) -> bool {
        true
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        let p = ctx.platform.expect("pass gated on platform presence");
        let kernels = fusion::fuse(ctx.graph);
        let trace = exec::execute(ctx.graph, p);
        verify_kernel_costs(ctx.graph, &kernels, &trace, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_models::ModelFamily;

    fn t4() -> PlatformSpec {
        PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap()
    }

    fn traced() -> (Graph, Vec<Kernel>, ExecutionTrace, PlatformSpec) {
        let p = t4();
        let g = ModelFamily::ResNet.canonical().unwrap();
        let kernels = fusion::fuse(&g);
        let trace = exec::execute(&g, &p);
        (g, kernels, trace, p)
    }

    #[test]
    fn real_traces_sit_inside_the_window_on_every_platform() {
        for f in nnlqp_models::family::CORPUS_FAMILIES {
            let g = f.canonical().unwrap();
            let kernels = fusion::fuse(&g);
            for p in PlatformSpec::table2_platforms() {
                let trace = exec::execute(&g, &p);
                let out = verify_kernel_costs(&g, &kernels, &trace, &p);
                assert!(out.is_empty(), "{f} on {}: {out:?}", p.name);
            }
        }
    }

    #[test]
    fn bounds_are_ordered_and_positive() {
        let (g, kernels, _, p) = traced();
        for k in &kernels {
            let b = kernel_bounds(&g, k, p.dtype, &p);
            assert!(b.floor_ms >= 0.0);
            assert!(b.ceiling_ms > b.floor_ms);
        }
    }

    #[test]
    fn impossibly_fast_kernel_is_nnl303() {
        let (g, kernels, mut trace, p) = traced();
        // Pick the biggest kernel so the floor is comfortably nonzero and
        // squash its interval to a tenth of it.
        let fat = (0..kernels.len())
            .max_by(|&a, &b| {
                let fa = kernel_bounds(&g, &kernels[a], p.dtype, &p).floor_ms;
                let fb = kernel_bounds(&g, &kernels[b], p.dtype, &p).floor_ms;
                fa.partial_cmp(&fb).unwrap()
            })
            .unwrap();
        let floor = kernel_bounds(&g, &kernels[fat], p.dtype, &p).floor_ms;
        trace.kernels[fat].finish_ms = trace.kernels[fat].start_ms + floor * 0.1;
        let out = verify_kernel_costs(&g, &kernels, &trace, &p);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, Code::CostUnderRoofline);
        assert_eq!(out[0].anchor, Anchor::Kernel(fat));
        assert_eq!(out[0].severity, crate::Severity::Error);
    }

    #[test]
    fn stalled_kernel_is_nnl304() {
        let (g, kernels, mut trace, p) = traced();
        let ceiling = kernel_bounds(&g, &kernels[0], p.dtype, &p).ceiling_ms;
        trace.kernels[0].finish_ms = trace.kernels[0].start_ms + ceiling * 10.0;
        let out = verify_kernel_costs(&g, &kernels, &trace, &p);
        assert!(
            out.iter()
                .any(|d| d.code == Code::CostOverRoofline && d.anchor == Anchor::Kernel(0)),
            "{out:?}"
        );
        assert!(!out.iter().any(|d| d.severity == crate::Severity::Error));
    }

    #[test]
    fn kernel_count_mismatch_is_reported_once() {
        let (g, kernels, mut trace, p) = traced();
        trace.kernels.pop();
        let out = verify_kernel_costs(&g, &kernels, &trace, &p);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].anchor, Anchor::Graph);
    }

    #[test]
    fn pass_is_clean_on_a_real_model() {
        let p = t4();
        let g = ModelFamily::MobileNetV2.canonical().unwrap();
        let ctx = AnalysisContext {
            graph: &g,
            platform: Some(&p),
        };
        assert!(CostSanityPass.run(&ctx).is_empty());
    }
}
