//! Fusion-legality verification (`NNL101`–`NNL103`).
//!
//! [`nnlqp_sim::fusion::fuse`] must produce a legal kernel plan: the
//! kernels partition the node set (`NNL101`), the kernel dependency graph
//! is acyclic (`NNL102`), and every kernel is convex (`NNL103`) — no data
//! path may leave a kernel and re-enter it, because then no launch order
//! exists in which the kernel runs as one unit.
//!
//! The check functions take the kernel list as a parameter (rather than
//! calling `fuse` themselves) so that seeded-mutation tests can hand them
//! deliberately illegal plans; [`FusionLegalityPass`] wires them to the
//! real fusion output.

use crate::diagnostic::{Anchor, Code, Diagnostic};
use crate::{AnalysisContext, Pass};
use nnlqp_ir::Graph;
use nnlqp_sim::fusion::{self, Kernel};

/// The `fusion-legality` pass over the real `fuse()` output.
pub struct FusionLegalityPass;

impl Pass for FusionLegalityPass {
    fn name(&self) -> &'static str {
        "fusion-legality"
    }

    fn needs_sound_ir(&self) -> bool {
        true
    }

    fn run(&self, ctx: &AnalysisContext<'_>) -> Vec<Diagnostic> {
        verify_kernels(ctx.graph, &fusion::fuse(ctx.graph))
    }
}

/// Run every fusion check against an arbitrary kernel plan. Dependency and
/// convexity checks only run on a full partition — `kernel_deps` is
/// undefined over uncovered nodes.
pub fn verify_kernels(g: &Graph, kernels: &[Kernel]) -> Vec<Diagnostic> {
    let mut out = verify_partition(g, kernels);
    if out.is_empty() {
        let deps = fusion::kernel_deps(g, kernels);
        out.extend(verify_deps_acyclic(&deps));
        out.extend(verify_convexity(g, kernels));
    }
    out
}

/// `NNL101`: every graph node must belong to exactly one kernel, and every
/// kernel member must be a real node.
pub fn verify_partition(g: &Graph, kernels: &[Kernel]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut coverage = vec![0usize; g.len()];
    for (ki, k) in kernels.iter().enumerate() {
        if k.nodes.is_empty() {
            out.push(Diagnostic::new(
                Code::KernelCoverage,
                Anchor::Kernel(ki),
                format!("{} kernel has no member nodes", k.family),
            ));
        }
        for &n in &k.nodes {
            if n.index() >= g.len() {
                out.push(Diagnostic::new(
                    Code::KernelCoverage,
                    Anchor::Kernel(ki),
                    format!(
                        "member n{} does not exist (graph has {} nodes)",
                        n.0,
                        g.len()
                    ),
                ));
            } else {
                coverage[n.index()] += 1;
            }
        }
    }
    for (i, &c) in coverage.iter().enumerate() {
        match c {
            1 => {}
            0 => out.push(Diagnostic::new(
                Code::KernelCoverage,
                Anchor::Node(i as u32),
                format!("{} is not covered by any kernel", g.nodes[i].op.name()),
            )),
            n => out.push(Diagnostic::new(
                Code::KernelCoverage,
                Anchor::Node(i as u32),
                format!("{} is covered by {n} kernels", g.nodes[i].op.name()),
            )),
        }
    }
    out
}

/// `NNL102`: the kernel dependency graph must be acyclic, or no launch
/// order exists. `deps[i]` lists kernels that must finish before `i`.
pub fn verify_deps_acyclic(deps: &[Vec<usize>]) -> Vec<Diagnostic> {
    // Kahn's algorithm; whatever survives with nonzero in-degree is on (or
    // downstream of) a cycle.
    let n = deps.len();
    let mut indegree = vec![0usize; n];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, d) in deps.iter().enumerate() {
        indegree[i] = d.len();
        for &p in d {
            consumers[p].push(i);
        }
    }
    let mut ready: Vec<usize> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut done = 0usize;
    while let Some(i) = ready.pop() {
        done += 1;
        for &c in &consumers[i] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                ready.push(c);
            }
        }
    }
    if done == n {
        return Vec::new();
    }
    indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d > 0)
        .map(|(i, _)| {
            Diagnostic::new(
                Code::KernelCycle,
                Anchor::Kernel(i),
                "kernel is part of (or blocked by) a dependency cycle; no launch order exists",
            )
        })
        .collect()
}

/// `NNL103`: every kernel's node set must be convex — if a path leaves the
/// kernel through an outside node and comes back, the outside node both
/// needs the kernel's partial results and must finish before the kernel
/// does, which is impossible for a single launch.
pub fn verify_convexity(g: &Graph, kernels: &[Kernel]) -> Vec<Diagnostic> {
    let succ = g.successors();
    let mut out = Vec::new();
    let mut member = vec![false; g.len()];
    for (ki, k) in kernels.iter().enumerate() {
        if k.nodes.len() < 2 {
            continue; // singletons are trivially convex
        }
        for &n in &k.nodes {
            member[n.index()] = true;
        }
        // From every outside successor of a member, walk forward; reaching
        // another member means a path exits and re-enters the kernel.
        let mut visited = vec![false; g.len()];
        let mut stack: Vec<usize> = Vec::new();
        for &m in &k.nodes {
            for &s in &succ[m.index()] {
                if !member[s.index()] && !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push(s.index());
                }
            }
        }
        let mut breached = false;
        while let Some(v) = stack.pop() {
            if breached {
                break;
            }
            for &s in &succ[v] {
                if member[s.index()] {
                    out.push(Diagnostic::new(
                        Code::KernelNotConvex,
                        Anchor::Kernel(ki),
                        format!(
                            "{} kernel is not convex: a data path leaves it through n{} and \
                             re-enters at n{}",
                            k.family, v, s.0
                        ),
                    ));
                    breached = true;
                    break;
                }
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push(s.index());
                }
            }
        }
        for &n in &k.nodes {
            member[n.index()] = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, NodeId, Shape};
    use nnlqp_sim::fusion::KernelFamily;

    /// conv -> relu -> conv chain.
    fn chain() -> Graph {
        let mut b = GraphBuilder::new("chain", Shape::nchw(1, 8, 8, 8));
        let c1 = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r = b.relu(c1).unwrap();
        b.conv(Some(r), 8, 3, 1, 1, 1).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn real_fusion_is_legal() {
        let g = chain();
        assert!(verify_kernels(&g, &fusion::fuse(&g)).is_empty());
    }

    #[test]
    fn uncovered_node_is_nnl101() {
        let g = chain();
        let mut ks = fusion::fuse(&g);
        let dropped = ks.pop().unwrap();
        let out = verify_partition(&g, &ks);
        assert!(
            out.iter().any(|d| d.code == Code::KernelCoverage),
            "{out:?}"
        );
        ks.push(dropped);
        ks.push(ks[0].clone()); // now double-covered
        let out = verify_partition(&g, &ks);
        assert!(out.iter().any(|d| d.message.contains("covered by 2")));
    }

    #[test]
    fn phantom_member_is_nnl101() {
        let g = chain();
        let ks = vec![Kernel {
            family: KernelFamily::Conv,
            nodes: vec![NodeId(42)],
        }];
        let out = verify_partition(&g, &ks);
        assert!(out.iter().any(|d| d.message.contains("does not exist")));
    }

    #[test]
    fn illegal_grouping_is_cyclic_and_non_convex() {
        // Grouping {conv1, conv2} with relu outside: the relu needs conv1
        // (inside) and feeds conv2 (inside) — a cycle between the two
        // kernels, and a non-convex kernel 0.
        let g = chain();
        let ks = vec![
            Kernel {
                family: KernelFamily::Conv,
                nodes: vec![NodeId(0), NodeId(2)],
            },
            Kernel {
                family: KernelFamily::Relu,
                nodes: vec![NodeId(1)],
            },
        ];
        let out = verify_kernels(&g, &ks);
        assert!(out.iter().any(|d| d.code == Code::KernelCycle), "{out:?}");
        assert!(
            out.iter().any(|d| d.code == Code::KernelNotConvex),
            "{out:?}"
        );
        let nc = out
            .iter()
            .find(|d| d.code == Code::KernelNotConvex)
            .unwrap();
        assert_eq!(nc.anchor, Anchor::Kernel(0));
    }

    #[test]
    fn direct_cycle_in_deps_detected() {
        let deps = vec![vec![1], vec![0], vec![]];
        let out = verify_deps_acyclic(&deps);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.code == Code::KernelCycle));
    }

    #[test]
    fn corpus_fusion_is_legal_everywhere() {
        for f in nnlqp_models::family::CORPUS_FAMILIES {
            let g = f.canonical().unwrap();
            let out = verify_kernels(&g, &fusion::fuse(&g));
            assert!(out.is_empty(), "{f}: {out:?}");
        }
    }
}
