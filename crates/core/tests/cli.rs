//! Integration tests of the `nnlqp` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nnlqp"))
}

#[test]
fn platforms_lists_registry() {
    let out = bin().arg("platforms").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("gpu-T4-trt7.1-fp32"));
    assert!(stdout.contains("cpu-openppl-fp32"));
    assert!(stdout.lines().count() >= 12);
}

#[test]
fn export_then_query_roundtrip() {
    let dir = std::env::temp_dir().join("nnlqp-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("model.json");
    let out = bin()
        .args([
            "export-model",
            "--family",
            "SqueezeNet",
            "--output",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    let out = bin()
        .args([
            "query",
            "--model",
            model.to_str().unwrap(),
            "--platform",
            "gpu-T4-trt7.1-fp32",
            "--reps",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"latency_ms\""), "stdout: {stdout}");
    assert!(stdout.contains("\"cache_hit\": false"));
    std::fs::remove_file(&model).ok();
}

#[test]
fn lint_family_reports_clean() {
    let out = bin()
        .args(["lint", "--family", "ResNet"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0 error(s)"), "stdout: {stdout}");
}

#[test]
fn lint_all_families_json_zero_errors() {
    let out = bin()
        .args(["lint", "--all-families", "--json"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.trim_start().starts_with('['), "stdout: {stdout}");
    // One report per corpus family, each with zero errors.
    assert_eq!(
        stdout.matches("\"errors\":0").count(),
        10,
        "stdout: {stdout}"
    );
}

#[test]
fn lint_nas_sample_extends_corpus() {
    let out = bin()
        .args([
            "lint",
            "--all-families",
            "--json",
            "--nas-sample",
            "3",
            "--seed",
            "7",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    // 10 canonical families + 3 sampled NAS cells, all error-free, each
    // report stamped with the stable schema version.
    assert_eq!(
        stdout.matches("\"errors\":0").count(),
        13,
        "stdout: {stdout}"
    );
    assert_eq!(stdout.matches("\"schema_version\":2").count(), 13);
}

#[test]
fn lint_deny_warnings_is_scriptable() {
    // The clean corpus passes even under --deny-warnings...
    let out = bin()
        .args(["lint", "--family", "ResNet", "--deny-warnings"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // ...and a warning-carrying graph flips exit 0 -> 1 under the flag.
    let dir = std::env::temp_dir().join("nnlqp-cli-denywarn");
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("warn.json");
    // A dead branch is NNL006, warn-severity: conv feeds both a consumed
    // relu chain and an unconsumed sigmoid.
    let mut b = nnlqp_ir::GraphBuilder::new("warny", nnlqp_ir::Shape::nchw(1, 3, 8, 8));
    let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
    b.sigmoid(c).unwrap(); // dead
    let r = b.relu(c).unwrap();
    b.relu(r).unwrap();
    let g = b.finish().unwrap();
    std::fs::write(&model, nnlqp_ir::serialize::to_json(&g)).unwrap();
    let out = bin()
        .args(["lint", "--model", model.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "warnings alone pass by default");
    let out = bin()
        .args([
            "lint",
            "--model",
            model.to_str().unwrap(),
            "--deny-warnings",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "--deny-warnings rejects NNL006");
    std::fs::remove_file(&model).ok();
}

#[test]
fn lint_unreadable_model_exits_three() {
    let out = bin()
        .args(["lint", "--model", "/nonexistent-model.json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn lint_unknown_platform_fails() {
    let out = bin()
        .args(["lint", "--family", "ResNet", "--platform", "abacus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown platform"));
}

#[test]
fn bad_arguments_exit_nonzero() {
    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let out = bin()
        .args(["query", "--model", "/nonexistent.json", "--platform", "x"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn unknown_platform_reports_error() {
    let dir = std::env::temp_dir().join("nnlqp-cli-test2");
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("m.json");
    bin()
        .args([
            "export-model",
            "--family",
            "AlexNet",
            "--output",
            model.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let out = bin()
        .args([
            "query",
            "--model",
            model.to_str().unwrap(),
            "--platform",
            "quantum-accelerator",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown platform"));
    std::fs::remove_file(&model).ok();
}
