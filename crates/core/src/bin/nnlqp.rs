//! `nnlqp` — command-line front end mirroring the paper's §7 interface.
//!
//! ```text
//! nnlqp query   --model model.json --platform gpu-T4-trt7.1-fp32 [--batch 1]
//! nnlqp predict --model model.json --platform gpu-T4-trt7.1-fp32 [--batch 1] \
//!               [--arch sage|transformer] [--train-family ResNet --train-count 40]
//! nnlqp trace   --model model.json --platform gpu-T4-trt7.1-fp32 [--flame]
//! nnlqp platforms
//! nnlqp export-model --family ResNet --output model.json
//! nnlqp lint    --model model.json [--platform NAME] [--json] [--deny-warnings]
//! nnlqp lint    --all-families [--nas-sample N] [--seed S]
//! nnlqp metrics [--platform NAME] [--family FAMILY] [--count N]
//! nnlqp db stats   --path DIR
//! nnlqp db verify  --path DIR
//! nnlqp db compact --path DIR
//! nnlqp tail-report [--input BENCH_serve.json]
//! ```
//!
//! Model files are the JSON graph format of `nnlqp_ir::serialize`.
//!
//! `lint` exit codes are stable and scriptable:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | no rejection-severity findings |
//! | 1    | error-severity findings (or any warning with `--deny-warnings`) |
//! | 2    | usage error (bad flags, unknown platform or family) |
//! | 3    | I/O or parse failure reading a model file |
//!
//! JSON lint reports carry a `schema_version` field
//! (`nnlqp_analyze::REPORT_SCHEMA_VERSION`) so downstream consumers can
//! detect format changes. `--nas-sample N` extends the lint corpus with
//! `N` seeded NAS-Bench-201 cells (the CI gate lints the canonical
//! corpus plus such a sample).
//!
//! `trace` emits a Chrome-trace JSON timeline of one traced query (load
//! it in Perfetto / `chrome://tracing`), or a text timeline with
//! `--flame`. `metrics` runs a small measure-then-hit workload and prints
//! the whole metrics registry in Prometheus text exposition format,
//! self-checked through the bundled parser.
//!
//! `db` administers a durable store directory (the sharded WAL engine):
//! `stats` prints row counts and recovery health as JSON, `verify` walks
//! manifest, segments and WAL tails and exits 0 only for a clean store
//! (1 = damage or corruption, detailed on stderr), `compact` folds the
//! WAL tail into fresh snapshot segments and prints what it folded.
//!
//! `tail-report` renders the open-loop `serve-bench` artifact
//! (`BENCH_serve.json`) as a per-rate p99 budget breakdown: for each
//! swept arrival rate, the latency quantiles and which pipeline stages
//! the p99 tail's time went to, with the knee rate marked.

use nnlqp::{Nnlqp, Platform, QueryParams, TrainPredictorConfig};
use nnlqp_ir::serialize;
use nnlqp_models::ModelFamily;
use nnlqp_obs::{render_flamegraph, to_chrome_json, Recorder};
use nnlqp_sim::PlatformSpec;
use std::collections::HashMap;

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  nnlqp query   --model FILE --platform NAME [--batch N] [--reps R]");
    eprintln!("  nnlqp predict --model FILE --platform NAME [--batch N]");
    eprintln!("                [--arch sage|transformer]");
    eprintln!("                [--train-family FAMILY] [--train-count N] [--epochs E]");
    eprintln!("  nnlqp trace   --model FILE --platform NAME [--batch N] [--reps R]");
    eprintln!("                [--seed S] [--output FILE] [--flame] [--width W]");
    eprintln!("  nnlqp platforms");
    eprintln!("  nnlqp export-model --family FAMILY --output FILE [--seed S]");
    eprintln!("  nnlqp lint    (--model FILE | --family FAMILY | --all-families)");
    eprintln!("                [--platform NAME] [--json] [--deny-warnings]");
    eprintln!("                [--nas-sample N] [--seed S]");
    eprintln!("                exit: 0 clean, 1 findings, 2 usage, 3 unreadable model");
    eprintln!("  nnlqp metrics [--platform NAME] [--family FAMILY] [--count N]");
    eprintln!("                [--batch N] [--reps R] [--seed S] [--output FILE]");
    eprintln!("  nnlqp db (stats | verify | compact) --path DIR");
    eprintln!("                exit (verify): 0 clean, 1 damaged or corrupt");
    eprintln!("  nnlqp tail-report [--input BENCH_serve.json]");
    std::process::exit(2);
}

/// Flags that take no value.
const BOOL_FLAGS: [&str; 4] = ["json", "all-families", "flame", "deny-warnings"];

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&key) {
                out.insert(key.to_string(), "true".to_string());
                continue;
            }
            match it.next() {
                Some(v) => {
                    out.insert(key.to_string(), v.clone());
                }
                None => {
                    eprintln!("error: missing value for --{key}");
                    usage();
                }
            }
        } else {
            eprintln!("error: unexpected argument {a}");
            usage();
        }
    }
    out
}

fn load_model(flags: &HashMap<String, String>) -> nnlqp_ir::Graph {
    let Some(path) = flags.get("model") else {
        eprintln!("error: --model is required");
        usage();
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    serialize::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid model: {e}");
        std::process::exit(1);
    })
}

/// Build a default-farm system honoring `--reps` and `--seed`.
fn build_system(flags: &HashMap<String, String>) -> Nnlqp {
    let mut b = Nnlqp::builder();
    if let Some(r) = flags.get("reps") {
        b = b.reps(r.parse().expect("--reps must be a number"));
    }
    if let Some(s) = flags.get("seed") {
        b = b.seed(s.parse().expect("--seed must be a number"));
    }
    b.build()
}

/// Resolve `--platform` against the system's farm (canonical names, paper
/// aliases and unique case-insensitive abbreviations all work).
fn resolve_platform(system: &Nnlqp, flags: &HashMap<String, String>) -> Platform {
    let Some(name) = flags.get("platform") else {
        eprintln!("error: --platform is required");
        usage();
    };
    Platform::parse(system.farm(), name).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// `nnlqp db <action> --path DIR` — administer a durable store.
fn db_command(action: &str, flags: &HashMap<String, String>) -> ! {
    let Some(path) = flags.get("path") else {
        eprintln!("error: --path is required");
        usage();
    };
    let root = std::path::Path::new(path);
    match action {
        "stats" => {
            let (db, rec) = nnlqp_db::open_read_only(root).unwrap_or_else(|e| {
                eprintln!("error: cannot open store at {path}: {e}");
                std::process::exit(1);
            });
            let s = db.stats();
            println!(
                "{{\"models\": {}, \"platforms\": {}, \"latencies\": {}, \
                 \"total_bytes\": {}, \"seg_frames\": {}, \"wal_frames_replayed\": {}, \
                 \"wal_truncated_bytes\": {}, \"wal_frames_discarded\": {}, \"clean\": {}}}",
                s.models,
                s.platforms,
                s.latencies,
                s.total_bytes,
                rec.seg_frames,
                rec.wal_frames_replayed,
                rec.wal_truncated_bytes,
                rec.wal_frames_discarded,
                rec.clean()
            );
            std::process::exit(0);
        }
        "verify" => {
            let report = nnlqp_db::verify_store(root).unwrap_or_else(|e| {
                eprintln!("error: cannot verify store at {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "{} shards, {} segment frames, {} WAL frames, \
                 {} rows ({} models, {} platforms, {} latencies)",
                report.n_shards,
                report.seg_frames,
                report.wal_frames,
                report.models + report.platforms + report.latencies,
                report.models,
                report.platforms,
                report.latencies
            );
            if report.wal_truncated_bytes > 0 {
                eprintln!(
                    "damage: {} torn WAL tail bytes would be truncated on open",
                    report.wal_truncated_bytes
                );
            }
            if report.wal_frames_discarded > 0 {
                eprintln!(
                    "damage: {} intact frames dropped by the global-sequence gap rule",
                    report.wal_frames_discarded
                );
            }
            for e in &report.errors {
                eprintln!("corrupt: {e}");
            }
            if report.clean() {
                eprintln!("store is clean");
                std::process::exit(0);
            }
            std::process::exit(1);
        }
        "compact" => {
            let db = nnlqp_db::Database::open_durable(nnlqp_db::DurableOptions::new(root))
                .unwrap_or_else(|e| {
                    eprintln!("error: cannot open store at {path}: {e}");
                    std::process::exit(1);
                });
            let stats = db.compact().unwrap_or_else(|e| {
                eprintln!("error: compaction failed: {e}");
                std::process::exit(1);
            });
            println!(
                "{{\"frames\": {}, \"wal_bytes_folded\": {}, \"files_removed\": {}}}",
                stats.frames, stats.wal_bytes_folded, stats.files_removed
            );
            std::process::exit(0);
        }
        _ => {
            eprintln!("error: unknown db action {action}");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    if cmd == "db" {
        let Some(action) = args.get(1) else { usage() };
        db_command(action, &parse_flags(&args[2..]));
    }
    let flags = parse_flags(&args[1..]);
    let batch: u32 = flags
        .get("batch")
        .map(|s| s.parse().expect("--batch must be a number"))
        .unwrap_or(1);

    match cmd.as_str() {
        "platforms" => {
            for p in PlatformSpec::registry() {
                println!("{}", p.name);
            }
        }
        "export-model" => {
            let family = flags
                .get("family")
                .and_then(|f| ModelFamily::parse(f))
                .unwrap_or_else(|| {
                    eprintln!("error: --family must name a model family");
                    usage();
                });
            let Some(output) = flags.get("output") else {
                eprintln!("error: --output is required");
                usage();
            };
            let graph = match flags.get("seed") {
                Some(s) => {
                    let seed: u64 = s.parse().expect("--seed must be a number");
                    let mut r = nnlqp_ir::Rng64::new(seed);
                    family
                        .sample(&format!("{}-{seed}", family.name().to_lowercase()), &mut r)
                        .expect("generator is valid")
                }
                None => family.canonical().expect("generator is valid"),
            };
            std::fs::write(output, serialize::to_json(&graph)).unwrap_or_else(|e| {
                eprintln!("error: cannot write {output}: {e}");
                std::process::exit(1);
            });
            println!("wrote {} ({} nodes) to {output}", graph.name, graph.len());
        }
        "lint" => {
            let platform = flags
                .get("platform")
                .map(String::as_str)
                .unwrap_or("gpu-T4-trt7.1-fp32");
            let Some(spec) = PlatformSpec::by_name(platform) else {
                eprintln!("error: unknown platform: {platform}");
                std::process::exit(2);
            };
            // Assemble the lint targets.
            let mut graphs: Vec<nnlqp_ir::Graph> = Vec::new();
            if flags.contains_key("all-families") {
                for f in nnlqp_models::family::CORPUS_FAMILIES {
                    graphs.push(f.canonical().expect("built-in generator is valid"));
                }
            } else if let Some(f) = flags.get("family") {
                let family = ModelFamily::parse(f).unwrap_or_else(|| {
                    eprintln!("error: --family must name a model family");
                    usage();
                });
                graphs.push(family.canonical().expect("built-in generator is valid"));
            } else if let Some(path) = flags.get("model") {
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("error: cannot read {path}: {e}");
                    std::process::exit(3);
                });
                // Unchecked load: the linter diagnoses malformed graphs
                // instead of refusing to open them.
                let g = serialize::from_json_unchecked(&text).unwrap_or_else(|e| {
                    eprintln!("error: {path} is not a model file: {e}");
                    std::process::exit(3);
                });
                graphs.push(g);
            } else {
                eprintln!("error: one of --model, --family, --all-families is required");
                usage();
            }
            // Widen the corpus with seeded NAS-Bench cells: the same
            // sampled graphs the search/CI tooling sees.
            if let Some(n) = flags.get("nas-sample") {
                let n: usize = n.parse().unwrap_or_else(|_| {
                    eprintln!("error: --nas-sample must be a number");
                    usage();
                });
                let seed: u64 = flags
                    .get("seed")
                    .map(|s| s.parse().expect("--seed must be a number"))
                    .unwrap_or(1);
                for m in nnlqp_models::generate_family(ModelFamily::NasBench201, n, seed) {
                    graphs.push(m.graph);
                }
            }

            let analyzer = nnlqp_analyze::Analyzer::full();
            let mut any_errors = false;
            let mut any_warnings = false;
            let mut json_reports = Vec::new();
            for g in &graphs {
                let report = analyzer.analyze(g, Some(&spec));
                any_errors |= report.has_errors();
                any_warnings |= report.count(nnlqp_analyze::Severity::Warn) > 0;
                if flags.contains_key("json") {
                    json_reports.push(report.render_json());
                } else {
                    print!("{}", report.render_text());
                }
            }
            if flags.contains_key("json") {
                println!("[{}]", json_reports.join(","));
            }
            let reject = any_errors || (flags.contains_key("deny-warnings") && any_warnings);
            std::process::exit(i32::from(reject));
        }
        "query" => {
            let model = load_model(&flags);
            let system = build_system(&flags);
            let platform = resolve_platform(&system, &flags);
            let result = system
                .query(&QueryParams::new(model, batch, platform))
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            println!(
                "{{\"latency_ms\": {:.6}, \"cache_hit\": {}, \"cost_s\": {:.3}}}",
                result.latency_ms, result.cache_hit, result.cost_s
            );
        }
        "trace" => {
            let model = load_model(&flags);
            let system = build_system(&flags);
            let platform = resolve_platform(&system, &flags);
            let rec = Recorder::new();
            let result = system
                .query_traced(&QueryParams::new(model, batch, platform), &rec)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            let timeline = rec.timeline();
            eprintln!(
                "traced query: latency {:.4} ms, cost {:.2} s, {} spans",
                result.latency_ms,
                result.cost_s,
                timeline.spans.len()
            );
            let rendered = if flags.contains_key("flame") {
                let width: usize = flags
                    .get("width")
                    .map(|s| s.parse().expect("--width must be a number"))
                    .unwrap_or(100);
                render_flamegraph(&timeline, width)
            } else {
                to_chrome_json(&timeline)
            };
            match flags.get("output") {
                Some(path) => {
                    std::fs::write(path, &rendered).unwrap_or_else(|e| {
                        eprintln!("error: cannot write {path}: {e}");
                        std::process::exit(1);
                    });
                    eprintln!("wrote {path}");
                }
                None => println!("{rendered}"),
            }
        }
        "metrics" => {
            let system = build_system(&flags);
            let name = flags
                .get("platform")
                .cloned()
                .unwrap_or_else(|| "gpu-T4-trt7.1-fp32".to_string());
            let platform = Platform::parse(system.farm(), &name).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
            let family = flags
                .get("family")
                .map(|f| {
                    ModelFamily::parse(f).unwrap_or_else(|| {
                        eprintln!("error: --family must name a model family");
                        usage();
                    })
                })
                .unwrap_or(ModelFamily::SqueezeNet);
            let count: usize = flags
                .get("count")
                .map(|s| s.parse().expect("--count must be a number"))
                .unwrap_or(4);
            // A small deterministic workload so every family has data:
            // measure `count` variants, then re-query them (cache hits).
            let variants: Vec<_> = nnlqp_models::generate_family(family, count, 1)
                .into_iter()
                .map(|m| m.graph)
                .collect();
            system
                .warm_cache(&variants, &platform, batch)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            for g in &variants {
                system
                    .query(&QueryParams::new(g.clone(), batch, platform.clone()))
                    .unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    });
            }
            let text = nnlqp::to_prometheus(&system.registry().snapshot());
            // Self-check: the exposition must round-trip through the
            // bundled parser before anyone scrapes it.
            let samples = nnlqp_obs::parse_prometheus(&text).unwrap_or_else(|e| {
                eprintln!("error: exposition failed self-check: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "{} samples across the registry (self-check passed)",
                samples.len()
            );
            match flags.get("output") {
                Some(path) => {
                    std::fs::write(path, &text).unwrap_or_else(|e| {
                        eprintln!("error: cannot write {path}: {e}");
                        std::process::exit(1);
                    });
                    eprintln!("wrote {path}");
                }
                None => print!("{text}"),
            }
        }
        "predict" => {
            let model = load_model(&flags);
            // Bootstrap a predictor from freshly measured variants of a
            // chosen family (standing in for a persistent production DB).
            let family = flags
                .get("train-family")
                .and_then(|f| ModelFamily::parse(f))
                .unwrap_or(ModelFamily::ResNet);
            let count: usize = flags
                .get("train-count")
                .map(|s| s.parse().expect("--train-count must be a number"))
                .unwrap_or(40);
            let epochs: usize = flags
                .get("epochs")
                .map(|s| s.parse().expect("--epochs must be a number"))
                .unwrap_or(30);
            let arch: nnlqp::PredictorKind = flags
                .get("arch")
                .map(|s| {
                    s.parse().unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        usage();
                    })
                })
                .unwrap_or_default();
            let system = Nnlqp::builder().reps(10).predictor(arch).build();
            let platform = resolve_platform(&system, &flags);
            eprintln!("bootstrapping the database with {count} {family} variants...");
            let variants: Vec<_> = nnlqp_models::generate_family(family, count, 1)
                .into_iter()
                .map(|m| m.graph)
                .collect();
            system
                .warm_cache(&variants, &platform, batch)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            eprintln!("training the {arch} predictor...");
            system
                .train_predictor(
                    &[platform.name()],
                    TrainPredictorConfig {
                        epochs,
                        ..Default::default()
                    },
                )
                .expect("training data just inserted");
            let result = system
                .predict(&QueryParams::new(model, batch, platform))
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            println!(
                "{{\"latency_ms\": {:.6}, \"cost_s\": {:.3}, \"arch\": \"{arch}\"}}",
                result.latency_ms, result.cost_s
            );
        }
        "tail-report" => tail_report(&flags),
        _ => usage(),
    }
}

/// `nnlqp tail-report --input BENCH_serve.json` — render the open-loop
/// serve-bench artifact as a per-rate p99 budget breakdown.
fn tail_report(flags: &HashMap<String, String>) -> ! {
    let default_input = "BENCH_serve.json".to_string();
    let path = flags.get("input").unwrap_or(&default_input);
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc: serde_json::Value = text.parse().unwrap_or_else(|e| {
        eprintln!("error: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    if doc["schema_version"].as_u64() != Some(1) {
        eprintln!("error: {path}: unsupported schema_version (want 1)");
        std::process::exit(1);
    }
    let cfg = &doc["config"];
    let knee = doc["knee_rps"].as_f64();
    println!(
        "open-loop tail report: platform {}, family {}, {} clients x {} workers",
        cfg["platform"].as_str().unwrap_or("?"),
        cfg["family"].as_str().unwrap_or("?"),
        cfg["clients"].as_u64().unwrap_or(0),
        cfg["workers"].as_u64().unwrap_or(0),
    );
    match knee {
        Some(k) => println!("knee: p99 blows up at {k} rps"),
        None => println!("knee: none within the swept rates"),
    }
    let Some(rates) = doc["rates"].as_array() else {
        eprintln!("error: {path}: missing rates array");
        std::process::exit(1);
    };
    for rate in rates {
        let offered = rate["offered_rps"].as_f64().unwrap_or(0.0);
        let lat = &rate["latency_ms"];
        let marker = match knee {
            Some(k) if offered >= k => "  <- knee",
            _ => "",
        };
        println!(
            "\nrate {offered} rps (achieved {:.1}, {}/{} ok): \
             p50 {:.3} ms  p99 {:.3} ms  p999 {:.3} ms{marker}",
            rate["achieved_rps"].as_f64().unwrap_or(0.0),
            rate["completed"].as_u64().unwrap_or(0),
            rate["scheduled"].as_u64().unwrap_or(0),
            lat["p50"].as_f64().unwrap_or(0.0),
            lat["p99"].as_f64().unwrap_or(0.0),
            lat["p999"].as_f64().unwrap_or(0.0),
        );
        let Some(shares) = rate["tail_attribution_p99"].as_array() else {
            continue;
        };
        println!(
            "  {:<14} {:>7} {:>10} {:>10}",
            "stage", "share", "mean ms", "total ms"
        );
        for s in shares {
            println!(
                "  {:<14} {:>6.1}% {:>10.3} {:>10.3}",
                s["stage"].as_str().unwrap_or("?"),
                s["share_pct"].as_f64().unwrap_or(0.0),
                s["mean_ms"].as_f64().unwrap_or(0.0),
                s["total_ms"].as_f64().unwrap_or(0.0),
            );
        }
    }
    std::process::exit(0);
}
