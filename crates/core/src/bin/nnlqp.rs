//! `nnlqp` — command-line front end mirroring the paper's §7 interface.
//!
//! ```text
//! nnlqp query   --model model.json --platform gpu-T4-trt7.1-fp32 [--batch 1]
//! nnlqp predict --model model.json --platform gpu-T4-trt7.1-fp32 [--batch 1] \
//!               [--train-family ResNet --train-count 40]
//! nnlqp platforms
//! nnlqp export-model --family ResNet --output model.json
//! ```
//!
//! Model files are the JSON graph format of `nnlqp_ir::serialize`.

use nnlqp::{Nnlqp, QueryParams, TrainPredictorConfig};
use nnlqp_ir::serialize;
use nnlqp_models::ModelFamily;
use nnlqp_sim::PlatformSpec;
use std::collections::HashMap;

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  nnlqp query   --model FILE --platform NAME [--batch N] [--reps R]");
    eprintln!("  nnlqp predict --model FILE --platform NAME [--batch N]");
    eprintln!("                [--train-family FAMILY] [--train-count N] [--epochs E]");
    eprintln!("  nnlqp platforms");
    eprintln!("  nnlqp export-model --family FAMILY --output FILE [--seed S]");
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            match it.next() {
                Some(v) => {
                    out.insert(key.to_string(), v.clone());
                }
                None => {
                    eprintln!("error: missing value for --{key}");
                    usage();
                }
            }
        } else {
            eprintln!("error: unexpected argument {a}");
            usage();
        }
    }
    out
}

fn load_model(flags: &HashMap<String, String>) -> nnlqp_ir::Graph {
    let Some(path) = flags.get("model") else {
        eprintln!("error: --model is required");
        usage();
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    serialize::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a valid model: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = parse_flags(&args[1..]);
    let batch: u32 = flags
        .get("batch")
        .map(|s| s.parse().expect("--batch must be a number"))
        .unwrap_or(1);

    match cmd.as_str() {
        "platforms" => {
            for p in PlatformSpec::registry() {
                println!("{}", p.name);
            }
        }
        "export-model" => {
            let family = flags
                .get("family")
                .and_then(|f| ModelFamily::parse(f))
                .unwrap_or_else(|| {
                    eprintln!("error: --family must name a model family");
                    usage();
                });
            let Some(output) = flags.get("output") else {
                eprintln!("error: --output is required");
                usage();
            };
            let graph = match flags.get("seed") {
                Some(s) => {
                    let seed: u64 = s.parse().expect("--seed must be a number");
                    let mut r = nnlqp_ir::Rng64::new(seed);
                    family
                        .sample(&format!("{}-{seed}", family.name().to_lowercase()), &mut r)
                        .expect("generator is valid")
                }
                None => family.canonical().expect("generator is valid"),
            };
            std::fs::write(output, serialize::to_json(&graph)).unwrap_or_else(|e| {
                eprintln!("error: cannot write {output}: {e}");
                std::process::exit(1);
            });
            println!(
                "wrote {} ({} nodes) to {output}",
                graph.name,
                graph.len()
            );
        }
        "query" => {
            let model = load_model(&flags);
            let Some(platform) = flags.get("platform") else {
                eprintln!("error: --platform is required");
                usage();
            };
            let mut system = Nnlqp::with_default_farm();
            if let Some(r) = flags.get("reps") {
                system.reps = r.parse().expect("--reps must be a number");
            }
            let result = system
                .query(&QueryParams {
                    model,
                    batch_size: batch,
                    platform_name: platform.clone(),
                })
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            println!(
                "{{\"latency_ms\": {:.6}, \"cache_hit\": {}, \"cost_s\": {:.3}}}",
                result.latency_ms, result.cache_hit, result.cost_s
            );
        }
        "predict" => {
            let model = load_model(&flags);
            let Some(platform) = flags.get("platform") else {
                eprintln!("error: --platform is required");
                usage();
            };
            // Bootstrap a predictor from freshly measured variants of a
            // chosen family (standing in for a persistent production DB).
            let family = flags
                .get("train-family")
                .and_then(|f| ModelFamily::parse(f))
                .unwrap_or(ModelFamily::ResNet);
            let count: usize = flags
                .get("train-count")
                .map(|s| s.parse().expect("--train-count must be a number"))
                .unwrap_or(40);
            let epochs: usize = flags
                .get("epochs")
                .map(|s| s.parse().expect("--epochs must be a number"))
                .unwrap_or(30);
            let mut system = Nnlqp::with_default_farm();
            system.reps = 10;
            eprintln!("bootstrapping the database with {count} {family} variants...");
            let variants: Vec<_> = nnlqp_models::generate_family(family, count, 1)
                .into_iter()
                .map(|m| m.graph)
                .collect();
            system
                .warm_cache(&variants, platform, batch)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            eprintln!("training the predictor...");
            system
                .train_predictor(
                    &[platform.as_str()],
                    TrainPredictorConfig {
                        epochs,
                        ..Default::default()
                    },
                )
                .expect("training data just inserted");
            let result = system
                .predict(&QueryParams {
                    model,
                    batch_size: batch,
                    platform_name: platform.clone(),
                })
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            println!(
                "{{\"latency_ms\": {:.6}, \"cost_s\": {:.3}}}",
                result.latency_ms, result.cost_s
            );
        }
        _ => usage(),
    }
}
