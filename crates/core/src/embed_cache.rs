//! Sharded LRU cache of graph embeddings for the NNLP fast path.
//!
//! The expensive half of a prediction — feature extraction plus the full
//! GraphSAGE backbone — depends only on the effective graph, never on the
//! platform head. Serve's degrade mode, NAS-style sweeps and multi-
//! platform queries all re-predict the same graph, so the pooled
//! embedding is cached here keyed by `(graph_hash, batch, predictor
//! stamp, architecture)` and repeat predictions pay only the cheap MLP
//! head.
//!
//! The predictor stamp is part of the key: `train_predictor` /
//! `set_predictor` hot-swaps draw a fresh one, so an embedding computed
//! by a previous model can never be served — stale entries simply stop
//! being addressable and age out of the LRU. The architecture identity
//! (`Predictor::identity`) is part of the key too: an A/B swap between
//! architectures (GraphSAGE ↔ transformer) can never resolve a stale
//! cross-architecture embedding, even if stamps were ever to collide.
//!
//! Structure mirrors serve's hot cache: an intrusive LRU list over a slab
//! per shard, O(1) promote/evict, per-shard mutexes to keep contention
//! local.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Identity of a cached embedding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EmbedKey {
    /// `nnlqp_hash::graph_hash` of the effective (rebatched) graph.
    pub graph_hash: u64,
    /// Batch size the graph was rebatched to (part of the hash already,
    /// but kept explicit so keys are self-describing in debug output).
    pub batch: u32,
    /// Predictor generation stamp that produced the embedding.
    pub version: u64,
    /// Architecture identity (`Predictor::identity`) of the producing
    /// predictor — embeddings are never interchangeable across
    /// architectures.
    pub arch: u64,
}

/// A cached embedding: the pooled graph vector (static features appended),
/// shared rather than copied between the cache and in-flight predictions.
pub type SharedEmbedding = Arc<Vec<f32>>;

const NIL: usize = usize::MAX;

struct Entry {
    key: EmbedKey,
    value: SharedEmbedding,
    prev: usize,
    next: usize,
}

struct Shard {
    map: HashMap<EmbedKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &EmbedKey) -> Option<SharedEmbedding> {
        let &i = self.map.get(key)?;
        self.detach(i);
        self.push_front(i);
        Some(Arc::clone(&self.slab[i].value))
    }

    fn insert(&mut self, key: EmbedKey, value: SharedEmbedding) {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            self.detach(i);
            self.push_front(i);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.detach(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.push_front(slot);
        self.map.insert(key, slot);
    }
}

/// Thread-safe sharded LRU of `EmbedKey → SharedEmbedding`. A capacity of
/// zero disables the cache entirely (every `get` misses, `insert` is a
/// no-op) — the knob the benchmark baseline uses.
pub struct EmbedCache {
    shards: Vec<Mutex<Shard>>,
}

impl EmbedCache {
    /// `capacity` total entries spread over `shards` independent LRUs
    /// (shard count is rounded up to a power of two). `capacity == 0`
    /// disables caching.
    pub fn new(capacity: usize, shards: usize) -> Self {
        if capacity == 0 {
            return EmbedCache { shards: Vec::new() };
        }
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(shards).max(1);
        EmbedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
        }
    }

    /// Whether caching is disabled (capacity 0).
    pub fn is_disabled(&self) -> bool {
        self.shards.is_empty()
    }

    fn shard_of(&self, key: &EmbedKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    /// Look up and promote to most-recently-used.
    pub fn get(&self, key: &EmbedKey) -> Option<SharedEmbedding> {
        if self.shards.is_empty() {
            return None;
        }
        self.shard_of(key).lock().get(key)
    }

    /// Insert or refresh; evicts the shard's LRU entry when full.
    pub fn insert(&self, key: EmbedKey, value: SharedEmbedding) {
        if self.shards.is_empty() {
            return;
        }
        self.shard_of(&key).lock().insert(key, value);
    }

    /// Entries currently cached (sums shard sizes; racy under writes).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(hash: u64, version: u64) -> EmbedKey {
        EmbedKey {
            graph_hash: hash,
            batch: 1,
            version,
            arch: 1,
        }
    }

    fn emb(v: f32) -> SharedEmbedding {
        Arc::new(vec![v; 4])
    }

    #[test]
    fn get_promotes_and_insert_evicts_lru() {
        let cache = EmbedCache::new(2, 1);
        cache.insert(key(1, 0), emb(1.0));
        cache.insert(key(2, 0), emb(2.0));
        assert_eq!(cache.get(&key(1, 0)).unwrap()[0], 1.0); // 1 is now MRU
        cache.insert(key(3, 0), emb(3.0)); // evicts 2, the LRU
        assert!(cache.get(&key(2, 0)).is_none());
        assert_eq!(cache.get(&key(1, 0)).unwrap()[0], 1.0);
        assert_eq!(cache.get(&key(3, 0)).unwrap()[0], 3.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn version_is_part_of_the_key() {
        let cache = EmbedCache::new(8, 2);
        cache.insert(key(7, 0), emb(1.0));
        assert!(cache.get(&key(7, 1)).is_none(), "new version must miss");
        assert!(cache.get(&key(7, 0)).is_some());
    }

    #[test]
    fn architecture_is_part_of_the_key() {
        // Regression: an A/B hot-swap between architectures must never
        // serve a stale cross-architecture embedding, even when the
        // graph, batch and stamp all coincide.
        let cache = EmbedCache::new(8, 2);
        let sage = EmbedKey {
            graph_hash: 7,
            batch: 1,
            version: 3,
            arch: 1,
        };
        let transformer = EmbedKey {
            arch: 2,
            ..sage.clone()
        };
        cache.insert(sage.clone(), emb(1.0));
        assert!(
            cache.get(&transformer).is_none(),
            "other architecture must miss"
        );
        cache.insert(transformer.clone(), emb(2.0));
        assert_eq!(cache.get(&sage).unwrap()[0], 1.0);
        assert_eq!(cache.get(&transformer).unwrap()[0], 2.0);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = EmbedCache::new(0, 8);
        assert!(cache.is_disabled());
        cache.insert(key(1, 0), emb(1.0));
        assert!(cache.get(&key(1, 0)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn shards_stay_consistent_under_concurrency() {
        // Capacity 2048 over 8 shards = 256 per shard: even a worst-case
        // skew of the 200 distinct keys cannot overflow one shard.
        let cache = Arc::new(EmbedCache::new(2048, 8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let k = key(t * 1000 + i % 50, 0);
                        cache.insert(k.clone(), emb(i as f32));
                        let _ = cache.get(&k);
                    }
                });
            }
        });
        // 4 threads x 50 distinct hashes: nothing evicted.
        assert_eq!(cache.len(), 200);
        for t in 0..4u64 {
            for i in 0..50u64 {
                assert!(cache.get(&key(t * 1000 + i, 0)).is_some());
            }
        }
    }
}
