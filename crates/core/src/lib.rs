//! # nnlqp
//!
//! The unified NNLQP facade (paper §7): one object that owns the evolving
//! database, the device farm and the latency predictor, exposing the two
//! calls of the paper's Python interface:
//!
//! ```text
//! true_latency = NNLQP.query(**params)
//! pred_latency = NNLQP.predict(**params)
//! ```
//!
//! ```
//! use nnlqp::{Nnlqp, QueryParams};
//! use nnlqp_models::ModelFamily;
//!
//! let system = Nnlqp::builder().build();
//! let params = QueryParams::by_name(
//!     ModelFamily::SqueezeNet.canonical().unwrap(),
//!     1,
//!     "gpu-T4-trt7.1-fp32",
//! )
//! .unwrap();
//! let first = system.query(&params).unwrap();   // measured on the farm
//! let second = system.query(&params).unwrap();  // served from the cache
//! assert!(!first.cache_hit && second.cache_hit);
//! assert!(second.cost_s < first.cost_s);
//! ```

pub mod embed_cache;
pub mod interface;
pub mod predictor;

pub use embed_cache::{EmbedCache, EmbedKey, SharedEmbedding};
pub use interface::{
    metric_names, CountersSnapshot, MeasureTicks, Nnlqp, NnlqpBuilder, QueryError, QueryParams,
    QueryResult,
};
pub use nnlqp_obs::{
    to_prometheus, DriftAlert, EventLog, MonitorConfig, QualityMonitor, QualityReport,
};
pub use nnlqp_predict::{
    predictor_from_json, quantize_predictor, Predictor, PredictorKind, QuantizedPredictor,
    QUANT_IDENTITY_OFFSET,
};
pub use nnlqp_sim::Platform;
pub use predictor::{
    BatchPredictResult, PredictResult, PredictTicks, PredictorHandle, TrainPredictorConfig,
    CACHED_PREDICT_COST_S, PREDICT_COST_S,
};
