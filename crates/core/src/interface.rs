//! `NNLQP.query` — the cached latency-query path (§5.2).

use nnlqp_db::{Database, PlatformId};
use nnlqp_hash::graph_hash;
use nnlqp_ir::{cost, Graph, Rng64};
use nnlqp_sim::{DeviceFarm, FarmError, PlatformSpec, QueryJob};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Parameters of a query or prediction — the paper's
/// `{model_path, batch_size, platform_name}` with the model passed as a
/// graph (use `nnlqp_ir::serialize::from_json` to load one from disk).
#[derive(Debug, Clone)]
pub struct QueryParams {
    /// The model.
    pub model: Graph,
    /// Batch size to run at.
    pub batch_size: u32,
    /// Target platform name (canonical or paper alias).
    pub platform_name: String,
}

/// Outcome of `query`.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Ground-truth latency in milliseconds.
    pub latency_ms: f64,
    /// True when the database served the request without touching
    /// hardware.
    pub cache_hit: bool,
    /// Wall-clock cost of answering, in (simulated) seconds.
    pub cost_s: f64,
}

/// Query errors.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The platform is not registered.
    UnknownPlatform(String),
    /// Rebatching the model failed (invalid batch).
    BadBatch(String),
    /// Strict mode: the analyzer found errors, so the graph was rejected
    /// before touching the farm (the payload is the rendered report).
    Lint(String),
    /// The farm could not serve the measurement (busy past the caller's
    /// deadline, or shutting down).
    Farm(FarmError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownPlatform(p) => write!(f, "unknown platform: {p}"),
            QueryError::BadBatch(d) => write!(f, "bad batch size: {d}"),
            QueryError::Lint(r) => write!(f, "model rejected by static analysis:\n{r}"),
            QueryError::Farm(e) => write!(f, "farm error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<FarmError> for QueryError {
    fn from(e: FarmError) -> Self {
        match e {
            FarmError::UnknownPlatform(p) => QueryError::UnknownPlatform(p),
            other => QueryError::Farm(other),
        }
    }
}

/// Monotonic counters over the facade's query traffic, exposed for the
/// serving layer (`nnlqp-serve`) and for tests that need to prove how
/// often hardware actually ran.
#[derive(Debug, Default)]
pub struct QueryCounters {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    measurements: AtomicU64,
}

/// A point-in-time copy of [`QueryCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountersSnapshot {
    /// `query` calls answered (hit or miss).
    pub queries: u64,
    /// Queries served straight from the database.
    pub cache_hits: u64,
    /// Farm measurements performed (query misses + direct
    /// [`Nnlqp::query_measured`] calls).
    pub measurements: u64,
}

impl QueryCounters {
    fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            measurements: self.measurements.load(Ordering::Relaxed),
        }
    }
}

/// Simulated round-trip cost of a cache-hit query: graph hashing on the
/// CPU plus the remote database access (§8.2 measures ~1.9 s per hit).
pub const CACHE_HIT_COST_S: f64 = 1.75;

/// The NNLQP system object.
pub struct Nnlqp {
    /// The evolving database.
    pub db: Database,
    farm: DeviceFarm,
    /// Measurement repetitions per query (paper: 50).
    pub reps: usize,
    /// When set, every query first runs the `nnlqp-analyze` pipeline over
    /// the effective graph and refuses to measure (or cache) anything the
    /// analyzer flags with an error — keeping poisoned ground truth out of
    /// the evolving database.
    pub strict: bool,
    /// Base seed folded into every measurement's per-key seed: a
    /// measurement is a deterministic function of (graph hash, platform,
    /// batch, base seed), independent of arrival order — so concurrent
    /// serving layers stay reproducible.
    base_seed: u64,
    seed: Mutex<Rng64>,
    counters: QueryCounters,
    pub(crate) predictor: parking_lot::RwLock<Option<crate::predictor::PredictorHandle>>,
}

/// Default base seed (`b"NNLQP!"` as a integer tag).
const DEFAULT_SEED: u64 = 0x4e4e_4c51_5021;

/// Fold the query key into a measurement seed (FNV-1a over the platform
/// name, mixed with the graph hash, batch and base seed).
fn measurement_seed(base: u64, graph_hash: u64, platform: &str, batch: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for b in platform.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
    }
    h ^ base ^ graph_hash.rotate_left(17) ^ u64::from(batch).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl Nnlqp {
    /// System over a given farm.
    pub fn new(farm: DeviceFarm) -> Self {
        Nnlqp {
            db: Database::new(),
            farm,
            reps: nnlqp_sim::DEFAULT_REPS,
            strict: false,
            base_seed: DEFAULT_SEED,
            seed: Mutex::new(Rng64::new(DEFAULT_SEED)),
            counters: QueryCounters::default(),
            predictor: parking_lot::RwLock::new(None),
        }
    }

    /// System over the full platform registry, one device each.
    pub fn with_default_farm() -> Self {
        Self::new(DeviceFarm::full_registry())
    }

    /// Builder-style toggle for strict (analyze-before-measure) mode.
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Reseed the measurement/jitter stream (distinct deployments of the
    /// system observe distinct noise).
    pub fn set_seed(&mut self, seed: u64) {
        self.base_seed = seed;
        *self.seed.lock() = Rng64::new(seed);
    }

    /// Traffic counters (queries, cache hits, farm measurements).
    pub fn counters(&self) -> CountersSnapshot {
        self.counters.snapshot()
    }

    /// The farm's lifetime measurement count — the hardware-side view of
    /// [`CountersSnapshot::measurements`].
    pub fn farm_measurements(&self) -> u64 {
        self.farm.measurements_performed()
    }

    fn canonical_platform(&self, name: &str) -> Result<PlatformSpec, QueryError> {
        PlatformSpec::by_name(name).ok_or_else(|| QueryError::UnknownPlatform(name.to_string()))
    }

    /// Resolve the effective graph at the requested batch size.
    fn effective_graph(&self, params: &QueryParams) -> Result<Graph, QueryError> {
        if params.model.input_shape.batch() == params.batch_size as usize {
            Ok(params.model.clone())
        } else {
            params
                .model
                .rebatch(params.batch_size as usize)
                .map_err(|e| QueryError::BadBatch(e.to_string()))
        }
    }

    /// The paper's `NNLQP.query`: return the true latency, from cache if
    /// the graph hash + platform + batch is already stored, otherwise by
    /// measuring on the farm and recording the result.
    pub fn query(&self, params: &QueryParams) -> Result<QueryResult, QueryError> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let spec = self.canonical_platform(&params.platform_name)?;
        let graph = self.effective_graph(params)?;
        if self.strict {
            let report = nnlqp_analyze::analyze(&graph, Some(&spec));
            if report.has_errors() {
                return Err(QueryError::Lint(report.render_text()));
            }
        }
        let hash = graph_hash(&graph);
        let platform_id =
            self.db
                .get_or_create_platform(&spec.hardware, &spec.software, spec.dtype.name());

        if let Some(hit) = self.db.lookup_latency(hash, platform_id, params.batch_size) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            let jitter = {
                let mut s = self.seed.lock();
                s.uniform()
            };
            return Ok(QueryResult {
                latency_ms: hit.cost_ms,
                cache_hit: true,
                cost_s: CACHE_HIT_COST_S * (0.9 + 0.2 * jitter),
            });
        }

        // Miss: deploy + measure on the farm, then record. The graph moves
        // into an `Arc` shared with the farm job — no per-miss deep copy.
        self.measure_and_record(
            &Arc::new(graph),
            &spec,
            platform_id,
            hash,
            params.batch_size,
            None,
        )
    }

    /// The miss path as a standalone entry point: measure `graph` on the
    /// farm and record the result, skipping the cache lookup (the caller —
    /// typically `nnlqp-serve` — has already established the miss).
    ///
    /// `graph` must already be at the effective batch size. `farm_wait`
    /// bounds device acquisition: `None` blocks until a device frees up,
    /// `Some(d)` gives up with [`QueryError::Farm`]`(`[`FarmError::Busy`]`)`
    /// after `d`.
    pub fn query_measured(
        &self,
        graph: &Arc<Graph>,
        platform_name: &str,
        batch_size: u32,
        farm_wait: Option<Duration>,
    ) -> Result<QueryResult, QueryError> {
        let spec = self.canonical_platform(platform_name)?;
        if self.strict {
            let report = nnlqp_analyze::analyze(graph, Some(&spec));
            if report.has_errors() {
                return Err(QueryError::Lint(report.render_text()));
            }
        }
        let hash = graph_hash(graph);
        let platform_id =
            self.db
                .get_or_create_platform(&spec.hardware, &spec.software, spec.dtype.name());
        self.measure_and_record(graph, &spec, platform_id, hash, batch_size, farm_wait)
    }

    fn measure_and_record(
        &self,
        graph: &Arc<Graph>,
        spec: &PlatformSpec,
        platform_id: PlatformId,
        hash: u64,
        batch_size: u32,
        farm_wait: Option<Duration>,
    ) -> Result<QueryResult, QueryError> {
        let job = QueryJob {
            graph: Arc::clone(graph),
            platform: spec.name.clone(),
            reps: self.reps,
            seed: measurement_seed(self.base_seed, hash, &spec.name, batch_size),
        };
        let result = match farm_wait {
            None => self.farm.measure_blocking(&job)?,
            Some(d) => self.farm.measure_timeout(&job, d)?,
        };
        self.counters.measurements.fetch_add(1, Ordering::Relaxed);
        let (model_id, _) = self.db.insert_model(graph);
        let mem = cost::graph_cost(graph, spec.dtype).mem_bytes;
        // Atomic check-then-insert: when two threads miss on the same key
        // concurrently, both return the first writer's measurement — the
        // value every later cache hit will serve.
        let (record, _) = self
            .db
            .get_or_insert_latency(
                model_id,
                platform_id,
                batch_size,
                result.measurement.mean_ms,
                mem,
                (mem * 1.3) as u64,
                mem as u64,
            )
            .expect("fresh foreign keys are valid");
        Ok(QueryResult {
            latency_ms: record.cost_ms,
            cache_hit: false,
            cost_s: result.pipeline_cost_s + CACHE_HIT_COST_S * 0.5, // miss still pays the lookup
        })
    }

    /// Pre-populate the database (the "evolving" loop: every served query
    /// enriches later ones). Returns the number of fresh measurements.
    pub fn warm_cache(
        &self,
        models: &[Graph],
        platform_name: &str,
        batch: u32,
    ) -> Result<usize, QueryError> {
        let mut fresh = 0;
        for m in models {
            let r = self.query(&QueryParams {
                model: m.clone(),
                batch_size: batch,
                platform_name: platform_name.to_string(),
            })?;
            if !r.cache_hit {
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    /// Database statistics passthrough.
    pub fn stats(&self) -> nnlqp_db::DbStats {
        self.db.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_models::ModelFamily;

    fn system() -> Nnlqp {
        Nnlqp::new(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
    }

    fn params(platform: &str) -> QueryParams {
        QueryParams {
            model: ModelFamily::SqueezeNet.canonical().unwrap(),
            batch_size: 1,
            platform_name: platform.into(),
        }
    }

    #[test]
    fn miss_then_hit() {
        let s = system();
        let p = params("gpu-T4-trt7.1-fp32");
        let first = s.query(&p).unwrap();
        assert!(!first.cache_hit);
        assert!(first.cost_s > 10.0);
        let second = s.query(&p).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.latency_ms, first.latency_ms);
        assert!(second.cost_s < 3.0);
        assert_eq!(s.stats().models, 1);
        assert_eq!(s.stats().latencies, 1);
    }

    #[test]
    fn counters_track_traffic() {
        let s = system();
        let p = params("gpu-T4-trt7.1-fp32");
        s.query(&p).unwrap();
        s.query(&p).unwrap();
        s.query(&p).unwrap();
        let c = s.counters();
        assert_eq!(c.queries, 3);
        assert_eq!(c.cache_hits, 2);
        assert_eq!(c.measurements, 1);
        assert_eq!(s.farm_measurements(), 1);
    }

    #[test]
    fn query_measured_bypasses_cache_but_records() {
        let s = system();
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        let a = s.query_measured(&g, "gpu-T4-trt7.1-fp32", 1, None).unwrap();
        assert!(!a.cache_hit);
        // Key-derived seeds: re-measuring the same key reproduces the
        // same ground truth, and the recorded row wins either way.
        let b = s
            .query_measured(&g, "gpu-T4-trt7.1-fp32", 1, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(s.counters().measurements, 2);
        // The normal query path now hits.
        assert!(s.query(&params("gpu-T4-trt7.1-fp32")).unwrap().cache_hit);
    }

    #[test]
    fn distinct_batch_is_a_miss() {
        let s = system();
        let mut p = params("gpu-T4-trt7.1-fp32");
        s.query(&p).unwrap();
        p.batch_size = 8;
        let r = s.query(&p).unwrap();
        assert!(!r.cache_hit);
        // Larger batch has larger latency.
        let r1 = s.query(&params("gpu-T4-trt7.1-fp32")).unwrap();
        assert!(r.latency_ms > r1.latency_ms);
    }

    #[test]
    fn distinct_platform_is_a_miss() {
        let s = system();
        s.query(&params("gpu-T4-trt7.1-fp32")).unwrap();
        let r = s.query(&params("cpu-openppl-fp32")).unwrap();
        assert!(!r.cache_hit);
        assert_eq!(s.stats().models, 1); // model deduplicated
        assert_eq!(s.stats().latencies, 2);
    }

    #[test]
    fn unknown_platform_rejected() {
        let s = system();
        let err = s.query(&params("quantum-coprocessor")).unwrap_err();
        assert_eq!(
            err,
            QueryError::UnknownPlatform("quantum-coprocessor".into())
        );
    }

    #[test]
    fn warm_cache_counts_fresh() {
        let s = system();
        let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 3, 1)
            .into_iter()
            .map(|m| m.graph)
            .collect();
        let fresh = s.warm_cache(&models, "gpu-T4-trt7.1-fp32", 1).unwrap();
        assert_eq!(fresh, 3);
        let again = s.warm_cache(&models, "gpu-T4-trt7.1-fp32", 1).unwrap();
        assert_eq!(again, 0);
    }

    #[test]
    fn strict_mode_rejects_malformed_graph() {
        let s = system().with_strict(true);
        let mut p = params("gpu-T4-trt7.1-fp32");
        // Tamper a stored shape: validate() would also catch this, but the
        // analyzer reports it with a stable code instead of panicking the
        // farm pipeline — and nothing must be cached.
        p.model.nodes[1].out_shape = nnlqp_ir::Shape::nchw(1, 999, 1, 1);
        let err = s.query(&p).unwrap_err();
        match err {
            QueryError::Lint(report) => assert!(report.contains("NNL004"), "{report}"),
            other => panic!("expected Lint error, got {other:?}"),
        }
        assert_eq!(s.stats().models, 0);
        assert_eq!(s.stats().latencies, 0);
    }

    #[test]
    fn strict_mode_passes_clean_graph() {
        let s = system().with_strict(true);
        let p = params("gpu-T4-trt7.1-fp32");
        let first = s.query(&p).unwrap();
        assert!(!first.cache_hit);
        assert!(s.query(&p).unwrap().cache_hit);
        assert_eq!(first.latency_ms, s.query(&p).unwrap().latency_ms);
    }

    #[test]
    fn non_strict_mode_does_not_analyze() {
        // Default mode keeps the historical behavior: a graph the linter
        // would warn about is still measured.
        let s = system();
        assert!(!s.strict);
        let r = s.query(&params("gpu-T4-trt7.1-fp32")).unwrap();
        assert!(r.latency_ms > 0.0);
    }

    #[test]
    fn paper_alias_accepted() {
        let s = system();
        let r = s.query(&params("mul270-neuware-int8")).unwrap();
        assert!(r.latency_ms > 0.0);
    }

    #[test]
    fn concurrent_queries_consistent() {
        use std::sync::Arc;
        let s = Arc::new(system());
        let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::ResNet, 4, 2)
            .into_iter()
            .map(|m| m.graph)
            .collect();
        std::thread::scope(|sc| {
            for m in &models {
                let s = s.clone();
                sc.spawn(move || {
                    let p = QueryParams {
                        model: m.clone(),
                        batch_size: 1,
                        platform_name: "gpu-T4-trt7.1-fp32".into(),
                    };
                    let a = s.query(&p).unwrap();
                    let b = s.query(&p).unwrap();
                    assert_eq!(a.latency_ms, b.latency_ms);
                });
            }
        });
        assert_eq!(s.stats().models, 4);
    }
}
