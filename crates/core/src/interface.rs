//! `NNLQP.query` — the cached latency-query path (§5.2).

use nnlqp_analyze::Report;
use nnlqp_db::{CompactorHandle, Database, DbMetrics, DurableOptions, PlatformId};
use nnlqp_hash::graph_hash;
use nnlqp_ir::{cost, Graph, Rng64};
use nnlqp_obs::{
    Counter, Gauge, Histogram, MetricsRegistry, Recorder, SimClock, Span, TraceClock, Track,
    STAGE_SECONDS_BOUNDS,
};
use nnlqp_sim::{DeviceFarm, FarmError, Platform, PlatformSpec, QueryJob};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Parameters of a query or prediction — the paper's
/// `{model_path, batch_size, platform_name}` with the model passed as a
/// graph (use `nnlqp_ir::serialize::from_json` to load one from disk) and
/// the platform as a validated [`Platform`] handle, so an unknown name
/// fails at construction rather than deep inside the query path.
#[derive(Debug, Clone)]
pub struct QueryParams {
    /// The model.
    pub model: Graph,
    /// Batch size to run at.
    pub batch_size: u32,
    /// Target platform.
    pub platform: Platform,
}

impl QueryParams {
    /// Params over an already-resolved platform handle.
    pub fn new(model: Graph, batch_size: u32, platform: Platform) -> Self {
        QueryParams {
            model,
            batch_size,
            platform,
        }
    }

    /// Convenience constructor from a platform string (registry canonical
    /// name or paper alias) — the stringly entry point for CLI and config
    /// call sites.
    pub fn by_name(model: Graph, batch_size: u32, platform: &str) -> Result<Self, QueryError> {
        let platform = Platform::by_name(platform)
            .ok_or_else(|| QueryError::UnknownPlatform(platform.to_string()))?;
        Ok(QueryParams {
            model,
            batch_size,
            platform,
        })
    }
}

/// Outcome of `query`.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Ground-truth latency in milliseconds.
    pub latency_ms: f64,
    /// True when the database served the request without touching
    /// hardware.
    pub cache_hit: bool,
    /// Wall-clock cost of answering, in (simulated) seconds.
    pub cost_s: f64,
}

/// Wall-clock stage boundaries of a traced miss
/// ([`NNLQP::query_measured_traced`]): nanosecond ticks on the caller's
/// [`TraceClock`], taken after the farm measurement and after the
/// db/WAL write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureTicks {
    /// Tick right after the farm returned the measurement.
    pub measured_ns: u64,
    /// Tick right after the result was recorded in the database.
    pub db_write_ns: u64,
}

/// Query errors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueryError {
    /// The platform is not registered.
    UnknownPlatform(String),
    /// Rebatching the model failed (invalid batch).
    BadBatch(String),
    /// Strict mode: the analyzer found errors, so the graph was rejected
    /// before touching the farm (the payload is the rendered report).
    Lint(String),
    /// The farm could not serve the measurement (busy past the caller's
    /// deadline, or shutting down).
    Farm(FarmError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownPlatform(p) => write!(f, "unknown platform: {p}"),
            QueryError::BadBatch(d) => write!(f, "bad batch size: {d}"),
            QueryError::Lint(r) => write!(f, "model rejected by static analysis:\n{r}"),
            QueryError::Farm(e) => write!(f, "farm error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<FarmError> for QueryError {
    fn from(e: FarmError) -> Self {
        match e {
            FarmError::UnknownPlatform(p) | FarmError::AmbiguousPlatform(p) => {
                QueryError::UnknownPlatform(p)
            }
            other => QueryError::Farm(other),
        }
    }
}

/// A point-in-time copy of the facade's query counters, derived from the
/// shared [`MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountersSnapshot {
    /// `query` calls answered (hit or miss).
    pub queries: u64,
    /// Queries served straight from the database.
    pub cache_hits: u64,
    /// Farm measurements performed (query misses + direct
    /// [`Nnlqp::query_measured`] calls).
    pub measurements: u64,
}

/// Simulated round-trip cost of a cache-hit query: graph hashing on the
/// CPU plus the remote database access (§8.2 measures ~1.9 s per hit).
pub const CACHE_HIT_COST_S: f64 = 1.75;

/// Registry names of the facade's metrics (all registered by
/// [`NnlqpBuilder::build`]).
pub mod metric_names {
    /// Counter: `query` calls answered (hit or miss).
    pub const QUERIES: &str = "query.queries";
    /// Counter: queries served straight from the database.
    pub const CACHE_HITS: &str = "query.cache_hits";
    /// Counter: farm measurements performed.
    pub const MEASUREMENTS: &str = "query.measurements";
    /// Counter: strict-mode admission analyses actually executed (lint
    /// cache misses).
    pub const LINT_RUNS: &str = "query.lint_runs";
    /// Counter: strict-mode admission reports served from the lint cache
    /// (repeat queries of an already-analyzed graph pay nothing).
    pub const LINT_CACHE_HITS: &str = "query.lint_cache_hits";
    /// Histogram: simulated seconds spent hashing + looking up.
    pub const STAGE_LOOKUP_S: &str = "query.stage.lookup_s";
    /// Histogram: simulated seconds spent in the deployment pipeline.
    pub const STAGE_MEASURE_S: &str = "query.stage.measure_s";
    /// Counter: predictions served from a cached graph embedding (only
    /// the MLP head ran).
    pub const EMBED_HITS: &str = "predict.embed_cache_hits";
    /// Counter: predictions that paid the full feature-extraction + GNN
    /// backbone cost.
    pub const EMBED_MISSES: &str = "predict.embed_cache_misses";
    /// Gauge: graph embeddings currently cached.
    pub const EMBED_LEN: &str = "predict.embed_cache_len";
    /// Counter: WAL frames appended by the storage engine.
    pub const DB_WAL_APPENDS: &str = nnlqp_db::db_metric_names::WAL_APPENDS;
    /// Counter: WAL bytes appended by the storage engine.
    pub const DB_WAL_BYTES: &str = nnlqp_db::db_metric_names::WAL_BYTES;
    /// Counter: storage-engine compaction passes.
    pub const DB_COMPACTIONS: &str = nnlqp_db::db_metric_names::COMPACTIONS;
    /// Counter: WAL frames replayed during crash recovery.
    pub const DB_RECOVERY_REPLAYED_FRAMES: &str =
        nnlqp_db::db_metric_names::RECOVERY_REPLAYED_FRAMES;
    /// Counter: torn WAL tail bytes refused during crash recovery.
    pub const DB_RECOVERY_TRUNCATED_BYTES: &str =
        nnlqp_db::db_metric_names::RECOVERY_TRUNCATED_BYTES;
}

/// The NNLQP system object. Construct with [`Nnlqp::builder`].
pub struct Nnlqp {
    /// The evolving database. Shared (`Arc`) so the background compactor
    /// of a durable store can own a handle; deref keeps `system.db.…`
    /// call sites unchanged.
    pub db: Arc<Database>,
    /// Background compactor of a durable store (`None` when in-memory).
    /// Held so its thread is stopped and joined when the system drops;
    /// serving layers stop it earlier via [`Nnlqp::stop_compactor`].
    compactor: Mutex<Option<CompactorHandle>>,
    farm: DeviceFarm,
    reps: usize,
    strict: bool,
    /// Base seed folded into every measurement's per-key seed: a
    /// measurement is a deterministic function of (graph hash, platform,
    /// batch, base seed), independent of arrival order — so concurrent
    /// serving layers stay reproducible.
    base_seed: u64,
    seed: Mutex<Rng64>,
    registry: Arc<MetricsRegistry>,
    m_queries: Arc<Counter>,
    m_cache_hits: Arc<Counter>,
    m_measurements: Arc<Counter>,
    m_lint_runs: Arc<Counter>,
    m_lint_cache_hits: Arc<Counter>,
    h_lookup_s: Arc<Histogram>,
    h_measure_s: Arc<Histogram>,
    /// Memoized admission reports keyed by (graph hash, platform name):
    /// strict mode analyzes each distinct graph once per platform, so a
    /// repeated (rejected or clean) query pays nothing.
    lint_cache: Mutex<HashMap<(u64, String), Arc<Report>>>,
    pub(crate) predictor: parking_lot::RwLock<Option<crate::predictor::PredictorHandle>>,
    /// Generation counter for the installed predictor; bumped under the
    /// `predictor` write lock on every hot-swap so embed-cache keys from
    /// an older model can never resolve.
    pub(crate) predictor_version: std::sync::atomic::AtomicU64,
    pub(crate) embed_cache: crate::embed_cache::EmbedCache,
    /// Architecture trained when [`crate::TrainPredictorConfig::arch`] is
    /// `None` ([`NnlqpBuilder::predictor`]; GraphSAGE by default).
    pub(crate) default_arch: nnlqp_predict::PredictorKind,
    pub(crate) m_embed_hits: Arc<Counter>,
    pub(crate) m_embed_misses: Arc<Counter>,
    pub(crate) g_embed_len: Arc<Gauge>,
}

/// Default base seed (`b"NNLQP!"` as a integer tag).
const DEFAULT_SEED: u64 = 0x4e4e_4c51_5021;

/// Fold the query key into a measurement seed (FNV-1a over the platform
/// name, mixed with the graph hash, batch and base seed).
fn measurement_seed(base: u64, graph_hash: u64, platform: &str, batch: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for b in platform.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
    }
    h ^ base ^ graph_hash.rotate_left(17) ^ u64::from(batch).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Configures and builds an [`Nnlqp`] system. Every knob has the paper's
/// default; override only what the deployment needs:
///
/// ```
/// use nnlqp::Nnlqp;
///
/// let system = Nnlqp::builder().reps(10).strict(true).seed(42).build();
/// assert_eq!(system.reps(), 10);
/// ```
#[derive(Default)]
pub struct NnlqpBuilder {
    farm: Option<DeviceFarm>,
    reps: Option<usize>,
    strict: bool,
    seed: Option<u64>,
    registry: Option<Arc<MetricsRegistry>>,
    embed_cache_capacity: Option<usize>,
    durable: Option<DurableOptions>,
    predictor_kind: Option<nnlqp_predict::PredictorKind>,
    simd: Option<bool>,
}

/// Background compaction triggers when this many WAL bytes are pending.
const DB_COMPACT_THRESHOLD_BYTES: u64 = 8 * 1024 * 1024;
/// How often the background compactor checks the pending-bytes mark.
const DB_COMPACT_INTERVAL: Duration = Duration::from_millis(500);

/// Default number of cached graph embeddings.
const DEFAULT_EMBED_CACHE_CAPACITY: usize = 2048;
/// Shard count of the embed cache (rounded to a power of two inside).
const EMBED_CACHE_SHARDS: usize = 8;

impl NnlqpBuilder {
    /// The device farm to measure on (default: the full platform
    /// registry, one device each).
    #[must_use]
    pub fn farm(mut self, farm: DeviceFarm) -> Self {
        self.farm = Some(farm);
        self
    }

    /// Measurement repetitions per query (paper default: 50).
    #[must_use]
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = Some(reps);
        self
    }

    /// When set, every query first runs the `nnlqp-analyze` pipeline over
    /// the effective graph and refuses to measure (or cache) anything the
    /// analyzer flags with an error — keeping poisoned ground truth out of
    /// the evolving database.
    #[must_use]
    pub fn strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Base seed for measurement and jitter streams (distinct deployments
    /// of the system observe distinct noise).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Share an existing metrics registry (e.g. one the serving layer
    /// also registers into) instead of creating a private one.
    #[must_use]
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Capacity of the graph-embedding cache behind `predict` (default
    /// 2048 entries). `0` disables embedding reuse entirely — every
    /// prediction pays the full backbone cost; useful as a benchmarking
    /// baseline.
    #[must_use]
    pub fn embed_cache(mut self, capacity: usize) -> Self {
        self.embed_cache_capacity = Some(capacity);
        self
    }

    /// Default predictor architecture for [`Nnlqp::train_predictor`] /
    /// [`Nnlqp::train_predictor_handle`] calls whose config leaves
    /// `arch` unset (out of the box: GraphSAGE). Per-call configs
    /// override this knob.
    #[must_use]
    pub fn predictor(mut self, kind: nnlqp_predict::PredictorKind) -> Self {
        self.predictor_kind = Some(kind);
        self
    }

    /// Select the math-kernel backend process-wide: `true` uses the SIMD
    /// (AVX2+FMA) kernels when the CPU supports them, `false` pins the
    /// scalar reference kernels. Unset leaves the default resolution
    /// (SIMD when available, overridable via the `NNLQP_SIMD` environment
    /// variable). The kernel choice is global — it configures the
    /// process, not just this system instance.
    #[must_use]
    pub fn simd(mut self, enabled: bool) -> Self {
        self.simd = Some(enabled);
        self
    }

    /// Mount the evolving database on the sharded durable storage engine
    /// at `opts.dir` (WAL + snapshot segments) instead of keeping it
    /// purely in memory. Opening replays and, if needed, repairs the
    /// store; a background compactor folds the WALs once they grow past
    /// an internal threshold.
    #[must_use]
    pub fn durable(mut self, opts: DurableOptions) -> Self {
        self.durable = Some(opts);
        self
    }

    /// Build the system.
    ///
    /// # Panics
    /// When a durable store was requested ([`NnlqpBuilder::durable`]) and
    /// opening it fails — use [`NnlqpBuilder::try_build`] to handle that.
    pub fn build(self) -> Nnlqp {
        self.try_build().expect("failed to open durable store")
    }

    /// Build the system, surfacing durable-store open errors.
    pub fn try_build(self) -> std::io::Result<Nnlqp> {
        if let Some(on) = self.simd {
            nnlqp_nn::set_simd_enabled(on);
        }
        let farm = self.farm.unwrap_or_else(DeviceFarm::full_registry);
        let seed = self.seed.unwrap_or(DEFAULT_SEED);
        let registry = self
            .registry
            .unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        let m_queries = registry.counter(metric_names::QUERIES);
        let m_cache_hits = registry.counter(metric_names::CACHE_HITS);
        let m_measurements = registry.counter(metric_names::MEASUREMENTS);
        let m_lint_runs = registry.counter(metric_names::LINT_RUNS);
        let m_lint_cache_hits = registry.counter(metric_names::LINT_CACHE_HITS);
        let h_lookup_s = registry.histogram(metric_names::STAGE_LOOKUP_S, &STAGE_SECONDS_BOUNDS);
        let h_measure_s = registry.histogram(metric_names::STAGE_MEASURE_S, &STAGE_SECONDS_BOUNDS);
        let m_embed_hits = registry.counter(metric_names::EMBED_HITS);
        let m_embed_misses = registry.counter(metric_names::EMBED_MISSES);
        let g_embed_len = registry.gauge(metric_names::EMBED_LEN);
        let embed_capacity = self
            .embed_cache_capacity
            .unwrap_or(DEFAULT_EMBED_CACHE_CAPACITY);
        // Registered unconditionally so the exported metric set is stable
        // across in-memory and durable deployments (zeros when in-memory).
        let db_metrics = DbMetrics::registered(&registry);
        let db = match &self.durable {
            Some(opts) => Arc::new(Database::open_durable_with_metrics(
                opts.clone(),
                db_metrics,
            )?),
            None => Arc::new(Database::new()),
        };
        let compactor = db.is_durable().then(|| {
            CompactorHandle::spawn(
                Arc::clone(&db),
                DB_COMPACT_THRESHOLD_BYTES,
                DB_COMPACT_INTERVAL,
            )
        });
        Ok(Nnlqp {
            db,
            compactor: Mutex::new(compactor),
            farm,
            reps: self.reps.unwrap_or(nnlqp_sim::DEFAULT_REPS),
            strict: self.strict,
            base_seed: seed,
            seed: Mutex::new(Rng64::new(seed)),
            registry,
            m_queries,
            m_cache_hits,
            m_measurements,
            m_lint_runs,
            m_lint_cache_hits,
            h_lookup_s,
            h_measure_s,
            lint_cache: Mutex::new(HashMap::new()),
            predictor: parking_lot::RwLock::new(None),
            predictor_version: std::sync::atomic::AtomicU64::new(0),
            embed_cache: crate::embed_cache::EmbedCache::new(embed_capacity, EMBED_CACHE_SHARDS),
            default_arch: self.predictor_kind.unwrap_or_default(),
            m_embed_hits,
            m_embed_misses,
            g_embed_len,
        })
    }
}

impl Nnlqp {
    /// Start configuring a system.
    pub fn builder() -> NnlqpBuilder {
        NnlqpBuilder::default()
    }

    /// System over a given farm.
    #[deprecated(since = "0.1.0", note = "use `Nnlqp::builder().farm(farm).build()`")]
    pub fn new(farm: DeviceFarm) -> Self {
        Self::builder().farm(farm).build()
    }

    /// System over the full platform registry, one device each.
    #[deprecated(since = "0.1.0", note = "use `Nnlqp::builder().build()`")]
    pub fn with_default_farm() -> Self {
        Self::builder().build()
    }

    /// Builder-style toggle for strict (analyze-before-measure) mode.
    #[deprecated(since = "0.1.0", note = "use `NnlqpBuilder::strict`")]
    #[must_use]
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Reseed the measurement/jitter stream.
    #[deprecated(since = "0.1.0", note = "use `NnlqpBuilder::seed`")]
    pub fn set_seed(&mut self, seed: u64) {
        self.base_seed = seed;
        *self.seed.lock() = Rng64::new(seed);
    }

    /// Measurement repetitions per query (paper: 50).
    pub fn reps(&self) -> usize {
        self.reps
    }

    /// Whether strict (analyze-before-measure) mode is on.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// The device farm this system measures on — exposed so callers can
    /// resolve user-supplied platform strings against what is actually
    /// served (`Platform::parse(system.farm(), name)`).
    pub fn farm(&self) -> &DeviceFarm {
        &self.farm
    }

    /// The metrics registry behind [`Nnlqp::counters`] — shared with any
    /// layer built via [`NnlqpBuilder::metrics`].
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Stop and join the background compactor of a durable store (no-op
    /// when in-memory or already stopped). Serving layers call this at
    /// shutdown before the final seal + compact, so the closing fold
    /// cannot race a background pass.
    pub fn stop_compactor(&self) {
        drop(self.compactor.lock().take());
    }

    /// Traffic counters (queries, cache hits, farm measurements).
    pub fn counters(&self) -> CountersSnapshot {
        CountersSnapshot {
            queries: self.m_queries.get(),
            cache_hits: self.m_cache_hits.get(),
            measurements: self.m_measurements.get(),
        }
    }

    /// The farm's lifetime measurement count — the hardware-side view of
    /// [`CountersSnapshot::measurements`].
    pub fn farm_measurements(&self) -> u64 {
        self.farm.measurements_performed()
    }

    /// Graph embeddings currently cached (also published as the
    /// `predict.embed_cache_len` gauge).
    pub fn embed_cache_len(&self) -> usize {
        self.embed_cache.len()
    }

    /// Run the admission analysis pipeline over `graph` (assumed to hash
    /// to `hash`), memoized per (graph hash, platform name).
    ///
    /// This is what strict mode consults before any farm measurement or
    /// database write; serving layers can call it directly to pre-screen
    /// a graph or to surface the full report behind a rejection. Repeat
    /// calls for an already-analyzed key return the cached report and
    /// bump `query.lint_cache_hits` instead of `query.lint_runs`.
    pub fn analyze_admission(&self, graph: &Graph, hash: u64, spec: &PlatformSpec) -> Arc<Report> {
        const LINT_CACHE_CAP: usize = 1024;
        let key = (hash, spec.name.clone());
        if let Some(cached) = self.lint_cache.lock().get(&key) {
            self.m_lint_cache_hits.inc();
            return Arc::clone(cached);
        }
        let report = Arc::new(nnlqp_analyze::analyze(graph, Some(spec)));
        self.m_lint_runs.inc();
        let mut cache = self.lint_cache.lock();
        if cache.len() >= LINT_CACHE_CAP {
            cache.clear(); // simple bound; reports are cheap to recompute
        }
        cache.insert(key, Arc::clone(&report));
        report
    }

    /// Strict-mode gate: reject `graph` when the admission report carries
    /// errors, before the farm or database are touched.
    fn admit(&self, graph: &Graph, hash: u64, spec: &PlatformSpec) -> Result<(), QueryError> {
        if !self.strict {
            return Ok(());
        }
        let report = self.analyze_admission(graph, hash, spec);
        if report.has_errors() {
            return Err(QueryError::Lint(report.render_text()));
        }
        Ok(())
    }

    /// Resolve the effective graph at the requested batch size.
    fn effective_graph(&self, params: &QueryParams) -> Result<Graph, QueryError> {
        if params.model.input_shape.batch() == params.batch_size as usize {
            Ok(params.model.clone())
        } else {
            params
                .model
                .rebatch(params.batch_size as usize)
                .map_err(|e| QueryError::BadBatch(e.to_string()))
        }
    }

    /// The paper's `NNLQP.query`: return the true latency, from cache if
    /// the graph hash + platform + batch is already stored, otherwise by
    /// measuring on the farm and recording the result.
    pub fn query(&self, params: &QueryParams) -> Result<QueryResult, QueryError> {
        self.query_inner(params, &Recorder::disabled())
    }

    /// [`Nnlqp::query`], publishing a span timeline into `rec`: hash /
    /// db-lookup / measure stages on the `query` track, deployment stages
    /// on the `farm` track, and (on a miss) one span per formed kernel on
    /// the per-stream `device` lanes. Stage spans on the `query` track
    /// tile `[0, cost_s]` exactly. Timestamps are simulated milliseconds.
    pub fn query_traced(
        &self,
        params: &QueryParams,
        rec: &Recorder,
    ) -> Result<QueryResult, QueryError> {
        self.query_inner(params, rec)
    }

    fn query_inner(&self, params: &QueryParams, rec: &Recorder) -> Result<QueryResult, QueryError> {
        self.m_queries.inc();
        let spec = params.platform.spec();
        let graph = self.effective_graph(params)?;
        let hash = graph_hash(&graph);
        self.admit(&graph, hash, spec)?;
        let platform_id =
            self.db
                .get_or_create_platform(&spec.hardware, &spec.software, spec.dtype.name());
        let mut clock = SimClock::new();

        if let Some(hit) = self.db.lookup_latency(hash, platform_id, params.batch_size) {
            self.m_cache_hits.inc();
            let jitter = {
                let mut s = self.seed.lock();
                s.uniform()
            };
            let cost_s = CACHE_HIT_COST_S * (0.9 + 0.2 * jitter);
            self.h_lookup_s.observe(cost_s);
            record_lookup_spans(rec, &mut clock, cost_s, true);
            return Ok(QueryResult {
                latency_ms: hit.cost_ms,
                cache_hit: true,
                cost_s,
            });
        }

        // Miss: deploy + measure on the farm, then record. The graph moves
        // into an `Arc` shared with the farm job — no per-miss deep copy.
        self.measure_and_record(
            &Arc::new(graph),
            spec,
            platform_id,
            hash,
            params.batch_size,
            None,
            rec,
            &mut clock,
            None,
        )
        .map(|(qr, _)| qr)
    }

    /// The miss path as a standalone entry point: measure `graph` on the
    /// farm and record the result, skipping the cache lookup (the caller —
    /// typically `nnlqp-serve` — has already established the miss).
    ///
    /// `graph` must already be at the effective batch size. `farm_wait`
    /// bounds device acquisition: `None` blocks until a device frees up,
    /// `Some(d)` gives up with [`QueryError::Farm`]`(`[`FarmError::Busy`]`)`
    /// after `d`.
    pub fn query_measured(
        &self,
        graph: &Arc<Graph>,
        platform: &Platform,
        batch_size: u32,
        farm_wait: Option<Duration>,
    ) -> Result<QueryResult, QueryError> {
        let spec = platform.spec();
        let hash = graph_hash(graph);
        self.admit(graph, hash, spec)?;
        let platform_id =
            self.db
                .get_or_create_platform(&spec.hardware, &spec.software, spec.dtype.name());
        self.measure_and_record(
            graph,
            spec,
            platform_id,
            hash,
            batch_size,
            farm_wait,
            &Recorder::disabled(),
            &mut SimClock::new(),
            None,
        )
        .map(|(qr, _)| qr)
    }

    /// [`Self::query_measured`] with wall-clock stage boundaries: the
    /// returned [`MeasureTicks`] are nanosecond ticks on `clock` taken
    /// right after the farm measurement and right after the db/WAL write,
    /// so a serving-layer trace can tile the miss path into
    /// `measure` / `db_write` stages exactly.
    pub fn query_measured_traced(
        &self,
        graph: &Arc<Graph>,
        platform: &Platform,
        batch_size: u32,
        farm_wait: Option<Duration>,
        clock: &TraceClock,
    ) -> Result<(QueryResult, MeasureTicks), QueryError> {
        let spec = platform.spec();
        let hash = graph_hash(graph);
        self.admit(graph, hash, spec)?;
        let platform_id =
            self.db
                .get_or_create_platform(&spec.hardware, &spec.software, spec.dtype.name());
        self.measure_and_record(
            graph,
            spec,
            platform_id,
            hash,
            batch_size,
            farm_wait,
            &Recorder::disabled(),
            &mut SimClock::new(),
            Some(clock),
        )
        .map(|(qr, ticks)| (qr, ticks.expect("ticks present when clock passed")))
    }

    #[allow(clippy::too_many_arguments)] // private plumbing behind query/query_measured
    fn measure_and_record(
        &self,
        graph: &Arc<Graph>,
        spec: &PlatformSpec,
        platform_id: PlatformId,
        hash: u64,
        batch_size: u32,
        farm_wait: Option<Duration>,
        rec: &Recorder,
        clock: &mut SimClock,
        wall: Option<&TraceClock>,
    ) -> Result<(QueryResult, Option<MeasureTicks>), QueryError> {
        let job = QueryJob {
            graph: Arc::clone(graph),
            platform: spec.name.clone(),
            reps: self.reps,
            seed: measurement_seed(self.base_seed, hash, &spec.name, batch_size),
        };
        let result = match farm_wait {
            None => self.farm.measure_blocking(&job)?,
            Some(d) => self.farm.measure_timeout(&job, d)?,
        };
        let measured_ns = wall.map(TraceClock::now_ns);
        self.m_measurements.inc();
        let lookup_s = CACHE_HIT_COST_S * 0.5; // miss still pays the lookup
        self.h_lookup_s.observe(lookup_s);
        self.h_measure_s.observe(result.pipeline_cost_s);
        record_lookup_spans(rec, clock, lookup_s, false);
        if rec.is_enabled() {
            // The whole pipeline as one stage on the query track, its
            // per-stage split on the farm track, and one representative
            // model execution (kernel spans) inside the runs stage.
            let (start, dur) = clock.advance(result.pipeline_cost_s * 1.0e3);
            rec.record(
                Span::new("measure", "stage", Track::new("query", 0), start, dur)
                    .arg("platform", &spec.name)
                    .arg("device_id", result.device_id)
                    .arg("reps", self.reps),
            );
            let mut at = start;
            for (stage, secs) in result.breakdown.stages() {
                let stage_ms = secs * 1.0e3;
                rec.record(Span::new(
                    stage,
                    "deploy",
                    Track::new("farm", 0),
                    at,
                    stage_ms,
                ));
                if stage == "runs" {
                    nnlqp_sim::execute_recorded(graph, spec, rec, at);
                }
                at += stage_ms;
            }
        }
        let (model_id, _) = self.db.insert_model(graph);
        let mem = cost::graph_cost(graph, spec.dtype).mem_bytes;
        // Atomic check-then-insert: when two threads miss on the same key
        // concurrently, both return the first writer's measurement — the
        // value every later cache hit will serve.
        let (record, _) = self
            .db
            .get_or_insert_latency(
                model_id,
                platform_id,
                batch_size,
                result.measurement.mean_ms,
                mem,
                (mem * 1.3) as u64,
                mem as u64,
            )
            .expect("fresh foreign keys are valid");
        let ticks = wall.map(|c| MeasureTicks {
            measured_ns: measured_ns.unwrap_or(0),
            db_write_ns: c.now_ns(),
        });
        Ok((
            QueryResult {
                latency_ms: record.cost_ms,
                cache_hit: false,
                cost_s: result.pipeline_cost_s + lookup_s,
            },
            ticks,
        ))
    }

    /// Pre-populate the database (the "evolving" loop: every served query
    /// enriches later ones). Returns the number of fresh measurements.
    pub fn warm_cache(
        &self,
        models: &[Graph],
        platform: &Platform,
        batch: u32,
    ) -> Result<usize, QueryError> {
        let mut fresh = 0;
        for m in models {
            let r = self.query(&QueryParams::new(m.clone(), batch, platform.clone()))?;
            if !r.cache_hit {
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    /// Database statistics passthrough.
    pub fn stats(&self) -> nnlqp_db::DbStats {
        self.db.stats()
    }
}

/// Lookup-phase spans on the query track: hashing the graph, then the
/// remote database round trip, together tiling exactly `lookup_s`.
fn record_lookup_spans(rec: &Recorder, clock: &mut SimClock, lookup_s: f64, hit: bool) {
    if !rec.is_enabled() {
        return;
    }
    let hash_ms = lookup_s * 1.0e3 * 0.25;
    let db_ms = lookup_s * 1.0e3 - hash_ms;
    let (start, dur) = clock.advance(hash_ms);
    rec.record(Span::new(
        "hash",
        "stage",
        Track::new("query", 0),
        start,
        dur,
    ));
    let (start, dur) = clock.advance(db_ms);
    rec.record(
        Span::new("db-lookup", "stage", Track::new("query", 0), start, dur).arg("cache_hit", hit),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_models::ModelFamily;

    fn system() -> Nnlqp {
        Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .build()
    }

    fn params(platform: &str) -> QueryParams {
        QueryParams::by_name(ModelFamily::SqueezeNet.canonical().unwrap(), 1, platform).unwrap()
    }

    fn t4() -> Platform {
        Platform::by_name("gpu-T4-trt7.1-fp32").unwrap()
    }

    #[test]
    fn miss_then_hit() {
        let s = system();
        let p = params("gpu-T4-trt7.1-fp32");
        let first = s.query(&p).unwrap();
        assert!(!first.cache_hit);
        assert!(first.cost_s > 10.0);
        let second = s.query(&p).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.latency_ms, first.latency_ms);
        assert!(second.cost_s < 3.0);
        assert_eq!(s.stats().models, 1);
        assert_eq!(s.stats().latencies, 1);
    }

    #[test]
    fn counters_track_traffic() {
        let s = system();
        let p = params("gpu-T4-trt7.1-fp32");
        s.query(&p).unwrap();
        s.query(&p).unwrap();
        s.query(&p).unwrap();
        let c = s.counters();
        assert_eq!(c.queries, 3);
        assert_eq!(c.cache_hits, 2);
        assert_eq!(c.measurements, 1);
        assert_eq!(s.farm_measurements(), 1);
    }

    #[test]
    fn registry_observes_stage_histograms() {
        let s = system();
        let p = params("gpu-T4-trt7.1-fp32");
        s.query(&p).unwrap(); // miss: lookup + measure observed
        s.query(&p).unwrap(); // hit: lookup observed
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter(metric_names::QUERIES), 2);
        assert_eq!(snap.counter(metric_names::CACHE_HITS), 1);
        let lookup = &snap.histograms[metric_names::STAGE_LOOKUP_S];
        assert_eq!(lookup.count, 2);
        let measure = &snap.histograms[metric_names::STAGE_MEASURE_S];
        assert_eq!(measure.count, 1);
        assert!(measure.sum > 10.0, "pipeline seconds {}", measure.sum);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .reps(7)
            .strict(true)
            .seed(99)
            .build();
        assert_eq!(s.reps(), 7);
        assert!(s.strict());
        assert!(!system().strict());
        assert_eq!(system().reps(), nnlqp_sim::DEFAULT_REPS);
    }

    #[test]
    fn builder_shares_injected_registry() {
        let shared = Arc::new(MetricsRegistry::new());
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .metrics(Arc::clone(&shared))
            .build();
        s.query(&params("gpu-T4-trt7.1-fp32")).unwrap();
        assert_eq!(shared.snapshot().counter(metric_names::QUERIES), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_still_work() {
        let s = Nnlqp::new(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1)).with_strict(true);
        assert!(s.strict());
        let mut s = Nnlqp::with_default_farm();
        s.set_seed(5);
        assert!(s.query(&params("gpu-T4-trt7.1-fp32")).unwrap().latency_ms > 0.0);
    }

    #[test]
    fn query_measured_bypasses_cache_but_records() {
        let s = system();
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        let a = s.query_measured(&g, &t4(), 1, None).unwrap();
        assert!(!a.cache_hit);
        // Key-derived seeds: re-measuring the same key reproduces the
        // same ground truth, and the recorded row wins either way.
        let b = s
            .query_measured(&g, &t4(), 1, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(s.counters().measurements, 2);
        // The normal query path now hits.
        assert!(s.query(&params("gpu-T4-trt7.1-fp32")).unwrap().cache_hit);
    }

    #[test]
    fn distinct_batch_is_a_miss() {
        let s = system();
        let mut p = params("gpu-T4-trt7.1-fp32");
        s.query(&p).unwrap();
        p.batch_size = 8;
        let r = s.query(&p).unwrap();
        assert!(!r.cache_hit);
        // Larger batch has larger latency.
        let r1 = s.query(&params("gpu-T4-trt7.1-fp32")).unwrap();
        assert!(r.latency_ms > r1.latency_ms);
    }

    #[test]
    fn distinct_platform_is_a_miss() {
        let s = system();
        s.query(&params("gpu-T4-trt7.1-fp32")).unwrap();
        let r = s.query(&params("cpu-openppl-fp32")).unwrap();
        assert!(!r.cache_hit);
        assert_eq!(s.stats().models, 1); // model deduplicated
        assert_eq!(s.stats().latencies, 2);
    }

    #[test]
    fn unknown_platform_rejected_at_construction() {
        let err = QueryParams::by_name(
            ModelFamily::SqueezeNet.canonical().unwrap(),
            1,
            "quantum-coprocessor",
        )
        .unwrap_err();
        assert_eq!(
            err,
            QueryError::UnknownPlatform("quantum-coprocessor".into())
        );
    }

    #[test]
    fn warm_cache_counts_fresh() {
        let s = system();
        let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 3, 1)
            .into_iter()
            .map(|m| m.graph)
            .collect();
        let fresh = s.warm_cache(&models, &t4(), 1).unwrap();
        assert_eq!(fresh, 3);
        let again = s.warm_cache(&models, &t4(), 1).unwrap();
        assert_eq!(again, 0);
    }

    #[test]
    fn strict_mode_rejects_malformed_graph() {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .strict(true)
            .build();
        let mut p = params("gpu-T4-trt7.1-fp32");
        // Tamper a stored shape: validate() would also catch this, but the
        // analyzer reports it with a stable code instead of panicking the
        // farm pipeline — and nothing must be cached.
        p.model.nodes[1].out_shape = nnlqp_ir::Shape::nchw(1, 999, 1, 1);
        let err = s.query(&p).unwrap_err();
        match err {
            QueryError::Lint(report) => assert!(report.contains("NNL004"), "{report}"),
            other => panic!("expected Lint error, got {other:?}"),
        }
        assert_eq!(s.stats().models, 0);
        assert_eq!(s.stats().latencies, 0);
    }

    #[test]
    fn admission_reports_are_cached_by_graph_and_platform() {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .strict(true)
            .build();
        let mut p = params("gpu-T4-trt7.1-fp32");
        p.model.nodes[1].out_shape = nnlqp_ir::Shape::nchw(1, 999, 1, 1);
        assert!(matches!(s.query(&p), Err(QueryError::Lint(_))));
        // The repeat rejection is served from the lint cache.
        assert!(matches!(s.query(&p), Err(QueryError::Lint(_))));
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter(metric_names::LINT_RUNS), 1);
        assert_eq!(snap.counter(metric_names::LINT_CACHE_HITS), 1);
        // A different platform is a distinct admission key.
        let p2 = QueryParams::by_name(p.model.clone(), 1, "cpu-openppl-fp32").unwrap();
        assert!(matches!(s.query(&p2), Err(QueryError::Lint(_))));
        assert_eq!(s.registry().snapshot().counter(metric_names::LINT_RUNS), 2);
        // Nothing was measured or recorded for any of the rejections.
        assert_eq!(s.farm_measurements(), 0);
        assert_eq!(s.stats().models, 0);
        assert_eq!(s.stats().latencies, 0);
    }

    #[test]
    fn strict_mode_passes_clean_graph() {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .strict(true)
            .build();
        let p = params("gpu-T4-trt7.1-fp32");
        let first = s.query(&p).unwrap();
        assert!(!first.cache_hit);
        assert!(s.query(&p).unwrap().cache_hit);
        assert_eq!(first.latency_ms, s.query(&p).unwrap().latency_ms);
    }

    #[test]
    fn non_strict_mode_does_not_analyze() {
        // Default mode keeps the historical behavior: a graph the linter
        // would warn about is still measured.
        let s = system();
        assert!(!s.strict());
        let r = s.query(&params("gpu-T4-trt7.1-fp32")).unwrap();
        assert!(r.latency_ms > 0.0);
    }

    #[test]
    fn paper_alias_accepted() {
        let s = system();
        let r = s.query(&params("mul270-neuware-int8")).unwrap();
        assert!(r.latency_ms > 0.0);
    }

    #[test]
    fn traced_query_stages_tile_cost() {
        let s = system();
        let p = params("gpu-T4-trt7.1-fp32");

        let rec = Recorder::new();
        let miss = s.query_traced(&p, &rec).unwrap();
        let t = rec.timeline();
        assert!(
            t.first_overlap().is_none(),
            "per-lane spans must not overlap"
        );
        let query_track = Track::new("query", 0);
        let stage_sum_ms: f64 = t.on_track(&query_track).iter().map(|s| s.dur_ms).sum();
        let rel = (stage_sum_ms - miss.cost_s * 1.0e3).abs() / (miss.cost_s * 1.0e3);
        assert!(
            rel < 1.0e-9,
            "stage sum {stage_sum_ms} vs cost {}",
            miss.cost_s
        );
        // Deployment stages and kernels appear on their own tracks.
        assert!(
            t.on_track(&Track::new("farm", 0)).len() == 5,
            "5 deploy stages"
        );
        assert!(t.total_ms("kernel") > 0.0, "kernel spans recorded");

        let rec2 = Recorder::new();
        let hit = s.query_traced(&p, &rec2).unwrap();
        assert!(hit.cache_hit);
        let t2 = rec2.timeline();
        let sum2: f64 = t2.on_track(&query_track).iter().map(|s| s.dur_ms).sum();
        let rel2 = (sum2 - hit.cost_s * 1.0e3).abs() / (hit.cost_s * 1.0e3);
        assert!(rel2 < 1.0e-9, "hit stage sum {sum2} vs cost {}", hit.cost_s);
        assert_eq!(t2.spans.len(), 2, "hit path: hash + db-lookup only");
    }

    #[test]
    fn untraced_query_records_nothing() {
        let s = system();
        let rec = Recorder::disabled();
        s.query_traced(&params("gpu-T4-trt7.1-fp32"), &rec).unwrap();
        assert!(rec.is_empty());
    }

    #[test]
    fn durable_system_round_trips_through_restart() {
        let dir = std::env::temp_dir().join(format!("nnlqp-core-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurableOptions::new(&dir).shards(2);
        let first = {
            let s = Nnlqp::builder()
                .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
                .durable(opts.clone())
                .build();
            assert!(s.db.is_durable());
            let r = s.query(&params("gpu-T4-trt7.1-fp32")).unwrap();
            assert!(!r.cache_hit);
            // Registered counters observed the appends.
            assert!(
                s.registry()
                    .snapshot()
                    .counter(metric_names::DB_WAL_APPENDS)
                    >= 3
            );
            r.latency_ms
        };
        // A restarted system recovers the store and serves the same
        // ground truth from cache without touching the farm.
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .durable(opts)
            .build();
        assert_eq!(s.stats().models, 1);
        let r = s.query(&params("gpu-T4-trt7.1-fp32")).unwrap();
        assert!(r.cache_hit);
        assert_eq!(r.latency_ms, first);
        assert_eq!(s.farm_measurements(), 0);
        drop(s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_build_registers_zeroed_db_counters() {
        let s = system();
        assert!(!s.db.is_durable());
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter(metric_names::DB_WAL_APPENDS), 0);
        assert_eq!(snap.counter(metric_names::DB_COMPACTIONS), 0);
    }

    #[test]
    fn concurrent_queries_consistent() {
        use std::sync::Arc;
        let s = Arc::new(system());
        let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::ResNet, 4, 2)
            .into_iter()
            .map(|m| m.graph)
            .collect();
        std::thread::scope(|sc| {
            for m in &models {
                let s = s.clone();
                sc.spawn(move || {
                    let p = QueryParams::by_name(m.clone(), 1, "gpu-T4-trt7.1-fp32").unwrap();
                    let a = s.query(&p).unwrap();
                    let b = s.query(&p).unwrap();
                    assert_eq!(a.latency_ms, b.latency_ms);
                });
            }
        });
        assert_eq!(s.stats().models, 4);
    }
}
