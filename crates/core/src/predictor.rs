//! `NNLQP.predict` — the prediction path, trained from the evolving
//! database.

use crate::interface::{Nnlqp, QueryError, QueryParams};
use nnlqp_ir::Rng64;
use nnlqp_predict::train::{train, Dataset, TrainConfig};
use nnlqp_predict::{extract_features, NnlpConfig, NnlpModel};
use nnlqp_sim::PlatformSpec;
use std::collections::HashMap;

/// Simulated wall-clock cost of one prediction (feature extraction + GNN
/// inference; §8.2 measures ~0.10 s per model).
pub const PREDICT_COST_S: f64 = 0.100;

/// Simulated wall-clock cost of one FLOPs+MAC prediction (§8.2: ~0.094 s).
pub const FLOPS_MAC_COST_S: f64 = 0.094;

/// A trained multi-platform predictor bound to its platform→head map.
#[derive(Clone)]
pub struct PredictorHandle {
    /// The model.
    pub model: NnlpModel,
    /// Platform name → head index.
    pub head_of: HashMap<String, usize>,
}

/// Training options for [`Nnlqp::train_predictor`].
#[derive(Debug, Clone, Copy)]
pub struct TrainPredictorConfig {
    /// Epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
    /// Seed.
    pub seed: u64,
    /// GNN hidden width.
    pub hidden: usize,
    /// GNN depth.
    pub gnn_layers: usize,
}

impl Default for TrainPredictorConfig {
    fn default() -> Self {
        TrainPredictorConfig {
            epochs: 30,
            batch_size: 16,
            lr: 1e-3,
            seed: 7,
            hidden: 48,
            gnn_layers: 3,
        }
    }
}

/// Outcome of `predict`.
#[derive(Debug, Clone)]
pub struct PredictResult {
    /// Predicted latency in milliseconds.
    pub latency_ms: f64,
    /// Wall-clock cost of answering, in (simulated) seconds.
    pub cost_s: f64,
}

impl Nnlqp {
    /// Train the multi-platform predictor from everything currently in
    /// the database for the given platforms (the evolving-database loop:
    /// re-run this as queries accumulate). Returns the number of training
    /// samples used.
    pub fn train_predictor(
        &self,
        platform_names: &[&str],
        cfg: TrainPredictorConfig,
    ) -> Result<usize, QueryError> {
        let mut entries: Vec<(nnlqp_ir::Graph, f64, usize)> = Vec::new();
        let mut head_of = HashMap::new();
        for (head, name) in platform_names.iter().enumerate() {
            let spec = PlatformSpec::by_name(name)
                .ok_or_else(|| QueryError::UnknownPlatform(name.to_string()))?;
            head_of.insert(spec.name.clone(), head);
            let pid =
                self.db
                    .get_or_create_platform(&spec.hardware, &spec.software, spec.dtype.name());
            for rec in self.db.latencies_for_platform(pid) {
                let g = self
                    .db
                    .load_graph(rec.model_id)
                    .expect("stored graphs decode");
                let g = if g.input_shape.batch() == rec.batch_size as usize {
                    g
                } else {
                    g.rebatch(rec.batch_size as usize)
                        .expect("stored batch is valid")
                };
                entries.push((g, rec.cost_ms, head));
            }
        }
        if entries.is_empty() {
            return Ok(0);
        }
        let refs: Vec<(&nnlqp_ir::Graph, f64, usize)> =
            entries.iter().map(|(g, l, h)| (g, *l, *h)).collect();
        let ds = Dataset::build(&refs);
        let mut rng = Rng64::new(cfg.seed);
        let mut model = NnlpModel::new(
            NnlpConfig {
                hidden: cfg.hidden,
                head_hidden: cfg.hidden,
                gnn_layers: cfg.gnn_layers,
                n_heads: platform_names.len(),
                dropout: 0.05,
                ..Default::default()
            },
            ds.norm.clone(),
            &mut rng,
        );
        train(
            &mut model,
            &ds.samples,
            TrainConfig {
                epochs: cfg.epochs,
                batch_size: cfg.batch_size,
                lr: cfg.lr,
                seed: cfg.seed,
            },
        );
        *self.predictor.write() = Some(PredictorHandle { model, head_of });
        Ok(entries.len())
    }

    /// Install an externally trained predictor.
    pub fn set_predictor(&self, handle: PredictorHandle) {
        *self.predictor.write() = Some(handle);
    }

    /// True when a trained predictor is installed and has a head for the
    /// platform — i.e. the degrade-to-prediction path can serve it.
    pub fn has_predictor_for(&self, platform_name: &str) -> bool {
        let Some(spec) = PlatformSpec::by_name(platform_name) else {
            return false;
        };
        self.predictor
            .read()
            .as_ref()
            .is_some_and(|h| h.head_of.contains_key(&spec.name))
    }

    /// The paper's `NNLQP.predict`: estimate latency without touching
    /// hardware. Requires a trained predictor covering the platform.
    pub fn predict(&self, params: &QueryParams) -> Result<PredictResult, QueryError> {
        if params.model.input_shape.batch() == params.batch_size as usize {
            self.predict_effective(&params.model, params.platform.name())
        } else {
            let graph = params
                .model
                .rebatch(params.batch_size as usize)
                .map_err(|e| QueryError::BadBatch(e.to_string()))?;
            self.predict_effective(&graph, params.platform.name())
        }
    }

    /// `predict` over a graph that is already at the effective batch size
    /// — the zero-copy entry point for serving layers that resolved the
    /// graph once up front.
    pub fn predict_effective(
        &self,
        graph: &nnlqp_ir::Graph,
        platform_name: &str,
    ) -> Result<PredictResult, QueryError> {
        let spec = PlatformSpec::by_name(platform_name)
            .ok_or_else(|| QueryError::UnknownPlatform(platform_name.to_string()))?;
        let guard = self.predictor.read();
        let handle = guard
            .as_ref()
            .ok_or_else(|| QueryError::UnknownPlatform("no predictor trained".into()))?;
        let head = *handle
            .head_of
            .get(&spec.name)
            .ok_or_else(|| QueryError::UnknownPlatform(format!("no head for {}", spec.name)))?;
        let feats = extract_features(graph);
        let latency_ms = handle.model.predict_ms(&feats, head);
        Ok(PredictResult {
            latency_ms,
            cost_s: PREDICT_COST_S,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_models::ModelFamily;
    use nnlqp_sim::{DeviceFarm, Platform};

    #[test]
    fn evolving_loop_query_train_predict() {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .reps(5)
            .build();
        let t4 = Platform::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let models: Vec<nnlqp_ir::Graph> =
            nnlqp_models::generate_family(ModelFamily::SqueezeNet, 24, 3)
                .into_iter()
                .map(|m| m.graph)
                .collect();
        s.warm_cache(&models, &t4, 1).unwrap();
        let n = s
            .train_predictor(
                &["gpu-T4-trt7.1-fp32"],
                TrainPredictorConfig {
                    epochs: 40,
                    hidden: 32,
                    gnn_layers: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(n, 24);
        // Prediction on a *fresh* variant is in the right regime.
        let fresh = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 30, 99)
            .pop()
            .unwrap()
            .graph;
        let p = QueryParams::by_name(fresh.clone(), 1, "gpu-T4-trt7.1-fp32").unwrap();
        let pred = s.predict(&p).unwrap();
        let truth = s.query(&p).unwrap();
        let rel = (pred.latency_ms - truth.latency_ms).abs() / truth.latency_ms;
        assert!(
            rel < 0.6,
            "pred {} truth {}",
            pred.latency_ms,
            truth.latency_ms
        );
        assert!(pred.cost_s < 1.0);
    }

    #[test]
    fn predict_without_training_errors() {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .build();
        let p = QueryParams::by_name(
            ModelFamily::SqueezeNet.canonical().unwrap(),
            1,
            "gpu-T4-trt7.1-fp32",
        )
        .unwrap();
        assert!(s.predict(&p).is_err());
    }

    #[test]
    fn train_with_empty_db_is_zero() {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .build();
        let n = s
            .train_predictor(&["gpu-T4-trt7.1-fp32"], Default::default())
            .unwrap();
        assert_eq!(n, 0);
    }
}
