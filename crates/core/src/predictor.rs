//! `NNLQP.predict` — the prediction path, trained from the evolving
//! database.
//!
//! The facade holds the model as `Arc<dyn Predictor>`: any architecture
//! implementing `nnlqp_predict::Predictor` (GraphSAGE, the transformer
//! encoder, future variants) can be trained, installed and hot-swapped
//! behind the same `predict` / `predict_effective` / `predict_batch`
//! entry points. Embed-cache keys carry both the install stamp and the
//! architecture identity, so a swap — same architecture or cross —
//! can never serve a stale embedding.

use crate::embed_cache::EmbedKey;
use crate::interface::{Nnlqp, QueryError, QueryParams};
use nnlqp_hash::graph_fingerprint;
use nnlqp_ir::Rng64;
use nnlqp_obs::TraceClock;
use nnlqp_predict::train::{Dataset, TrainConfig};
use nnlqp_predict::{
    extract_features, NnlpConfig, NnlpModel, Predictor, PredictorKind, TransformerConfig,
    TransformerModel,
};
use nnlqp_sim::PlatformSpec;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Simulated wall-clock cost of one prediction (feature extraction + GNN
/// inference; §8.2 measures ~0.10 s per model).
pub const PREDICT_COST_S: f64 = 0.100;

/// Simulated wall-clock cost of a prediction whose graph embedding was
/// already cached: only the graph hash and the per-platform MLP head run.
pub const CACHED_PREDICT_COST_S: f64 = 0.002;

/// Simulated wall-clock cost of one FLOPs+MAC prediction (§8.2: ~0.094 s).
pub const FLOPS_MAC_COST_S: f64 = 0.094;

/// Attention heads used when the facade trains a transformer predictor.
const TRANSFORMER_ATTN_HEADS: usize = 4;

/// A trained multi-platform predictor bound to its platform→head map.
#[derive(Clone)]
pub struct PredictorHandle {
    /// The model, behind the architecture-agnostic trait.
    pub model: Arc<dyn Predictor>,
    /// Platform name → head index.
    pub head_of: HashMap<String, usize>,
    /// Unique generation stamp (embed-cache key component). Assigned from
    /// the system's generation counter at train/install time; re-stamped
    /// on every install so hot-swapping the same handle still invalidates.
    pub(crate) stamp: u64,
}

impl PredictorHandle {
    /// Handle over any [`Predictor`]. The stamp is assigned when the
    /// handle is trained by or installed into a system.
    pub fn new(model: Arc<dyn Predictor>, head_of: HashMap<String, usize>) -> Self {
        PredictorHandle {
            model,
            head_of,
            stamp: 0,
        }
    }

    /// Legacy constructor for callers holding a concrete [`NnlpModel`].
    #[deprecated(
        since = "0.1.0",
        note = "use `PredictorHandle::new(Arc::new(model), head_of)` — the facade is architecture-agnostic now"
    )]
    pub fn from_nnlp(model: NnlpModel, head_of: HashMap<String, usize>) -> Self {
        PredictorHandle::new(Arc::new(model), head_of)
    }

    /// Architecture of the wrapped model.
    pub fn kind(&self) -> PredictorKind {
        self.model.kind()
    }

    /// Freeze the wrapped model into its int8 inference form (see
    /// `nnlqp_predict::quantize_predictor`): same platform→head map, new
    /// unstamped handle — installing it via [`Nnlqp::set_predictor`]
    /// assigns a fresh stamp, and the quantized identity keys the embed
    /// cache separately from the f32 original.
    pub fn quantized(&self) -> Result<PredictorHandle, String> {
        let q = nnlqp_predict::quantize_predictor(self.model.as_ref())?;
        Ok(PredictorHandle {
            model: Arc::new(q),
            head_of: self.head_of.clone(),
            stamp: 0,
        })
    }

    /// Generation stamp (0 until trained-by or installed-into a system).
    pub fn stamp(&self) -> u64 {
        self.stamp
    }
}

/// Training options for [`Nnlqp::train_predictor`].
#[derive(Debug, Clone, Copy)]
pub struct TrainPredictorConfig {
    /// Epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
    /// Seed.
    pub seed: u64,
    /// Backbone hidden width (GNN hidden / transformer `d_model`, the
    /// latter rounded up to a multiple of the attention head count).
    pub hidden: usize,
    /// Backbone depth (SAGE layers / attention blocks).
    pub gnn_layers: usize,
    /// Architecture to train; `None` uses the system default
    /// ([`crate::NnlqpBuilder::predictor`], GraphSAGE out of the box).
    pub arch: Option<PredictorKind>,
}

impl Default for TrainPredictorConfig {
    fn default() -> Self {
        TrainPredictorConfig {
            epochs: 30,
            batch_size: 16,
            lr: 1e-3,
            seed: 7,
            hidden: 48,
            gnn_layers: 3,
            arch: None,
        }
    }
}

/// Outcome of `predict`.
#[derive(Debug, Clone)]
pub struct PredictResult {
    /// Predicted latency in milliseconds.
    pub latency_ms: f64,
    /// Wall-clock cost of answering, in (simulated) seconds.
    pub cost_s: f64,
}

/// Wall-clock stage boundaries of a traced prediction
/// ([`Nnlqp::predict_effective_staged`]): nanosecond ticks on the
/// caller's `TraceClock`, taken after the embedding was resolved (cache
/// hit or fresh backbone run) and after the platform head evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictTicks {
    /// Tick once the embedding is in hand.
    pub embed_ns: u64,
    /// Tick once the head produced the latency estimate.
    pub head_ns: u64,
}

/// Outcome of [`Nnlqp::predict_batch`].
#[derive(Debug, Clone)]
pub struct BatchPredictResult {
    /// `latencies_ms[g][p]` is the prediction for `graphs[g]` on
    /// `platform_names[p]`, in milliseconds.
    pub latencies_ms: Vec<Vec<f64>>,
    /// Total simulated wall-clock cost: one full-backbone prediction per
    /// embed miss, one cheap head-only prediction for everything else.
    pub cost_s: f64,
    /// Graphs whose embedding was served from the cache.
    pub embed_hits: u64,
    /// Graphs whose embedding had to be computed.
    pub embed_misses: u64,
}

impl Nnlqp {
    /// Train the multi-platform predictor from everything currently in
    /// the database for the given platforms (the evolving-database loop:
    /// re-run this as queries accumulate) and install it. Returns the
    /// number of training samples used.
    pub fn train_predictor(
        &self,
        platform_names: &[&str],
        cfg: TrainPredictorConfig,
    ) -> Result<usize, QueryError> {
        let Some((handle, samples)) = self.train_predictor_handle(platform_names, cfg)? else {
            return Ok(0);
        };
        self.install_predictor(handle);
        Ok(samples)
    }

    /// Train a predictor from the database *without* installing it — the
    /// entry point A/B serving uses to prepare a challenger that is only
    /// promoted once it beats the champion on live traffic. Returns
    /// `None` when the database holds no samples for the platforms.
    pub fn train_predictor_handle(
        &self,
        platform_names: &[&str],
        cfg: TrainPredictorConfig,
    ) -> Result<Option<(PredictorHandle, usize)>, QueryError> {
        let mut entries: Vec<(nnlqp_ir::Graph, f64, usize)> = Vec::new();
        let mut head_of = HashMap::new();
        for (head, name) in platform_names.iter().enumerate() {
            let spec = PlatformSpec::by_name(name)
                .ok_or_else(|| QueryError::UnknownPlatform(name.to_string()))?;
            head_of.insert(spec.name.clone(), head);
            let pid =
                self.db
                    .get_or_create_platform(&spec.hardware, &spec.software, spec.dtype.name());
            for rec in self.db.latencies_for_platform(pid) {
                let g = self
                    .db
                    .load_graph(rec.model_id)
                    .expect("stored graphs decode");
                let g = if g.input_shape.batch() == rec.batch_size as usize {
                    g
                } else {
                    g.rebatch(rec.batch_size as usize)
                        .expect("stored batch is valid")
                };
                entries.push((g, rec.cost_ms, head));
            }
        }
        if entries.is_empty() {
            return Ok(None);
        }
        let refs: Vec<(&nnlqp_ir::Graph, f64, usize)> =
            entries.iter().map(|(g, l, h)| (g, *l, *h)).collect();
        let ds = Dataset::build(&refs);
        let arch = cfg.arch.unwrap_or(self.default_arch);
        let mut rng = Rng64::new(cfg.seed);
        let mut model = fresh_model(arch, &cfg, platform_names.len(), ds.norm.clone(), &mut rng);
        model.train_in_place(
            &ds.samples,
            TrainConfig {
                epochs: cfg.epochs,
                batch_size: cfg.batch_size,
                lr: cfg.lr,
                seed: cfg.seed,
            },
        );
        let handle = PredictorHandle {
            model: Arc::from(model),
            head_of,
            stamp: self.next_stamp(),
        };
        Ok(Some((handle, entries.len())))
    }

    /// Install an externally trained predictor.
    pub fn set_predictor(&self, handle: PredictorHandle) {
        self.install_predictor(handle);
    }

    /// Swap in a predictor and re-stamp it from the generation counter
    /// while still holding the write lock, so any reader that observes
    /// the new model also observes its fresh stamp — embeddings computed
    /// by an older install (even of the very same handle) can never be
    /// served against the new heads.
    fn install_predictor(&self, mut handle: PredictorHandle) {
        let mut guard = self.predictor.write();
        handle.stamp = self.next_stamp();
        *guard = Some(handle);
    }

    /// Draw a fresh generation stamp.
    fn next_stamp(&self) -> u64 {
        self.predictor_version.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Current value of the generation counter (0 = no predictor ever
    /// trained); advanced by every [`Nnlqp::train_predictor`] /
    /// [`Nnlqp::set_predictor`] hot-swap and every
    /// [`Nnlqp::train_predictor_handle`] stamp.
    pub fn predictor_version(&self) -> u64 {
        self.predictor_version.load(Ordering::Acquire)
    }

    /// A clone of the installed predictor, if any — lets callers move a
    /// trained model between systems (e.g. into a cache-disabled baseline
    /// for benchmarking) via [`Nnlqp::set_predictor`].
    pub fn predictor_handle(&self) -> Option<PredictorHandle> {
        self.predictor.read().clone()
    }

    /// True when a trained predictor is installed and has a head for the
    /// platform — i.e. the degrade-to-prediction path can serve it.
    pub fn has_predictor_for(&self, platform_name: &str) -> bool {
        let Some(spec) = PlatformSpec::by_name(platform_name) else {
            return false;
        };
        self.predictor
            .read()
            .as_ref()
            .is_some_and(|h| h.head_of.contains_key(&spec.name))
    }

    /// The paper's `NNLQP.predict`: estimate latency without touching
    /// hardware. Requires a trained predictor covering the platform.
    pub fn predict(&self, params: &QueryParams) -> Result<PredictResult, QueryError> {
        if params.model.input_shape.batch() == params.batch_size as usize {
            self.predict_effective(&params.model, params.platform.name())
        } else {
            let graph = params
                .model
                .rebatch(params.batch_size as usize)
                .map_err(|e| QueryError::BadBatch(e.to_string()))?;
            self.predict_effective(&graph, params.platform.name())
        }
    }

    /// `predict` over a graph that is already at the effective batch size
    /// — the zero-copy entry point for serving layers that resolved the
    /// graph once up front.
    ///
    /// The expensive half of a prediction (feature extraction + backbone)
    /// is cached by `(graph_hash, batch, stamp, architecture)`; a repeat
    /// prediction of the same graph — on any platform — only runs the
    /// per-platform MLP head and reports the much smaller
    /// [`CACHED_PREDICT_COST_S`].
    pub fn predict_effective(
        &self,
        graph: &nnlqp_ir::Graph,
        platform_name: &str,
    ) -> Result<PredictResult, QueryError> {
        let guard = self.predictor.read();
        let handle = guard
            .as_ref()
            .ok_or_else(|| QueryError::UnknownPlatform("no predictor trained".into()))?;
        self.predict_effective_with(handle, graph, platform_name)
    }

    /// [`Nnlqp::predict_effective`] through an explicit handle instead of
    /// the installed predictor — the A/B layer scores champion and
    /// challenger through here, each with its own cache-key identity, so
    /// both share the embed cache without ever sharing embeddings.
    pub fn predict_effective_with(
        &self,
        handle: &PredictorHandle,
        graph: &nnlqp_ir::Graph,
        platform_name: &str,
    ) -> Result<PredictResult, QueryError> {
        self.predict_staged_inner(handle, graph, platform_name, None)
            .map(|(r, _)| r)
    }

    /// [`Nnlqp::predict_effective`] with wall-clock stage boundaries on
    /// `clock`: the returned [`PredictTicks`] split the prediction into
    /// an embed-resolution stage (cache probe, plus feature extraction
    /// and backbone on a miss) and a head-evaluation stage, so a serving
    /// trace can tile the degraded path exactly.
    pub fn predict_effective_staged(
        &self,
        graph: &nnlqp_ir::Graph,
        platform_name: &str,
        clock: &TraceClock,
    ) -> Result<(PredictResult, PredictTicks), QueryError> {
        let guard = self.predictor.read();
        let handle = guard
            .as_ref()
            .ok_or_else(|| QueryError::UnknownPlatform("no predictor trained".into()))?;
        self.predict_effective_staged_with(handle, graph, platform_name, clock)
    }

    /// [`Nnlqp::predict_effective_staged`] through an explicit handle —
    /// the staged twin of [`Nnlqp::predict_effective_with`].
    pub fn predict_effective_staged_with(
        &self,
        handle: &PredictorHandle,
        graph: &nnlqp_ir::Graph,
        platform_name: &str,
        clock: &TraceClock,
    ) -> Result<(PredictResult, PredictTicks), QueryError> {
        self.predict_staged_inner(handle, graph, platform_name, Some(clock))
            .map(|(r, ticks)| (r, ticks.expect("ticks present when clock passed")))
    }

    fn predict_staged_inner(
        &self,
        handle: &PredictorHandle,
        graph: &nnlqp_ir::Graph,
        platform_name: &str,
        wall: Option<&TraceClock>,
    ) -> Result<(PredictResult, Option<PredictTicks>), QueryError> {
        let spec = PlatformSpec::by_name(platform_name)
            .ok_or_else(|| QueryError::UnknownPlatform(platform_name.to_string()))?;
        let head = *handle
            .head_of
            .get(&spec.name)
            .ok_or_else(|| QueryError::UnknownPlatform(format!("no head for {}", spec.name)))?;
        let key = embed_key(graph, handle);
        if let Some(emb) = self.embed_cache.get(&key) {
            self.m_embed_hits.inc();
            let embed_ns = wall.map(TraceClock::now_ns);
            let latency_ms = handle.model.head_eval(&emb, head);
            let ticks = wall.map(|c| PredictTicks {
                embed_ns: embed_ns.unwrap_or(0),
                head_ns: c.now_ns(),
            });
            return Ok((
                PredictResult {
                    latency_ms,
                    cost_s: CACHED_PREDICT_COST_S,
                },
                ticks,
            ));
        }
        self.m_embed_misses.inc();
        let feats = extract_features(graph);
        let emb = Arc::new(handle.model.embed(&feats));
        self.embed_cache.insert(key, Arc::clone(&emb));
        self.g_embed_len.set(self.embed_cache.len() as f64);
        let embed_ns = wall.map(TraceClock::now_ns);
        let latency_ms = handle.model.head_eval(&emb, head);
        let ticks = wall.map(|c| PredictTicks {
            embed_ns: embed_ns.unwrap_or(0),
            head_ns: c.now_ns(),
        });
        Ok((
            PredictResult {
                latency_ms,
                cost_s: PREDICT_COST_S,
            },
            ticks,
        ))
    }

    /// Batched multi-platform prediction: hash and cache-probe every
    /// graph, compute the missing embeddings in parallel (each runs the
    /// backbone exactly once), then fan each embedding across all
    /// requested platform heads. Numerically identical to calling
    /// [`Nnlqp::predict`] per `(graph, platform)` pair — see the
    /// `predict_fastpath` parity suite — while paying the backbone cost
    /// per *graph* instead of per *pair*.
    pub fn predict_batch(
        &self,
        graphs: &[nnlqp_ir::Graph],
        platform_names: &[&str],
    ) -> Result<BatchPredictResult, QueryError> {
        let mut heads = Vec::with_capacity(platform_names.len());
        let guard = self.predictor.read();
        let handle = guard
            .as_ref()
            .ok_or_else(|| QueryError::UnknownPlatform("no predictor trained".into()))?;
        for name in platform_names {
            let spec = PlatformSpec::by_name(name)
                .ok_or_else(|| QueryError::UnknownPlatform(name.to_string()))?;
            let head = *handle
                .head_of
                .get(&spec.name)
                .ok_or_else(|| QueryError::UnknownPlatform(format!("no head for {}", spec.name)))?;
            heads.push(head);
        }

        // Serial probe pass: hash each graph and consult the cache.
        let keys: Vec<EmbedKey> = graphs.iter().map(|g| embed_key(g, handle)).collect();
        let mut embeddings: Vec<Option<crate::embed_cache::SharedEmbedding>> =
            keys.iter().map(|k| self.embed_cache.get(k)).collect();
        let hits = embeddings.iter().flatten().count() as u64;
        self.m_embed_hits.add(hits);

        // Backbone pass over the misses only, embarrassingly parallel —
        // the per-graph scratch arena keeps each worker allocation-light.
        let missing: Vec<usize> = (0..graphs.len())
            .filter(|&i| embeddings[i].is_none())
            .collect();
        self.m_embed_misses.add(missing.len() as u64);
        let fresh: Vec<crate::embed_cache::SharedEmbedding> = missing
            .par_iter()
            .map(|&i| {
                let feats = extract_features(&graphs[i]);
                Arc::new(handle.model.embed(&feats))
            })
            .collect();
        for (&i, emb) in missing.iter().zip(&fresh) {
            self.embed_cache.insert(keys[i].clone(), Arc::clone(emb));
            embeddings[i] = Some(Arc::clone(emb));
        }
        self.g_embed_len.set(self.embed_cache.len() as f64);

        // Head fan-out: every embedding against every requested platform.
        let latencies_ms: Vec<Vec<f64>> = embeddings
            .par_iter()
            .map(|emb| {
                let emb = emb.as_ref().expect("all embeddings resolved");
                let mut scratch = nnlqp_predict::Scratch::new();
                heads
                    .iter()
                    .map(|&h| handle.model.head_eval_with(emb, h, &mut scratch))
                    .collect()
            })
            .collect();

        let misses = missing.len() as u64;
        let total = (graphs.len() * platform_names.len()) as u64;
        Ok(BatchPredictResult {
            latencies_ms,
            cost_s: misses as f64 * PREDICT_COST_S
                + total.saturating_sub(misses) as f64 * CACHED_PREDICT_COST_S,
            embed_hits: hits,
            embed_misses: misses,
        })
    }
}

/// Cache key of a graph under a specific predictor handle: graph + batch
/// + generation stamp + architecture identity.
///
/// Keyed with the four-lane [`nnlqp_hash::graph_fingerprint`] rather than
/// the Merkle graph hash: the embed cache is in-process only (never
/// persisted, so the database's hash contract doesn't apply) and the key
/// is recomputed on every single prediction, where the fingerprint's
/// packed multi-lane absorb is several times cheaper at the same 64-bit
/// collision budget. The fingerprint is order-dependent, so isomorphic
/// graphs built in different branch order may miss the cache — a spurious
/// recompute, never a wrong hit.
fn embed_key(graph: &nnlqp_ir::Graph, handle: &PredictorHandle) -> EmbedKey {
    EmbedKey {
        graph_hash: graph_fingerprint(graph),
        batch: graph.input_shape.batch() as u32,
        version: handle.stamp,
        arch: handle.model.identity(),
    }
}

/// Fresh, untrained model of the requested architecture, sized from the
/// facade-level training config.
fn fresh_model(
    arch: PredictorKind,
    cfg: &TrainPredictorConfig,
    n_heads: usize,
    norm: nnlqp_predict::Normalizer,
    rng: &mut Rng64,
) -> Box<dyn Predictor> {
    match arch {
        PredictorKind::Sage => Box::new(NnlpModel::new(
            NnlpConfig {
                hidden: cfg.hidden,
                head_hidden: cfg.hidden,
                gnn_layers: cfg.gnn_layers,
                n_heads,
                dropout: 0.05,
                ..Default::default()
            },
            norm,
            rng,
        )),
        PredictorKind::Transformer => {
            let d_model =
                cfg.hidden.div_ceil(TRANSFORMER_ATTN_HEADS).max(1) * TRANSFORMER_ATTN_HEADS;
            Box::new(TransformerModel::new(
                TransformerConfig {
                    d_model,
                    layers: cfg.gnn_layers,
                    attn_heads: TRANSFORMER_ATTN_HEADS,
                    head_hidden: cfg.hidden,
                    n_heads,
                    dropout: 0.05,
                    ..Default::default()
                },
                norm,
                rng,
            ))
        }
        // `PredictorKind` is #[non_exhaustive]; new variants must be
        // wired up here explicitly.
        other => unimplemented!("no facade constructor for architecture {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_models::ModelFamily;
    use nnlqp_sim::{DeviceFarm, Platform};

    #[test]
    fn evolving_loop_query_train_predict() {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .reps(5)
            .build();
        let t4 = Platform::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let models: Vec<nnlqp_ir::Graph> =
            nnlqp_models::generate_family(ModelFamily::SqueezeNet, 24, 3)
                .into_iter()
                .map(|m| m.graph)
                .collect();
        s.warm_cache(&models, &t4, 1).unwrap();
        let n = s
            .train_predictor(
                &["gpu-T4-trt7.1-fp32"],
                TrainPredictorConfig {
                    epochs: 40,
                    hidden: 32,
                    gnn_layers: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(n, 24);
        // Prediction on a *fresh* variant is in the right regime.
        let fresh = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 30, 99)
            .pop()
            .unwrap()
            .graph;
        let p = QueryParams::by_name(fresh.clone(), 1, "gpu-T4-trt7.1-fp32").unwrap();
        let pred = s.predict(&p).unwrap();
        let truth = s.query(&p).unwrap();
        let rel = (pred.latency_ms - truth.latency_ms).abs() / truth.latency_ms;
        assert!(
            rel < 0.6,
            "pred {} truth {}",
            pred.latency_ms,
            truth.latency_ms
        );
        assert!(pred.cost_s < 1.0);
    }

    #[test]
    fn predict_without_training_errors() {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .build();
        let p = QueryParams::by_name(
            ModelFamily::SqueezeNet.canonical().unwrap(),
            1,
            "gpu-T4-trt7.1-fp32",
        )
        .unwrap();
        assert!(s.predict(&p).is_err());
    }

    #[test]
    fn train_with_empty_db_is_zero() {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .build();
        let n = s
            .train_predictor(&["gpu-T4-trt7.1-fp32"], Default::default())
            .unwrap();
        assert_eq!(n, 0);
        assert!(s
            .train_predictor_handle(&["gpu-T4-trt7.1-fp32"], Default::default())
            .unwrap()
            .is_none());
    }

    /// A tiny trained system plus a disjoint probe graph.
    fn trained_system() -> (Nnlqp, nnlqp_ir::Graph) {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .reps(3)
            .build();
        let t4 = Platform::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let models: Vec<nnlqp_ir::Graph> =
            nnlqp_models::generate_family(ModelFamily::SqueezeNet, 8, 3)
                .into_iter()
                .map(|m| m.graph)
                .collect();
        s.warm_cache(&models, &t4, 1).unwrap();
        s.train_predictor(
            &["gpu-T4-trt7.1-fp32", "cpu-openppl-fp32"],
            TrainPredictorConfig {
                epochs: 3,
                hidden: 16,
                gnn_layers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let probe = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 20, 77)
            .pop()
            .unwrap()
            .graph;
        (s, probe)
    }

    #[test]
    fn repeat_prediction_hits_embed_cache_and_is_identical() {
        let (s, probe) = trained_system();
        let p = QueryParams::by_name(probe, 1, "gpu-T4-trt7.1-fp32").unwrap();
        let first = s.predict(&p).unwrap();
        assert_eq!(first.cost_s, PREDICT_COST_S);
        let second = s.predict(&p).unwrap();
        assert_eq!(
            second.latency_ms, first.latency_ms,
            "hit must be bit-identical"
        );
        assert_eq!(second.cost_s, CACHED_PREDICT_COST_S);
        // Same graph, other platform: backbone shared, head differs.
        let cross = s.predict_effective(&p.model, "cpu-openppl-fp32").unwrap();
        assert_eq!(cross.cost_s, CACHED_PREDICT_COST_S);
        let snap = s.registry().snapshot();
        assert_eq!(
            snap.counter(crate::metric_names::EMBED_HITS),
            2,
            "repeat + cross-platform both hit"
        );
        assert_eq!(snap.counter(crate::metric_names::EMBED_MISSES), 1);
    }

    #[test]
    fn hot_swap_invalidates_embed_cache() {
        let (s, probe) = trained_system();
        let p = QueryParams::by_name(probe, 1, "gpu-T4-trt7.1-fp32").unwrap();
        let v0 = s.predictor_version();
        s.predict(&p).unwrap(); // populate the cache
                                // Hot-swap the same handle back in: the re-stamp alone must
                                // force the next prediction down the full-backbone path.
        let handle = s.predictor.read().clone().unwrap();
        s.set_predictor(handle);
        assert_eq!(s.predictor_version(), v0 + 1);
        let after = s.predict(&p).unwrap();
        assert_eq!(
            after.cost_s, PREDICT_COST_S,
            "stale embedding must not serve"
        );
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter(crate::metric_names::EMBED_MISSES), 2);
    }

    #[test]
    fn trains_transformer_architecture_on_request() {
        let (s, probe) = trained_system();
        assert_eq!(
            s.predictor_handle().unwrap().kind(),
            PredictorKind::Sage,
            "default architecture is GraphSAGE"
        );
        let n = s
            .train_predictor(
                &["gpu-T4-trt7.1-fp32"],
                TrainPredictorConfig {
                    epochs: 2,
                    hidden: 16,
                    gnn_layers: 2,
                    arch: Some(PredictorKind::Transformer),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(n, 8);
        let handle = s.predictor_handle().unwrap();
        assert_eq!(handle.kind(), PredictorKind::Transformer);
        let p = QueryParams::by_name(probe, 1, "gpu-T4-trt7.1-fp32").unwrap();
        let pred = s.predict(&p).unwrap();
        assert!(pred.latency_ms.is_finite() && pred.latency_ms > 0.0);
        // Checkpoint round-trips through the kind-tagged JSON form.
        let json = handle.model.to_json();
        let back = nnlqp_predict::predictor_from_json(&json).unwrap();
        assert_eq!(back.kind(), PredictorKind::Transformer);
    }

    #[test]
    fn cross_architecture_handles_never_share_embeddings() {
        let (s, probe) = trained_system();
        let sage = s.predictor_handle().unwrap();
        let (transformer, _) = s
            .train_predictor_handle(
                &["gpu-T4-trt7.1-fp32", "cpu-openppl-fp32"],
                TrainPredictorConfig {
                    epochs: 2,
                    hidden: 16,
                    gnn_layers: 2,
                    arch: Some(PredictorKind::Transformer),
                    ..Default::default()
                },
            )
            .unwrap()
            .unwrap();
        assert_ne!(sage.model.identity(), transformer.model.identity());
        // Warm the cache through the sage handle, then predict through
        // the transformer handle: it must pay the full backbone cost and
        // produce its own (different) answer, never the cached sage
        // embedding.
        let a = s
            .predict_effective_with(&sage, &probe, "gpu-T4-trt7.1-fp32")
            .unwrap();
        assert_eq!(a.cost_s, PREDICT_COST_S);
        let b = s
            .predict_effective_with(&transformer, &probe, "gpu-T4-trt7.1-fp32")
            .unwrap();
        assert_eq!(b.cost_s, PREDICT_COST_S, "cross-arch must be a miss");
        assert!(a.latency_ms > 0.0 && b.latency_ms > 0.0);
        // Each handle's repeat prediction is a hit on its own entry.
        assert_eq!(
            s.predict_effective_with(&sage, &probe, "gpu-T4-trt7.1-fp32")
                .unwrap()
                .cost_s,
            CACHED_PREDICT_COST_S
        );
        assert_eq!(
            s.predict_effective_with(&transformer, &probe, "gpu-T4-trt7.1-fp32")
                .unwrap()
                .cost_s,
            CACHED_PREDICT_COST_S
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_nnlp_handle_shim_still_works() {
        let (s, probe) = trained_system();
        // Rewrap the installed model as a concrete NnlpModel checkpoint
        // and re-install through the legacy shim.
        let installed = s.predictor_handle().unwrap();
        let model = NnlpModel::from_json(&installed.model.to_json()).unwrap();
        let shim = PredictorHandle::from_nnlp(model, installed.head_of.clone());
        assert_eq!(shim.kind(), PredictorKind::Sage);
        s.set_predictor(shim);
        let p = QueryParams::by_name(probe, 1, "gpu-T4-trt7.1-fp32").unwrap();
        let via_shim = s.predict(&p).unwrap();
        let direct = s
            .predict_effective_with(&installed, &p.model, "gpu-T4-trt7.1-fp32")
            .unwrap();
        assert_eq!(via_shim.latency_ms, direct.latency_ms);
    }

    #[test]
    fn zero_capacity_cache_always_misses() {
        let s = Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 1))
            .reps(3)
            .embed_cache(0)
            .build();
        let t4 = Platform::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let models: Vec<nnlqp_ir::Graph> =
            nnlqp_models::generate_family(ModelFamily::SqueezeNet, 6, 3)
                .into_iter()
                .map(|m| m.graph)
                .collect();
        s.warm_cache(&models, &t4, 1).unwrap();
        s.train_predictor(
            &["gpu-T4-trt7.1-fp32"],
            TrainPredictorConfig {
                epochs: 2,
                hidden: 16,
                gnn_layers: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let p = QueryParams::by_name(models[0].clone(), 1, "gpu-T4-trt7.1-fp32").unwrap();
        let a = s.predict(&p).unwrap();
        let b = s.predict(&p).unwrap();
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(b.cost_s, PREDICT_COST_S, "caching disabled");
        assert_eq!(
            s.registry()
                .snapshot()
                .counter(crate::metric_names::EMBED_MISSES),
            2
        );
    }

    #[test]
    fn predict_batch_shares_backbone_across_heads() {
        let (s, probe) = trained_system();
        let more = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 21, 78)
            .pop()
            .unwrap()
            .graph;
        let graphs = vec![probe, more];
        let platforms = ["gpu-T4-trt7.1-fp32", "cpu-openppl-fp32"];
        let batch = s.predict_batch(&graphs, &platforms).unwrap();
        assert_eq!(batch.latencies_ms.len(), 2);
        assert_eq!(batch.embed_misses, 2, "one backbone run per graph");
        assert_eq!(batch.embed_hits, 0);
        // Bit-for-bit equal to the per-call path served from the cache
        // the batch populated.
        for (g, row) in graphs.iter().zip(&batch.latencies_ms) {
            for (name, &want) in platforms.iter().zip(row) {
                let got = s.predict_effective(g, name).unwrap();
                assert_eq!(got.latency_ms, want);
                assert_eq!(got.cost_s, CACHED_PREDICT_COST_S);
            }
        }
        // Re-batching the same graphs is all hits and cheaper.
        let again = s.predict_batch(&graphs, &platforms).unwrap();
        assert_eq!(again.embed_hits, 2);
        assert_eq!(again.latencies_ms, batch.latencies_ms);
        assert!(again.cost_s < batch.cost_s);
    }

    #[test]
    fn predict_batch_rejects_unknown_platform() {
        let (s, probe) = trained_system();
        assert!(s.predict_batch(&[probe], &["quantum-coprocessor"]).is_err());
    }
}
