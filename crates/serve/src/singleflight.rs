//! Singleflight coalescing: concurrent misses on one key share one
//! measurement.
//!
//! A farm measurement costs minutes of (simulated) deployment wall-clock.
//! When eight clients miss on the same `(graph, platform, batch)` at once,
//! running eight measurements is pure waste — they would all return the
//! same key-seeded ground truth. The first requester becomes the flight's
//! *leader* and enqueues the measurement; everyone else becomes a
//! *follower* and parks on the flight until the leader's worker publishes
//! the shared result.
//!
//! Completion removes the flight from the table *before* publishing, so a
//! requester arriving after completion starts a fresh flight — by then the
//! result is already in the database and the hot cache, so it resolves as
//! a hit without reaching this module.

use parking_lot::{Condvar, Mutex};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// One in-flight computation; followers park here.
pub struct Flight<V> {
    slot: Mutex<Option<V>>,
    done: Condvar,
}

impl<V: Clone> Flight<V> {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Block until the leader's result is published, then share it.
    pub fn wait(&self) -> V {
        let mut slot = self.slot.lock();
        loop {
            if let Some(v) = slot.as_ref() {
                return v.clone();
            }
            self.done.wait(&mut slot);
        }
    }

    fn publish(&self, value: V) {
        *self.slot.lock() = Some(value);
        self.done.notify_all();
    }
}

/// The flight table.
pub struct SingleFlight<K, V> {
    flights: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

/// What `begin` made of the caller.
pub enum Role<V> {
    /// First requester for the key: must ensure the flight is eventually
    /// [`SingleFlight::complete`]d (directly or via a worker), then may
    /// [`Flight::wait`] on it like anyone else.
    Leader(Arc<Flight<V>>),
    /// The key is already in flight: wait for the shared result.
    Follower(Arc<Flight<V>>),
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    pub fn new() -> Self {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Join (or open) the flight for `key`.
    pub fn begin(&self, key: &K) -> Role<V> {
        let mut flights = self.flights.lock();
        match flights.entry(key.clone()) {
            Entry::Occupied(e) => Role::Follower(Arc::clone(e.get())),
            Entry::Vacant(e) => Role::Leader(Arc::clone(e.insert(Arc::new(Flight::new())))),
        }
    }

    /// Publish the result, waking every waiter; the key is free again.
    /// Harmless when the key has no flight (already completed).
    pub fn complete(&self, key: &K, value: V) {
        let flight = self.flights.lock().remove(key);
        if let Some(f) = flight {
            f.publish(value);
        }
    }

    /// Keys currently in flight.
    pub fn in_flight(&self) -> usize {
        self.flights.lock().len()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn second_requester_is_a_follower() {
        let sf: SingleFlight<u64, u32> = SingleFlight::new();
        let leader = match sf.begin(&1) {
            Role::Leader(f) => f,
            Role::Follower(_) => panic!("first requester must lead"),
        };
        assert!(matches!(sf.begin(&1), Role::Follower(_)));
        assert!(matches!(sf.begin(&2), Role::Leader(_)));
        assert_eq!(sf.in_flight(), 2);
        sf.complete(&1, 42);
        assert_eq!(leader.wait(), 42);
        assert_eq!(sf.in_flight(), 1);
        // Completed key restarts fresh.
        assert!(matches!(sf.begin(&1), Role::Leader(_)));
    }

    #[test]
    fn all_followers_share_one_result() {
        let sf: Arc<SingleFlight<u64, u32>> = Arc::new(SingleFlight::new());
        let computations = Arc::new(AtomicUsize::new(0));
        // The leader publishes only after every thread has joined the
        // flight, so exactly one computation is possible.
        let begun = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let sf = sf.clone();
                    let computations = computations.clone();
                    let begun = begun.clone();
                    s.spawn(move || {
                        let role = sf.begin(&7);
                        begun.fetch_add(1, Ordering::SeqCst);
                        match role {
                            Role::Leader(f) => {
                                while begun.load(Ordering::SeqCst) < 8 {
                                    std::thread::yield_now();
                                }
                                computations.fetch_add(1, Ordering::SeqCst);
                                sf.complete(&7, 99);
                                f.wait()
                            }
                            Role::Follower(f) => f.wait(),
                        }
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 99);
            }
        });
        assert_eq!(computations.load(Ordering::SeqCst), 1);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn complete_without_flight_is_a_noop() {
        let sf: SingleFlight<u64, u32> = SingleFlight::new();
        sf.complete(&5, 1);
        assert_eq!(sf.in_flight(), 0);
    }
}
