//! nnlqp-serve: a long-running concurrent query service over the NNLQP
//! facade.
//!
//! The paper's system is a *service*: many clients query latencies for
//! `(model, platform, batch)` keys, the database keeps evolving with new
//! ground truth, and the predictor absorbs that growth. This crate
//! supplies the serving layer the library crates lack:
//!
//! - [`LatencyService`] — worker pool behind a bounded submission queue
//!   (admission control: a full queue rejects instead of queueing
//!   unboundedly);
//! - [`ShardedLru`] — in-memory hot cache in front of `nnlqp-db`;
//! - [`SingleFlight`] — concurrent misses on one key share a single farm
//!   measurement;
//! - degrade-to-predict — under measurement backlog, requests are served
//!   an NNLP prediction tagged approximate rather than waiting;
//! - an evolving-database loop that retrains predictor heads — on a
//!   fresh-sample cadence, or on *drift alerts* from the shadow
//!   evaluator (see below), hot-swapping them atomically;
//! - [`ServeMetrics`] — terminal-class counters (they partition the
//!   request stream) plus a served-latency histogram and live gauges for
//!   queue depth and hot-cache occupancy;
//! - quality monitoring ([`ServeConfig::monitor`]) — a shadow evaluator
//!   re-predicts a sample of measurement-backed answers, maintains
//!   per-platform rolling MAPE / Acc(10%) / Acc(5%) windows, and raises
//!   retrain-on-drift signals; plus a bounded JSONL event log and a
//!   periodic Prometheus text-format metrics writer;
//! - A/B champion selection ([`ServeConfig::ab`]) — the shadow evaluator
//!   also scores a challenger predictor (typically the other
//!   architecture); when the champion drifts and the challenger is
//!   measurably better, the challenger is promoted to per-platform
//!   champion (`predictor_promoted` event, `serve.predictor_promotions`
//!   counter) and serves that platform's degrade path from then on.
//!
//! The `serve-bench` binary drives the service with a configurable load
//! generator and prints the metrics snapshot as JSON.

pub mod cache;
pub mod metrics;
pub mod openloop;
pub mod service;
pub mod singleflight;

pub use cache::{CacheKey, ShardedLru};
pub use metrics::{
    metric_names, wall_bounds_ms, MetricsSnapshot, ServeMetrics, HISTOGRAM_BOUNDS_MS, STAGE_NAMES,
};
pub use openloop::{find_knee, run_rate, run_sweep, OpenLoopConfig, RateReport};
pub use service::{AbConfig, LatencyService, ServeConfig, ServeError, Served, Source};
pub use singleflight::{Flight, Role, SingleFlight};
