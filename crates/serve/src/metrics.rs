//! Service metrics: terminal-outcome counters and a latency histogram,
//! registered in the workspace-wide [`MetricsRegistry`].
//!
//! Every request ends in exactly one terminal class — hot-cache hit,
//! database hit, measured miss, degraded prediction, rejection, or
//! validation error — so the counters balance against `requests` at any
//! quiescent point. `coalesced`, `measured` and the retrain counters are
//! informational overlays, not terminal classes.
//!
//! [`ServeMetrics`] holds pre-resolved handles into a registry — usually
//! the facade's own ([`crate::LatencyService::start`] passes
//! `system.registry()`), so one snapshot shows the serving tiers next to
//! the query-stage histograms.

use nnlqp_obs::{log_bounds, Counter, Gauge, Histogram, MetricsRegistry, RequestTrace};
use std::collections::HashMap;
use std::sync::Arc;

/// Upper bucket bounds for served latencies, in milliseconds. Values above
/// the last bound land in the overflow bucket.
pub const HISTOGRAM_BOUNDS_MS: [f64; 15] = [
    0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0,
];

/// Every stage name the request tracer can mark (see
/// `service.rs`): each gets its own log-bucketed duration histogram.
pub const STAGE_NAMES: [&str; 14] = [
    "resolve",
    "hot_cache",
    "db_lookup",
    "shadow_eval",
    "admission",
    "embed_cache",
    "predict_head",
    "enqueue",
    "queue_wait",
    "measure",
    "db_write",
    "publish",
    "response",
    "coalesce_wait",
];

/// Log-spaced bucket bounds for wall-clock durations, in milliseconds:
/// 1 µs to ~11.8 s at a √2 ratio (≈ ±20% quantile resolution), so p999
/// stays readable across the whole range — the linear
/// [`HISTOGRAM_BOUNDS_MS`] can't resolve the tail.
pub fn wall_bounds_ms() -> Vec<f64> {
    log_bounds(0.001, std::f64::consts::SQRT_2, 48)
}

/// Registry names of the serving layer's metrics.
pub mod metric_names {
    /// Counter: requests submitted (valid or not).
    pub const REQUESTS: &str = "serve.requests";
    /// Counter: served from the in-memory LRU.
    pub const HOT_HITS: &str = "serve.hot_hits";
    /// Counter: served from the evolving database.
    pub const DB_HITS: &str = "serve.db_hits";
    /// Counter: served by a farm measurement.
    pub const MISSES: &str = "serve.misses";
    /// Counter: misses that joined an existing flight.
    pub const COALESCED: &str = "serve.coalesced";
    /// Counter: farm measurements executed by the worker pool.
    pub const MEASURED: &str = "serve.measured";
    /// Counter: served an approximate prediction under backlog.
    pub const DEGRADED: &str = "serve.degraded";
    /// Counter: turned away (queue full or shutting down).
    pub const REJECTED: &str = "serve.rejected";
    /// Counter: rejected by the strict-mode admission analyzer before any
    /// measurement or database write.
    pub const LINT_REJECTED: &str = "serve.lint_rejected";
    /// Counter: invalid requests.
    pub const ERRORS: &str = "serve.errors";
    /// Counter: predictor retrains completed.
    pub const RETRAINS: &str = "serve.retrains";
    /// Counter: training samples consumed across retrains.
    pub const RETRAIN_SAMPLES: &str = "serve.retrain_samples";
    /// Counter: retrains triggered by a drift alert (subset of
    /// `serve.retrains`; the rest fired on the sample-count cadence).
    pub const DRIFT_RETRAINS: &str = "serve.drift_retrains";
    /// Counter: A/B challenger promotions to per-platform champion.
    pub const PREDICTOR_PROMOTIONS: &str = "serve.predictor_promotions";
    /// Counter: quantized champions installed after passing the
    /// publish-time accuracy parity gate.
    pub const QUANT_PUBLISHES: &str = "serve.quant_publishes";
    /// Counter: quantized candidates rejected by the parity gate (the f32
    /// champion kept serving).
    pub const QUANT_REJECTED: &str = "serve.quant_rejected";
    /// Gauge (per platform/arch label set): windowed MAPE of the A/B
    /// challenger, percent (the champion's lives in the quality monitor).
    pub const AB_CHALLENGER_MAPE: &str = "serve.ab_challenger_mape";
    /// Gauge (per platform/arch label set): pairs in the challenger's
    /// rolling window.
    pub const AB_CHALLENGER_SAMPLES: &str = "serve.ab_challenger_samples";
    /// Histogram: served latencies in milliseconds.
    pub const LATENCY_MS: &str = "serve.latency_ms";
    /// Histogram (log buckets): end-to-end request wall time in
    /// milliseconds, from trace begin to last stage boundary.
    pub const REQUEST_WALL_MS: &str = "serve.request_wall_ms";
    /// Histogram (log buckets): enqueue→dequeue wait on the measurement
    /// queue, milliseconds.
    pub const QUEUE_WAIT_MS: &str = "serve.queue_wait_ms";
    /// Histogram-name prefix (log buckets): per-stage wall time in
    /// milliseconds; one series per [`super::STAGE_NAMES`] entry.
    pub const STAGE_MS_PREFIX: &str = "serve.stage_ms.";
    /// Gauge: jobs waiting on the measurement queue.
    pub const QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Gauge: hot-cache entries.
    pub const HOT_CACHE_LEN: &str = "serve.hot_cache_len";
}

/// Live handles to the service's counters; cheap to bump from any thread.
pub struct ServeMetrics {
    requests: Arc<Counter>,
    hot_hits: Arc<Counter>,
    db_hits: Arc<Counter>,
    misses: Arc<Counter>,
    coalesced: Arc<Counter>,
    measured: Arc<Counter>,
    degraded: Arc<Counter>,
    rejected: Arc<Counter>,
    lint_rejected: Arc<Counter>,
    errors: Arc<Counter>,
    retrains: Arc<Counter>,
    retrain_samples: Arc<Counter>,
    drift_retrains: Arc<Counter>,
    predictor_promotions: Arc<Counter>,
    quant_publishes: Arc<Counter>,
    quant_rejected: Arc<Counter>,
    latency: Arc<Histogram>,
    request_wall: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
    stage: HashMap<&'static str, Arc<Histogram>>,
    queue_depth: Arc<Gauge>,
    hot_cache_len: Arc<Gauge>,
}

macro_rules! bump {
    ($($name:ident),* $(,)?) => {
        $(pub(crate) fn $name(&self) {
            self.$name.inc();
        })*
    };
}

impl Default for ServeMetrics {
    /// Metrics over a private registry (tests and standalone use).
    fn default() -> Self {
        Self::new(&MetricsRegistry::new())
    }
}

impl ServeMetrics {
    /// Register the service's counters and histogram in `registry`.
    /// Re-registering over the same registry resumes the existing series
    /// (handles are get-or-create).
    pub fn new(registry: &MetricsRegistry) -> Self {
        let wall = wall_bounds_ms();
        ServeMetrics {
            requests: registry.counter(metric_names::REQUESTS),
            hot_hits: registry.counter(metric_names::HOT_HITS),
            db_hits: registry.counter(metric_names::DB_HITS),
            misses: registry.counter(metric_names::MISSES),
            coalesced: registry.counter(metric_names::COALESCED),
            measured: registry.counter(metric_names::MEASURED),
            degraded: registry.counter(metric_names::DEGRADED),
            rejected: registry.counter(metric_names::REJECTED),
            lint_rejected: registry.counter(metric_names::LINT_REJECTED),
            errors: registry.counter(metric_names::ERRORS),
            retrains: registry.counter(metric_names::RETRAINS),
            retrain_samples: registry.counter(metric_names::RETRAIN_SAMPLES),
            drift_retrains: registry.counter(metric_names::DRIFT_RETRAINS),
            predictor_promotions: registry.counter(metric_names::PREDICTOR_PROMOTIONS),
            quant_publishes: registry.counter(metric_names::QUANT_PUBLISHES),
            quant_rejected: registry.counter(metric_names::QUANT_REJECTED),
            latency: registry.histogram(metric_names::LATENCY_MS, &HISTOGRAM_BOUNDS_MS),
            request_wall: registry.histogram(metric_names::REQUEST_WALL_MS, &wall),
            queue_wait: registry.histogram(metric_names::QUEUE_WAIT_MS, &wall),
            stage: STAGE_NAMES
                .iter()
                .map(|&name| {
                    let series = format!("{}{name}", metric_names::STAGE_MS_PREFIX);
                    (name, registry.histogram(&series, &wall))
                })
                .collect(),
            queue_depth: registry.gauge(metric_names::QUEUE_DEPTH),
            hot_cache_len: registry.gauge(metric_names::HOT_CACHE_LEN),
        }
    }

    /// Feed a finished request trace into the wall-time and per-stage
    /// histograms. Stage names outside [`STAGE_NAMES`] are ignored (the
    /// tracer only emits known names; this keeps the series set bounded).
    pub fn record_trace(&self, trace: &RequestTrace) {
        self.request_wall.observe(trace.total_ms());
        for s in &trace.stages {
            if let Some(h) = self.stage.get(s.name) {
                h.observe(s.dur_ns as f64 / 1.0e6);
            }
        }
    }

    /// Record one enqueue→dequeue wait on the measurement queue.
    pub(crate) fn observe_queue_wait(&self, ms: f64) {
        self.queue_wait.observe(ms);
    }

    bump!(
        requests,
        hot_hits,
        db_hits,
        misses,
        coalesced,
        measured,
        degraded,
        rejected,
        lint_rejected,
        errors,
        drift_retrains,
        predictor_promotions,
        quant_publishes,
        quant_rejected,
    );

    pub(crate) fn retrained(&self, samples: u64) {
        self.retrains.inc();
        self.retrain_samples.add(samples);
    }

    pub(crate) fn set_queue_depth(&self, depth: f64) {
        self.queue_depth.set(depth);
    }

    pub(crate) fn set_hot_cache_len(&self, len: f64) {
        self.hot_cache_len.set(len);
    }

    pub(crate) fn observe_latency(&self, ms: f64) {
        self.latency.observe(ms);
    }

    /// Point-in-time copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let h = self.latency.snapshot();
        let latency_histogram = h
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let le = h.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                (le, count)
            })
            .collect();
        MetricsSnapshot {
            requests: self.requests.get(),
            hot_hits: self.hot_hits.get(),
            db_hits: self.db_hits.get(),
            misses: self.misses.get(),
            coalesced: self.coalesced.get(),
            measured: self.measured.get(),
            degraded: self.degraded.get(),
            rejected: self.rejected.get(),
            lint_rejected: self.lint_rejected.get(),
            errors: self.errors.get(),
            retrains: self.retrains.get(),
            retrain_samples: self.retrain_samples.get(),
            predictor_promotions: self.predictor_promotions.get(),
            quant_publishes: self.quant_publishes.get(),
            quant_rejected: self.quant_rejected.get(),
            latency_histogram,
        }
    }
}

/// A point-in-time copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests submitted (valid or not).
    pub requests: u64,
    /// Served from the in-memory LRU.
    pub hot_hits: u64,
    /// Served from the evolving database (and promoted into the LRU).
    pub db_hits: u64,
    /// Served by a farm measurement — fresh or shared through a flight.
    pub misses: u64,
    /// Subset of `misses` that joined an existing flight instead of
    /// enqueueing their own measurement.
    pub coalesced: u64,
    /// Farm measurements actually executed by the worker pool.
    pub measured: u64,
    /// Served an approximate NNLP prediction because the measurement
    /// backlog was over the degrade threshold.
    pub degraded: u64,
    /// Turned away: queue full or service shutting down.
    pub rejected: u64,
    /// Rejected by the strict-mode admission analyzer (error-severity
    /// findings), before any farm measurement or database write.
    pub lint_rejected: u64,
    /// Invalid requests (unknown platform, bad batch).
    pub errors: u64,
    /// Predictor retrains completed by the evolving-database loop.
    pub retrains: u64,
    /// Total training samples consumed across retrains.
    pub retrain_samples: u64,
    /// A/B challenger promotions to per-platform champion (informational
    /// overlay, like `retrains` — not a terminal request class).
    pub predictor_promotions: u64,
    /// Quantized champions installed after passing the publish-time
    /// accuracy parity gate.
    pub quant_publishes: u64,
    /// Quantized candidates rejected by the parity gate.
    pub quant_rejected: u64,
    /// `(upper_bound_ms, count)` pairs; the last bound is `+inf`.
    pub latency_histogram: Vec<(f64, u64)>,
}

impl MetricsSnapshot {
    /// Terminal classes partition the request stream: at any quiescent
    /// point the outcome counters must sum to `requests`.
    pub fn balanced(&self) -> bool {
        self.hot_hits
            + self.db_hits
            + self.misses
            + self.degraded
            + self.rejected
            + self.lint_rejected
            + self.errors
            == self.requests
    }

    /// Render as a JSON object (histogram trimmed to non-empty buckets).
    pub fn to_json(&self) -> serde_json::Value {
        let histogram: Vec<serde_json::Value> = self
            .latency_histogram
            .iter()
            .filter(|(_, count)| *count > 0)
            .map(|(le, count)| {
                serde_json::json!({
                    "le_ms": if le.is_finite() { format!("{le}") } else { "+inf".to_string() },
                    "count": *count,
                })
            })
            .collect();
        serde_json::json!({
            "requests": self.requests,
            "hot_hits": self.hot_hits,
            "db_hits": self.db_hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "measured": self.measured,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "lint_rejected": self.lint_rejected,
            "errors": self.errors,
            "retrains": self.retrains,
            "retrain_samples": self.retrain_samples,
            "predictor_promotions": self.predictor_promotions,
            "quant_publishes": self.quant_publishes,
            "quant_rejected": self.quant_rejected,
            "balanced": self.balanced(),
            "latency_ms_histogram": histogram,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_partition_requests() {
        let m = ServeMetrics::default();
        for _ in 0..5 {
            m.requests();
        }
        m.hot_hits();
        m.db_hits();
        m.misses();
        m.degraded();
        m.lint_rejected();
        let s = m.snapshot();
        assert!(s.balanced());
        m.requests();
        assert!(!m.snapshot().balanced());
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let m = ServeMetrics::default();
        m.observe_latency(0.1); // <= 0.125
        m.observe_latency(3.0); // <= 4
        m.observe_latency(1.0e6); // overflow
        let h = m.snapshot().latency_histogram;
        assert_eq!(h[0], (0.125, 1));
        assert_eq!(h[5], (4.0, 1));
        let (last_bound, last_count) = h[h.len() - 1];
        assert!(last_bound.is_infinite());
        assert_eq!(last_count, 1);
        assert_eq!(h.iter().map(|(_, c)| c).sum::<u64>(), 3);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let m = ServeMetrics::default();
        m.requests();
        m.hot_hits();
        m.observe_latency(2.0);
        let v = m.snapshot().to_json();
        assert_eq!(v["requests"].as_u64(), Some(1));
        assert_eq!(v["balanced"].as_bool(), Some(true));
        assert_eq!(v["latency_ms_histogram"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn shared_registry_sees_serve_series() {
        let registry = MetricsRegistry::new();
        let m = ServeMetrics::new(&registry);
        m.requests();
        m.hot_hits();
        m.observe_latency(1.5);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(metric_names::REQUESTS), 1);
        assert_eq!(snap.counter(metric_names::HOT_HITS), 1);
        assert_eq!(snap.histograms[metric_names::LATENCY_MS].count, 1);
    }
}
