//! Service metrics: terminal-outcome counters and a latency histogram.
//!
//! Every request ends in exactly one terminal class — hot-cache hit,
//! database hit, measured miss, degraded prediction, rejection, or
//! validation error — so the counters balance against `requests` at any
//! quiescent point. `coalesced`, `measured` and the retrain counters are
//! informational overlays, not terminal classes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bucket bounds for served latencies, in milliseconds. Values above
/// the last bound land in the overflow bucket.
pub const HISTOGRAM_BOUNDS_MS: [f64; 15] = [
    0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0,
];

const BUCKETS: usize = HISTOGRAM_BOUNDS_MS.len() + 1;

#[derive(Default)]
struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    fn observe(&self, ms: f64) {
        let idx = HISTOGRAM_BOUNDS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let le = HISTOGRAM_BOUNDS_MS.get(i).copied().unwrap_or(f64::INFINITY);
                (le, b.load(Ordering::Relaxed))
            })
            .collect()
    }
}

/// Live counters; cheap to bump from any thread.
#[derive(Default)]
pub struct ServeMetrics {
    requests: AtomicU64,
    hot_hits: AtomicU64,
    db_hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    measured: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    retrains: AtomicU64,
    retrain_samples: AtomicU64,
    latency: LatencyHistogram,
}

macro_rules! bump {
    ($($name:ident),* $(,)?) => {
        $(pub(crate) fn $name(&self) {
            self.$name.fetch_add(1, Ordering::Relaxed);
        })*
    };
}

impl ServeMetrics {
    bump!(requests, hot_hits, db_hits, misses, coalesced, measured, degraded, rejected, errors);

    pub(crate) fn retrained(&self, samples: u64) {
        self.retrains.fetch_add(1, Ordering::Relaxed);
        self.retrain_samples.fetch_add(samples, Ordering::Relaxed);
    }

    pub(crate) fn observe_latency(&self, ms: f64) {
        self.latency.observe(ms);
    }

    /// Point-in-time copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
            db_hits: self.db_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            measured: self.measured.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            retrains: self.retrains.load(Ordering::Relaxed),
            retrain_samples: self.retrain_samples.load(Ordering::Relaxed),
            latency_histogram: self.latency.snapshot(),
        }
    }
}

/// A point-in-time copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests submitted (valid or not).
    pub requests: u64,
    /// Served from the in-memory LRU.
    pub hot_hits: u64,
    /// Served from the evolving database (and promoted into the LRU).
    pub db_hits: u64,
    /// Served by a farm measurement — fresh or shared through a flight.
    pub misses: u64,
    /// Subset of `misses` that joined an existing flight instead of
    /// enqueueing their own measurement.
    pub coalesced: u64,
    /// Farm measurements actually executed by the worker pool.
    pub measured: u64,
    /// Served an approximate NNLP prediction because the measurement
    /// backlog was over the degrade threshold.
    pub degraded: u64,
    /// Turned away: queue full or service shutting down.
    pub rejected: u64,
    /// Invalid requests (unknown platform, bad batch).
    pub errors: u64,
    /// Predictor retrains completed by the evolving-database loop.
    pub retrains: u64,
    /// Total training samples consumed across retrains.
    pub retrain_samples: u64,
    /// `(upper_bound_ms, count)` pairs; the last bound is `+inf`.
    pub latency_histogram: Vec<(f64, u64)>,
}

impl MetricsSnapshot {
    /// Terminal classes partition the request stream: at any quiescent
    /// point the outcome counters must sum to `requests`.
    pub fn balanced(&self) -> bool {
        self.hot_hits + self.db_hits + self.misses + self.degraded + self.rejected + self.errors
            == self.requests
    }

    /// Render as a JSON object (histogram trimmed to non-empty buckets).
    pub fn to_json(&self) -> serde_json::Value {
        let histogram: Vec<serde_json::Value> = self
            .latency_histogram
            .iter()
            .filter(|(_, count)| *count > 0)
            .map(|(le, count)| {
                serde_json::json!({
                    "le_ms": if le.is_finite() { format!("{le}") } else { "+inf".to_string() },
                    "count": *count,
                })
            })
            .collect();
        serde_json::json!({
            "requests": self.requests,
            "hot_hits": self.hot_hits,
            "db_hits": self.db_hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "measured": self.measured,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "errors": self.errors,
            "retrains": self.retrains,
            "retrain_samples": self.retrain_samples,
            "balanced": self.balanced(),
            "latency_ms_histogram": histogram,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_partition_requests() {
        let m = ServeMetrics::default();
        for _ in 0..5 {
            m.requests();
        }
        m.hot_hits();
        m.db_hits();
        m.misses();
        m.degraded();
        m.rejected();
        let s = m.snapshot();
        assert!(s.balanced());
        m.requests();
        assert!(!m.snapshot().balanced());
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let m = ServeMetrics::default();
        m.observe_latency(0.1); // <= 0.125
        m.observe_latency(3.0); // <= 4
        m.observe_latency(1.0e6); // overflow
        let h = m.snapshot().latency_histogram;
        assert_eq!(h[0], (0.125, 1));
        assert_eq!(h[5], (4.0, 1));
        let (last_bound, last_count) = h[h.len() - 1];
        assert!(last_bound.is_infinite());
        assert_eq!(last_count, 1);
        assert_eq!(h.iter().map(|(_, c)| c).sum::<u64>(), 3);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let m = ServeMetrics::default();
        m.requests();
        m.hot_hits();
        m.observe_latency(2.0);
        let v = m.snapshot().to_json();
        assert_eq!(v["requests"].as_u64(), Some(1));
        assert_eq!(v["balanced"].as_bool(), Some(true));
        assert_eq!(v["latency_ms_histogram"].as_array().unwrap().len(), 1);
    }
}
