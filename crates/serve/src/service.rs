//! The latency-query service: admission control, worker pool, degrade
//! path and the evolving-database retraining loop, wired around the
//! `Nnlqp` facade.
//!
//! Request flow (fast to slow):
//!
//! 1. resolve the platform once (cached binding: canonical name + db id);
//! 2. sharded-LRU hot cache — O(1), no db lock;
//! 3. evolving database — hit fills the LRU;
//! 4. degrade check — backlog over threshold and a predictor head exists:
//!    serve an NNLP prediction tagged `approximate`;
//! 5. singleflight — join the key's flight, or lead it by enqueueing one
//!    measurement on the bounded worker queue (`try_send`: a full queue
//!    rejects instead of blocking the caller — backpressure, not pileup).
//!
//! Workers drain the queue, measure through `Nnlqp::query_measured`
//! (key-seeded, so results are order-independent), fill db + cache, then
//! publish to the flight. A background loop retrains the predictor once
//! enough fresh ground truth accumulates, hot-swapping the heads through
//! the facade's `RwLock`. Shutdown stops intake, drains the queue, joins
//! every thread and snapshots the database atomically.

use crate::cache::{CacheKey, ShardedLru};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::singleflight::{Role, SingleFlight};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use nnlqp::{Nnlqp, QueryError, TrainPredictorConfig};
use nnlqp_db::PlatformId;
use nnlqp_hash::graph_hash;
use nnlqp_ir::Graph;
use nnlqp_sim::{FarmError, Platform};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Measurement worker threads.
    pub workers: usize,
    /// Bounded submission-queue depth; a full queue rejects new leaders.
    pub queue_depth: usize,
    /// Total hot-cache entries.
    pub cache_capacity: usize,
    /// Hot-cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Queue backlog at which requests degrade to an approximate
    /// prediction (when a predictor head covers the platform).
    pub degrade_backlog: usize,
    /// Bound on device acquisition inside a worker; `None` blocks.
    pub farm_wait: Option<Duration>,
    /// Retrain the predictor after this many fresh measurements
    /// (0 disables the evolving-database loop).
    pub retrain_after: usize,
    /// Platforms the retrained predictor covers.
    pub retrain_platforms: Vec<String>,
    /// Training hyperparameters for each retrain.
    pub train: TrainPredictorConfig,
    /// Where shutdown snapshots the database (atomic temp-file + rename).
    pub snapshot_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            degrade_backlog: 32,
            farm_wait: None,
            retrain_after: 0,
            retrain_platforms: Vec::new(),
            train: TrainPredictorConfig::default(),
            snapshot_path: None,
        }
    }
}

/// Service-level failures. All variants are cheap to clone — a flight
/// publishes one error to every coalesced waiter.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Platform unknown to the registry.
    UnknownPlatform(String),
    /// The model cannot run at the requested batch.
    BadBatch(String),
    /// Submission queue full — backpressure, retry later.
    Overloaded,
    /// The service no longer accepts work.
    ShuttingDown,
    /// The measurement itself failed (farm busy past the deadline, strict
    /// lint rejection, ...).
    Measurement(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownPlatform(p) => write!(f, "unknown platform: {p}"),
            ServeError::BadBatch(d) => write!(f, "bad batch: {d}"),
            ServeError::Overloaded => write!(f, "measurement queue full"),
            ServeError::ShuttingDown => write!(f, "service shutting down"),
            ServeError::Measurement(e) => write!(f, "measurement failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FarmError> for ServeError {
    fn from(e: FarmError) -> Self {
        match e {
            FarmError::UnknownPlatform(p) | FarmError::AmbiguousPlatform(p) => {
                ServeError::UnknownPlatform(p)
            }
            FarmError::Closed(_) => ServeError::ShuttingDown,
            other => ServeError::Measurement(other.to_string()),
        }
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::UnknownPlatform(p) => ServeError::UnknownPlatform(p),
            QueryError::BadBatch(d) => ServeError::BadBatch(d),
            QueryError::Farm(f) => f.into(),
            other => ServeError::Measurement(other.to_string()),
        }
    }
}

/// Where a served latency came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Sharded in-memory LRU.
    HotCache,
    /// The evolving database.
    Database,
    /// A farm measurement (own or shared through a flight).
    Measured,
    /// The NNLP predictor (degraded path).
    Predicted,
}

/// A served latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Served {
    /// Latency in milliseconds.
    pub latency_ms: f64,
    /// Which tier answered.
    pub source: Source,
    /// True when this is a prediction, not ground truth.
    pub approximate: bool,
    /// True when the request shared another request's measurement.
    pub coalesced: bool,
}

#[derive(Clone)]
struct PlatformBinding {
    platform: Platform,
    canonical: Arc<str>,
    id: PlatformId,
}

struct Job {
    key: CacheKey,
    platform: Platform,
    graph: Arc<Graph>,
}

#[derive(Default)]
struct RetrainState {
    fresh: usize,
    stop: bool,
}

struct RetrainShared {
    state: Mutex<RetrainState>,
    wake: Condvar,
}

/// The concurrent query service. Share it across client threads with an
/// `Arc`; call [`LatencyService::shutdown`] (or drop it) to drain and
/// snapshot.
pub struct LatencyService {
    system: Arc<Nnlqp>,
    cfg: ServeConfig,
    cache: Arc<ShardedLru>,
    flights: Arc<SingleFlight<CacheKey, Result<f64, ServeError>>>,
    metrics: Arc<ServeMetrics>,
    platforms: RwLock<HashMap<String, PlatformBinding>>,
    tx: Mutex<Option<Sender<Job>>>,
    retrain: Arc<RetrainShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl LatencyService {
    /// Spawn workers (and the retrain loop, when enabled) and start
    /// accepting queries.
    pub fn start(system: Arc<Nnlqp>, cfg: ServeConfig) -> Self {
        let cache = Arc::new(ShardedLru::new(cfg.cache_capacity, cfg.cache_shards));
        let flights = Arc::new(SingleFlight::new());
        // Serve-tier series live next to the facade's query-stage metrics
        // in the system's registry, so one snapshot covers the stack.
        let metrics = Arc::new(ServeMetrics::new(system.registry()));
        let retrain = Arc::new(RetrainShared {
            state: Mutex::new(RetrainState::default()),
            wake: Condvar::new(),
        });
        let (tx, rx) = bounded::<Job>(cfg.queue_depth.max(1));
        let mut threads = Vec::new();
        for i in 0..cfg.workers.max(1) {
            threads.push(
                std::thread::Builder::new()
                    .name(format!("nnlqp-serve-worker-{i}"))
                    .spawn(worker_loop(
                        rx.clone(),
                        Arc::clone(&system),
                        Arc::clone(&cache),
                        Arc::clone(&flights),
                        Arc::clone(&metrics),
                        Arc::clone(&retrain),
                        cfg.farm_wait,
                    ))
                    .expect("spawn worker"),
            );
        }
        drop(rx);
        if cfg.retrain_after > 0 && !cfg.retrain_platforms.is_empty() {
            threads.push(
                std::thread::Builder::new()
                    .name("nnlqp-serve-retrain".to_string())
                    .spawn(retrain_loop(
                        Arc::clone(&system),
                        Arc::clone(&retrain),
                        Arc::clone(&metrics),
                        cfg.retrain_after,
                        cfg.retrain_platforms.clone(),
                        cfg.train,
                    ))
                    .expect("spawn retrain loop"),
            );
        }
        LatencyService {
            system,
            cfg,
            cache,
            flights,
            metrics,
            platforms: RwLock::new(HashMap::new()),
            tx: Mutex::new(Some(tx)),
            retrain,
            threads: Mutex::new(threads),
            stopped: AtomicBool::new(false),
        }
    }

    /// Serve one latency query. `model` is shared, never deep-copied
    /// (unless the batch size requires rebatching).
    pub fn query(
        &self,
        model: &Arc<Graph>,
        platform: &str,
        batch: u32,
    ) -> Result<Served, ServeError> {
        self.metrics.requests();
        let binding = match self.resolve(platform) {
            Ok(b) => b,
            Err(e) => {
                self.metrics.errors();
                return Err(e);
            }
        };
        let graph = match effective_graph(model, batch) {
            Ok(g) => g,
            Err(e) => {
                self.metrics.errors();
                return Err(e);
            }
        };
        let key = CacheKey {
            graph_hash: graph_hash(&graph),
            platform: Arc::clone(&binding.canonical),
            batch,
        };

        // Tier 1: hot cache.
        if let Some(ms) = self.cache.get(&key) {
            self.metrics.hot_hits();
            self.metrics.observe_latency(ms);
            return Ok(Served {
                latency_ms: ms,
                source: Source::HotCache,
                approximate: false,
                coalesced: false,
            });
        }

        // Tier 2: the evolving database; promote hits into the LRU.
        if let Some(rec) = self
            .system
            .db
            .lookup_latency(key.graph_hash, binding.id, batch)
        {
            self.cache.insert(key, rec.cost_ms);
            self.metrics.db_hits();
            self.metrics.observe_latency(rec.cost_ms);
            return Ok(Served {
                latency_ms: rec.cost_ms,
                source: Source::Database,
                approximate: false,
                coalesced: false,
            });
        }

        // Tier 3: graceful degradation under measurement backlog.
        if self.backlog() >= self.cfg.degrade_backlog
            && self.system.has_predictor_for(&binding.canonical)
        {
            if let Ok(p) = self.system.predict_effective(&graph, &binding.canonical) {
                self.metrics.degraded();
                self.metrics.observe_latency(p.latency_ms);
                return Ok(Served {
                    latency_ms: p.latency_ms,
                    source: Source::Predicted,
                    approximate: true,
                    coalesced: false,
                });
            }
        }

        // Tier 4: measure, coalescing concurrent misses on the key.
        match self.flights.begin(&key) {
            Role::Follower(flight) => {
                self.metrics.coalesced();
                self.settle(flight.wait(), true)
            }
            Role::Leader(flight) => {
                // Double-check: the previous flight for this key may have
                // completed between our cache miss and begin(). Workers
                // fill the cache BEFORE completing, so a re-check here
                // makes "one measurement per cached key" airtight.
                if let Some(ms) = self.cache.get(&key) {
                    self.flights.complete(&key, Ok(ms));
                    self.metrics.hot_hits();
                    self.metrics.observe_latency(ms);
                    return Ok(Served {
                        latency_ms: ms,
                        source: Source::HotCache,
                        approximate: false,
                        coalesced: false,
                    });
                }
                let enqueued = {
                    let tx = self.tx.lock();
                    match tx.as_ref() {
                        None => Err(ServeError::ShuttingDown),
                        Some(tx) => tx
                            .try_send(Job {
                                key: key.clone(),
                                platform: binding.platform.clone(),
                                graph,
                            })
                            .map_err(|e| match e {
                                TrySendError::Full(_) => ServeError::Overloaded,
                                TrySendError::Disconnected(_) => ServeError::ShuttingDown,
                            }),
                    }
                };
                if let Err(e) = enqueued {
                    // Publish the rejection so coalesced followers settle
                    // the same way instead of hanging.
                    self.flights.complete(&key, Err(e.clone()));
                    self.metrics.rejected();
                    return Err(e);
                }
                self.settle(flight.wait(), false)
            }
        }
    }

    fn settle(
        &self,
        outcome: Result<f64, ServeError>,
        coalesced: bool,
    ) -> Result<Served, ServeError> {
        match outcome {
            Ok(ms) => {
                self.metrics.misses();
                self.metrics.observe_latency(ms);
                Ok(Served {
                    latency_ms: ms,
                    source: Source::Measured,
                    approximate: false,
                    coalesced,
                })
            }
            Err(e) => {
                self.metrics.rejected();
                Err(e)
            }
        }
    }

    fn resolve(&self, platform: &str) -> Result<PlatformBinding, ServeError> {
        if let Some(b) = self.platforms.read().get(platform) {
            return Ok(b.clone());
        }
        let handle = Platform::by_name(platform)
            .ok_or_else(|| ServeError::UnknownPlatform(platform.to_string()))?;
        let spec = handle.spec();
        let id = self.system.db.get_or_create_platform(
            &spec.hardware,
            &spec.software,
            spec.dtype.name(),
        );
        let binding = PlatformBinding {
            canonical: Arc::from(handle.name()),
            platform: handle,
            id,
        };
        self.platforms
            .write()
            .insert(platform.to_string(), binding.clone());
        Ok(binding)
    }

    /// Jobs waiting for a worker.
    pub fn backlog(&self) -> usize {
        self.tx.lock().as_ref().map_or(0, Sender::len)
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Hot-cache occupancy.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The wrapped facade (database, counters, predictor).
    pub fn system(&self) -> &Arc<Nnlqp> {
        &self.system
    }

    /// Stop intake, drain the queue, join every background thread and
    /// snapshot the database when configured. Idempotent.
    pub fn shutdown(&self) -> std::io::Result<()> {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        // Closing the sender lets workers drain remaining jobs, then exit
        // on disconnect — every open flight still completes.
        self.tx.lock().take();
        {
            let mut st = self.retrain.state.lock();
            st.stop = true;
        }
        self.retrain.wake.notify_all();
        let threads: Vec<JoinHandle<()>> = self.threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
        if let Some(path) = &self.cfg.snapshot_path {
            nnlqp_db::persist::save(&self.system.db, path)?;
        }
        Ok(())
    }
}

impl Drop for LatencyService {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

fn effective_graph(model: &Arc<Graph>, batch: u32) -> Result<Arc<Graph>, ServeError> {
    if batch == 0 {
        return Err(ServeError::BadBatch("batch must be at least 1".to_string()));
    }
    if model.input_shape.batch() == batch as usize {
        Ok(Arc::clone(model))
    } else {
        model
            .rebatch(batch as usize)
            .map(Arc::new)
            .map_err(|e| ServeError::BadBatch(e.to_string()))
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rx: Receiver<Job>,
    system: Arc<Nnlqp>,
    cache: Arc<ShardedLru>,
    flights: Arc<SingleFlight<CacheKey, Result<f64, ServeError>>>,
    metrics: Arc<ServeMetrics>,
    retrain: Arc<RetrainShared>,
    farm_wait: Option<Duration>,
) -> impl FnOnce() {
    move || {
        while let Ok(job) = rx.recv() {
            let outcome =
                match system.query_measured(&job.graph, &job.platform, job.key.batch, farm_wait) {
                    Ok(qr) => {
                        cache.insert(job.key.clone(), qr.latency_ms);
                        metrics.measured();
                        {
                            let mut st = retrain.state.lock();
                            st.fresh += 1;
                        }
                        retrain.wake.notify_one();
                        Ok(qr.latency_ms)
                    }
                    Err(e) => Err(e.into()),
                };
            // Database and cache are filled before the flight publishes:
            // anyone arriving after this resolves as a hit, so each key is
            // measured at most once per flight.
            flights.complete(&job.key, outcome);
        }
    }
}

fn retrain_loop(
    system: Arc<Nnlqp>,
    shared: Arc<RetrainShared>,
    metrics: Arc<ServeMetrics>,
    threshold: usize,
    platforms: Vec<String>,
    train: TrainPredictorConfig,
) -> impl FnOnce() {
    move || {
        let names: Vec<&str> = platforms.iter().map(String::as_str).collect();
        let mut st = shared.state.lock();
        loop {
            if st.fresh >= threshold {
                st.fresh = 0;
                drop(st);
                // Training runs outside the lock; the trained heads are
                // hot-swapped atomically inside the facade.
                if let Ok(n) = system.train_predictor(&names, train) {
                    if n > 0 {
                        metrics.retrained(n as u64);
                    }
                }
                st = shared.state.lock();
                continue;
            }
            if st.stop {
                break;
            }
            shared.wake.wait_for(&mut st, Duration::from_millis(20));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_models::ModelFamily;
    use nnlqp_sim::{DeviceFarm, PlatformSpec};

    const PLATFORM: &str = "gpu-T4-trt7.1-fp32";

    fn quick_system() -> Arc<Nnlqp> {
        Arc::new(
            Nnlqp::builder()
                .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 2))
                .reps(3)
                .build(),
        )
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_depth: 8,
            cache_capacity: 64,
            cache_shards: 2,
            degrade_backlog: usize::MAX,
            ..Default::default()
        }
    }

    #[test]
    fn miss_then_db_hit_then_hot_hit() {
        let svc = LatencyService::start(quick_system(), small_cfg());
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        let first = svc.query(&g, PLATFORM, 1).unwrap();
        assert_eq!(first.source, Source::Measured);
        assert!(!first.approximate);
        // The measurement also filled the hot cache.
        let second = svc.query(&g, PLATFORM, 1).unwrap();
        assert_eq!(second.source, Source::HotCache);
        assert_eq!(second.latency_ms, first.latency_ms);
        let m = svc.metrics();
        assert_eq!((m.requests, m.misses, m.hot_hits, m.measured), (2, 1, 1, 1));
        assert!(m.balanced());
    }

    #[test]
    fn db_hits_promote_into_cache() {
        let system = quick_system();
        // Seed the database out-of-band: the service's own cache is cold.
        system
            .query(
                &nnlqp::QueryParams::by_name(
                    ModelFamily::SqueezeNet.canonical().unwrap(),
                    1,
                    PLATFORM,
                )
                .unwrap(),
            )
            .unwrap();
        let svc = LatencyService::start(system, small_cfg());
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        assert_eq!(svc.query(&g, PLATFORM, 1).unwrap().source, Source::Database);
        assert_eq!(svc.query(&g, PLATFORM, 1).unwrap().source, Source::HotCache);
        assert!(svc.metrics().balanced());
    }

    #[test]
    fn invalid_requests_count_as_errors() {
        let svc = LatencyService::start(quick_system(), small_cfg());
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        assert!(matches!(
            svc.query(&g, "quantum-coprocessor", 1),
            Err(ServeError::UnknownPlatform(_))
        ));
        assert!(matches!(
            svc.query(&g, PLATFORM, 0),
            Err(ServeError::BadBatch(_))
        ));
        let m = svc.metrics();
        assert_eq!((m.requests, m.errors), (2, 2));
        assert!(m.balanced());
    }

    #[test]
    fn shutdown_rejects_new_work_and_snapshots() {
        let dir = std::env::temp_dir().join(format!("nnlqp-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("snapshot.db");
        let cfg = ServeConfig {
            snapshot_path: Some(snap.clone()),
            ..small_cfg()
        };
        let svc = LatencyService::start(quick_system(), cfg);
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        svc.query(&g, PLATFORM, 1).unwrap();
        svc.shutdown().unwrap();
        svc.shutdown().unwrap(); // idempotent
        assert!(matches!(
            svc.query(&g, PLATFORM, 4),
            Err(ServeError::ShuttingDown)
        ));
        let restored = nnlqp_db::persist::load(&snap).unwrap();
        assert_eq!(restored.stats().latencies, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degrade_serves_predictions_under_backlog() {
        let system = quick_system();
        // Train a tiny predictor so the degrade path has a head.
        let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 8, 3)
            .into_iter()
            .map(|m| m.graph)
            .collect();
        system
            .warm_cache(&models, &Platform::by_name(PLATFORM).unwrap(), 1)
            .unwrap();
        system
            .train_predictor(
                &[PLATFORM],
                TrainPredictorConfig {
                    epochs: 4,
                    hidden: 16,
                    gnn_layers: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        // degrade_backlog = 0: every cache/db miss degrades immediately.
        let cfg = ServeConfig {
            degrade_backlog: 0,
            ..small_cfg()
        };
        let svc = LatencyService::start(system, cfg);
        let fresh = Arc::new(
            nnlqp_models::generate_family(ModelFamily::SqueezeNet, 30, 99)
                .pop()
                .unwrap()
                .graph,
        );
        let served = svc.query(&fresh, PLATFORM, 1).unwrap();
        assert_eq!(served.source, Source::Predicted);
        assert!(served.approximate);
        let m = svc.metrics();
        assert_eq!((m.degraded, m.measured), (1, 0));
        assert!(m.balanced());
    }

    #[test]
    fn degrade_repeat_keys_hit_embed_cache() {
        let system = quick_system();
        let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 8, 3)
            .into_iter()
            .map(|m| m.graph)
            .collect();
        system
            .warm_cache(&models, &Platform::by_name(PLATFORM).unwrap(), 1)
            .unwrap();
        system
            .train_predictor(
                &[PLATFORM],
                TrainPredictorConfig {
                    epochs: 4,
                    hidden: 16,
                    gnn_layers: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        let cfg = ServeConfig {
            degrade_backlog: 0,
            ..small_cfg()
        };
        let svc = LatencyService::start(Arc::clone(&system), cfg);
        let fresh = Arc::new(
            nnlqp_models::generate_family(ModelFamily::SqueezeNet, 30, 99)
                .pop()
                .unwrap()
                .graph,
        );
        // Degraded answers are not stored in the hot cache or the db, so
        // every repeat re-enters the predictor — where the embed cache
        // turns all but the first into head-only evaluations.
        let first = svc.query(&fresh, PLATFORM, 1).unwrap();
        let second = svc.query(&fresh, PLATFORM, 1).unwrap();
        let third = svc.query(&fresh, PLATFORM, 1).unwrap();
        assert_eq!(first.source, Source::Predicted);
        assert_eq!(second.latency_ms, first.latency_ms);
        assert_eq!(third.latency_ms, first.latency_ms);
        let snap = system.registry().snapshot();
        assert_eq!(snap.counter("predict.embed_cache_misses"), 1);
        assert!(
            snap.counter("predict.embed_cache_hits") >= 2,
            "repeat degraded keys must be embed-cache hits"
        );
    }

    #[test]
    fn retrain_loop_hot_swaps_predictor() {
        let system = quick_system();
        assert!(!system.has_predictor_for(PLATFORM));
        let cfg = ServeConfig {
            retrain_after: 4,
            retrain_platforms: vec![PLATFORM.to_string()],
            train: TrainPredictorConfig {
                epochs: 2,
                hidden: 16,
                gnn_layers: 2,
                ..Default::default()
            },
            ..small_cfg()
        };
        let svc = LatencyService::start(Arc::clone(&system), cfg);
        for m in nnlqp_models::generate_family(ModelFamily::SqueezeNet, 6, 5) {
            svc.query(&Arc::new(m.graph), PLATFORM, 1).unwrap();
        }
        // Retraining happens in the background; give it a bounded moment.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while svc.metrics().retrains == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let m = svc.metrics();
        assert!(m.retrains >= 1, "retrain loop never fired: {m:?}");
        assert!(m.retrain_samples >= 4);
        assert!(system.has_predictor_for(PLATFORM));
        assert!(m.balanced());
    }
}
