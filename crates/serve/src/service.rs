//! The latency-query service: admission control, worker pool, degrade
//! path and the evolving-database retraining loop, wired around the
//! `Nnlqp` facade.
//!
//! Request flow (fast to slow):
//!
//! 1. resolve the platform once (cached binding: canonical name + db id);
//! 2. sharded-LRU hot cache — O(1), no db lock;
//! 3. evolving database — hit fills the LRU;
//! 4. strict-mode admission — the analyzer (memoized per graph hash +
//!    platform in the facade) rejects error-severity graphs *here*,
//!    before any farm measurement or database write;
//! 5. degrade check — backlog over threshold and a predictor head exists:
//!    serve an NNLP prediction tagged `approximate`;
//! 6. singleflight — join the key's flight, or lead it by enqueueing one
//!    measurement on the bounded worker queue (`try_send`: a full queue
//!    rejects instead of blocking the caller — backpressure, not pileup).
//!
//! Workers drain the queue, measure through `Nnlqp::query_measured`
//! (key-seeded, so results are order-independent), fill db + cache, then
//! publish to the flight. A background loop retrains the predictor, hot-
//! swapping the heads through the facade's `RwLock`. Shutdown stops
//! intake, drains the queue, joins every thread and snapshots the
//! database atomically.
//!
//! # Quality monitoring
//!
//! With [`ServeConfig::monitor`] set, measurement-backed answers (db hits
//! and fresh measurements) are shadow-evaluated: every `sample_every`-th
//! answer per platform is also run through the NNLP predictor and the
//! `(predicted, measured)` pair feeds the platform's rolling
//! [`QualityMonitor`] window. When windowed MAPE crosses the configured
//! threshold (with enough samples behind it) a drift alert fires and the
//! retrain loop runs *on evidence* instead of the blind
//! `retrain_after` cadence; after training it re-predicts the replay
//! buffer under the new model and resets the window, so recovery is
//! visible immediately. Query lifecycle, shadow evals, drift alerts and
//! retrains are recorded in a bounded JSONL [`EventLog`], and the whole
//! registry can be written periodically in Prometheus text format via
//! [`ServeConfig::metrics_path`].
//!
//! # A/B champion selection
//!
//! With [`ServeConfig::ab`] set, a *challenger* predictor (typically the
//! other architecture — see `nnlqp::PredictorKind`) rides shotgun on the
//! shadow evaluator: every sampled measurement-backed answer is scored by
//! the champion *and* the challenger, each keeping its own rolling error
//! window. When the champion degrades past the drift threshold while the
//! challenger is measurably better, the challenger is **promoted** to
//! per-platform champion: the degrade path and all shadow scoring for
//! that platform hot-swap to the promoted handle (other platforms keep
//! the installed predictor), a `predictor_promoted` event is emitted, the
//! platform's quality window is re-scored under the new champion, and the
//! `serve.predictor_promotions` counter ticks. Challengers are installed
//! with [`LatencyService::install_challenger`] (and refreshed by the
//! retrain loop when it runs); the per-platform outcome is reported by
//! [`LatencyService::champions`].

use crate::cache::{CacheKey, ShardedLru};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::singleflight::{Role, SingleFlight};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use nnlqp::{
    Nnlqp, PredictResult, PredictTicks, PredictorHandle, PredictorKind, QueryError,
    TrainPredictorConfig,
};
use nnlqp_db::PlatformId;
use nnlqp_hash::graph_hash;
use nnlqp_ir::Graph;
use nnlqp_obs::{
    acc_at, to_prometheus, ErrorWindow, EventLog, ExemplarReservoir, FieldValue, MetricsRegistry,
    MonitorConfig, QualityMonitor, QualityReport, RequestTrace, TraceClock, TraceContext,
};
use nnlqp_sim::{FarmError, Platform};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Slowest full traces retained per terminal class by the exemplar
/// reservoir — enough to see *why* a class's tail looks the way it does
/// without unbounded memory.
const EXEMPLARS_PER_CLASS: usize = 4;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Measurement worker threads.
    pub workers: usize,
    /// Bounded submission-queue depth; a full queue rejects new leaders.
    pub queue_depth: usize,
    /// Total hot-cache entries.
    pub cache_capacity: usize,
    /// Hot-cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Queue backlog at which requests degrade to an approximate
    /// prediction (when a predictor head covers the platform).
    pub degrade_backlog: usize,
    /// Bound on device acquisition inside a worker; `None` blocks.
    pub farm_wait: Option<Duration>,
    /// Retrain the predictor after this many fresh measurements
    /// (0 disables the cadence; with a monitor configured the retrain
    /// loop still runs, fired by drift alerts alone).
    pub retrain_after: usize,
    /// Platforms the retrained predictor covers.
    pub retrain_platforms: Vec<String>,
    /// Training hyperparameters for each retrain.
    pub train: TrainPredictorConfig,
    /// Quantize each freshly retrained f32 champion to int8 at publish
    /// time, gated on accuracy parity: the quantized model is installed
    /// only when its Acc(10%) over the shadow replay buffers drops by at
    /// most this many percentage points (per platform) versus the f32
    /// model. On any gate failure — accuracy drop over the epsilon, no
    /// replay data to evaluate on — serving keeps the f32 champion and a
    /// `quant_rejected` event is emitted. Requires a monitor (the replay
    /// buffers are the eval set). `None` disables quantization; an
    /// epsilon below −100 always rejects (Acc(δ) drops are bounded by
    /// 100 points), which exercises the rejection path deterministically.
    pub quantize_on_publish: Option<f64>,
    /// Where shutdown snapshots the database (atomic temp-file + rename).
    pub snapshot_path: Option<PathBuf>,
    /// Shadow-evaluation and drift-detection tuning; `None` disables
    /// quality monitoring entirely (unless [`ServeConfig::ab`] is set, in
    /// which case a default monitor is created — A/B scoring needs one).
    pub monitor: Option<MonitorConfig>,
    /// Online A/B champion selection between predictor architectures;
    /// `None` disables it.
    pub ab: Option<AbConfig>,
    /// Structured event-log ring capacity (0 disables the log).
    pub event_log_capacity: usize,
    /// Where shutdown writes the event log, one JSON object per line.
    pub events_path: Option<PathBuf>,
    /// Where the registry is written in Prometheus text format — updated
    /// every [`ServeConfig::metrics_every`] by a background thread
    /// (atomic temp-file + rename) and once more at shutdown, after all
    /// workers drained.
    pub metrics_path: Option<PathBuf>,
    /// Interval between Prometheus snapshots of the registry.
    pub metrics_every: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            degrade_backlog: 32,
            farm_wait: None,
            retrain_after: 0,
            retrain_platforms: Vec::new(),
            train: TrainPredictorConfig::default(),
            quantize_on_publish: None,
            snapshot_path: None,
            monitor: None,
            ab: None,
            event_log_capacity: 4096,
            events_path: None,
            metrics_path: None,
            metrics_every: Duration::from_secs(1),
        }
    }
}

/// Service-level failures. All variants are cheap to clone — a flight
/// publishes one error to every coalesced waiter.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Platform unknown to the registry.
    UnknownPlatform(String),
    /// The model cannot run at the requested batch.
    BadBatch(String),
    /// Submission queue full — backpressure, retry later.
    Overloaded,
    /// The service no longer accepts work.
    ShuttingDown,
    /// Strict mode: the admission analyzer found error-severity findings,
    /// so the graph was rejected before any farm measurement or database
    /// write (the payload is the rendered report).
    LintRejected(String),
    /// The measurement itself failed (farm busy past the deadline, ...).
    Measurement(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownPlatform(p) => write!(f, "unknown platform: {p}"),
            ServeError::BadBatch(d) => write!(f, "bad batch: {d}"),
            ServeError::Overloaded => write!(f, "measurement queue full"),
            ServeError::ShuttingDown => write!(f, "service shutting down"),
            ServeError::LintRejected(r) => write!(f, "rejected by static analysis:\n{r}"),
            ServeError::Measurement(e) => write!(f, "measurement failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FarmError> for ServeError {
    fn from(e: FarmError) -> Self {
        match e {
            FarmError::UnknownPlatform(p) | FarmError::AmbiguousPlatform(p) => {
                ServeError::UnknownPlatform(p)
            }
            FarmError::Closed(_) => ServeError::ShuttingDown,
            other => ServeError::Measurement(other.to_string()),
        }
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::UnknownPlatform(p) => ServeError::UnknownPlatform(p),
            QueryError::BadBatch(d) => ServeError::BadBatch(d),
            QueryError::Lint(r) => ServeError::LintRejected(r),
            QueryError::Farm(f) => f.into(),
            other => ServeError::Measurement(other.to_string()),
        }
    }
}

/// Where a served latency came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Sharded in-memory LRU.
    HotCache,
    /// The evolving database.
    Database,
    /// A farm measurement (own or shared through a flight).
    Measured,
    /// The NNLP predictor (degraded path).
    Predicted,
}

fn source_str(s: Source) -> &'static str {
    match s {
        Source::HotCache => "hot_cache",
        Source::Database => "database",
        Source::Measured => "measured",
        Source::Predicted => "predicted",
    }
}

fn error_str(e: &ServeError) -> &'static str {
    match e {
        ServeError::UnknownPlatform(_) => "unknown_platform",
        ServeError::BadBatch(_) => "bad_batch",
        ServeError::Overloaded => "overloaded",
        ServeError::ShuttingDown => "shutting_down",
        ServeError::LintRejected(_) => "lint_rejected",
        ServeError::Measurement(_) => "measurement",
    }
}

/// A served latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Served {
    /// Latency in milliseconds.
    pub latency_ms: f64,
    /// Which tier answered.
    pub source: Source,
    /// True when this is a prediction, not ground truth.
    pub approximate: bool,
    /// True when the request shared another request's measurement.
    pub coalesced: bool,
}

#[derive(Clone)]
struct PlatformBinding {
    platform: Platform,
    canonical: Arc<str>,
    id: PlatformId,
}

struct Job {
    key: CacheKey,
    platform: Platform,
    graph: Arc<Graph>,
    /// Tick on the service's [`TraceClock`] when the leader enqueued the
    /// job — workers derive enqueue→dequeue queue wait from it.
    enqueued_ns: u64,
}

/// What a flight publishes to its leader and every coalesced follower.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FlightOutcome {
    latency_ms: f64,
    /// Worker-side stage boundaries on the shared clock; `None` when the
    /// flight was settled without a worker (leader double-check hit).
    /// Only the *leader* splices these into its trace — a follower may
    /// have joined after any of them.
    ticks: Option<WorkerTicks>,
}

/// Worker-side stage boundaries of one measurement, as ticks on the
/// service's [`TraceClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WorkerTicks {
    dequeued_ns: u64,
    measured_ns: u64,
    db_write_ns: u64,
    published_ns: u64,
}

#[derive(Default)]
struct RetrainState {
    fresh: usize,
    /// A drift alert fired since the last retrain.
    drift: bool,
    stop: bool,
}

struct RetrainShared {
    state: Mutex<RetrainState>,
    wake: Condvar,
}

/// Tuning of online A/B champion selection.
#[derive(Debug, Clone)]
pub struct AbConfig {
    /// Architecture of the challenger the retrain loop trains (a manually
    /// installed challenger — [`LatencyService::install_challenger`] —
    /// may be of any architecture).
    pub challenger: PredictorKind,
    /// Training hyperparameters for retrain-loop challenger refreshes
    /// (`arch` is overridden with [`AbConfig::challenger`]).
    pub train: TrainPredictorConfig,
}

impl Default for AbConfig {
    fn default() -> Self {
        AbConfig {
            challenger: PredictorKind::Transformer,
            train: TrainPredictorConfig::default(),
        }
    }
}

/// Shared A/B state: the challenger slot, its per-platform error windows,
/// and the promotion outcome (per-platform routed champions).
struct AbState {
    cfg: AbConfig,
    /// The challenger under evaluation (one at a time, shared across
    /// platforms — each platform keeps its own score window).
    challenger: RwLock<Option<PredictorHandle>>,
    /// Platform → promoted champion. Absent platforms use the facade's
    /// installed predictor.
    routes: RwLock<HashMap<String, PredictorHandle>>,
    /// Platform → architecture name of the promoted champion (the
    /// report [`LatencyService::champions`] serves).
    champions: Mutex<BTreeMap<String, String>>,
    /// Platform → rolling error window of the challenger.
    windows: Mutex<HashMap<String, ErrorWindow>>,
}

impl AbState {
    fn new(cfg: AbConfig) -> Self {
        AbState {
            cfg,
            challenger: RwLock::new(None),
            routes: RwLock::new(HashMap::new()),
            champions: Mutex::new(BTreeMap::new()),
            windows: Mutex::new(HashMap::new()),
        }
    }

    /// The promoted champion for `platform`, if any.
    fn route(&self, platform: &str) -> Option<PredictorHandle> {
        self.routes.read().get(platform).cloned()
    }
}

/// Predict through the platform's promoted champion when one exists,
/// falling back to the facade's installed predictor — the single routing
/// point the degrade tier, the shadow evaluator and the retrain loop's
/// replay re-scoring all share.
fn predict_routed(
    system: &Nnlqp,
    ab: Option<&AbState>,
    graph: &Graph,
    platform: &str,
) -> Result<PredictResult, QueryError> {
    if let Some(handle) = ab.and_then(|ab| ab.route(platform)) {
        return system.predict_effective_with(&handle, graph, platform);
    }
    system.predict_effective(graph, platform)
}

/// [`predict_routed`] with wall-clock stage ticks — the degrade tier goes
/// through here so its trace splits into embed-cache and head stages.
fn predict_routed_staged(
    system: &Nnlqp,
    ab: Option<&AbState>,
    graph: &Graph,
    platform: &str,
    clock: &TraceClock,
) -> Result<(PredictResult, PredictTicks), QueryError> {
    if let Some(handle) = ab.and_then(|ab| ab.route(platform)) {
        return system.predict_effective_staged_with(&handle, graph, platform, clock);
    }
    system.predict_effective_staged(graph, platform, clock)
}

/// Bounded per-platform replay buffer of `(graph, measured_ms)` pairs.
type ReplayBuffer = HashMap<String, VecDeque<(Arc<Graph>, f64)>>;

/// The shadow evaluator: the quality monitor plus a replay buffer, so the
/// retrain loop can re-score the same workload under a freshly trained
/// model.
struct Shadow {
    monitor: QualityMonitor,
    replay: Mutex<ReplayBuffer>,
    registry: Arc<MetricsRegistry>,
    ab: Option<Arc<AbState>>,
}

impl Shadow {
    fn new(cfg: MonitorConfig, registry: Arc<MetricsRegistry>, ab: Option<Arc<AbState>>) -> Self {
        Shadow {
            monitor: QualityMonitor::new(cfg, Arc::clone(&registry)),
            replay: Mutex::new(HashMap::new()),
            registry,
            ab,
        }
    }

    /// Feed one measurement-backed answer through the shadow evaluator:
    /// remember it for replay, and — on the sampling cadence — predict it
    /// (champion and, when A/B is on, challenger), record the pairs,
    /// raise the retrain-on-drift signal and run the promotion check.
    #[allow(clippy::too_many_arguments)] // one call site per answer source
    fn observe(
        &self,
        system: &Nnlqp,
        events: Option<&EventLog>,
        retrain: &RetrainShared,
        metrics: &ServeMetrics,
        platform: &str,
        graph: &Arc<Graph>,
        measured_ms: f64,
    ) {
        {
            let mut replay = self.replay.lock();
            let buf = replay.entry(platform.to_string()).or_default();
            if buf.len() == self.monitor.config().window {
                buf.pop_front();
            }
            buf.push_back((Arc::clone(graph), measured_ms));
        }
        if !self.monitor.sample(platform) {
            return;
        }
        // No predictor head yet (cold start) — nothing to shadow.
        let Ok(pred) = predict_routed(system, self.ab.as_deref(), graph, platform) else {
            return;
        };
        let alert = self.monitor.record(platform, pred.latency_ms, measured_ms);
        if let Some(ev) = events {
            let mut fields: Vec<(&str, FieldValue)> = vec![
                ("platform", platform.into()),
                ("predicted_ms", pred.latency_ms.into()),
                ("measured_ms", measured_ms.into()),
            ];
            if let Some(m) = self.monitor.windowed_mape(platform) {
                fields.push(("windowed_mape_pct", m.into()));
            }
            ev.emit("shadow_eval", fields);
        }
        if let Some(alert) = alert {
            if let Some(ev) = events {
                ev.emit(
                    "drift_alert",
                    vec![
                        ("platform", alert.platform.as_str().into()),
                        ("windowed_mape_pct", alert.windowed_mape_pct.into()),
                        ("threshold_pct", alert.threshold_pct.into()),
                        ("samples", alert.samples.into()),
                    ],
                );
            }
            {
                let mut st = retrain.state.lock();
                st.drift = true;
            }
            retrain.wake.notify_one();
        }
        self.score_challenger(system, events, metrics, platform, graph, measured_ms);
    }

    /// Score the A/B challenger on the same measurement-backed answer the
    /// champion was just scored on, then check the promotion criterion:
    /// the champion is past the drift threshold with a full window, the
    /// challenger has a full window of its own, and the challenger's
    /// windowed MAPE is strictly better.
    fn score_challenger(
        &self,
        system: &Nnlqp,
        events: Option<&EventLog>,
        metrics: &ServeMetrics,
        platform: &str,
        graph: &Arc<Graph>,
        measured_ms: f64,
    ) {
        let Some(ab) = &self.ab else { return };
        let Some(challenger) = ab.challenger.read().clone() else {
            return;
        };
        // An already promoted challenger IS the routed champion: scoring
        // it again would double-count the same model.
        if ab
            .route(platform)
            .is_some_and(|h| h.stamp() == challenger.stamp())
        {
            return;
        }
        let Ok(pred) = system.predict_effective_with(&challenger, graph, platform) else {
            return;
        };
        let mcfg = self.monitor.config();
        let (chal_mape, chal_samples) = {
            let mut windows = ab.windows.lock();
            let w = windows
                .entry(platform.to_string())
                .or_insert_with(|| ErrorWindow::new(mcfg.window));
            w.push(pred.latency_ms, measured_ms);
            (w.mape().expect("window non-empty"), w.len())
        };
        let arch = challenger.kind().as_str();
        let ab_gauge = |name: &str| format!("{name}{{platform=\"{platform}\",arch=\"{arch}\"}}");
        self.registry
            .gauge(&ab_gauge(crate::metrics::metric_names::AB_CHALLENGER_MAPE))
            .set(chal_mape);
        self.registry
            .gauge(&ab_gauge(
                crate::metrics::metric_names::AB_CHALLENGER_SAMPLES,
            ))
            .set(chal_samples as f64);
        // Promotion check.
        let champ_mape = self.monitor.windowed_mape(platform);
        let champ_samples = self
            .monitor
            .report()
            .platforms
            .get(platform)
            .map_or(0, |q| q.samples);
        let champion_degraded = champ_samples >= mcfg.min_samples
            && champ_mape.is_some_and(|m| m > mcfg.mape_threshold_pct);
        let challenger_better =
            chal_samples >= mcfg.min_samples && champ_mape.is_some_and(|m| chal_mape < m);
        if !(champion_degraded && challenger_better) {
            return;
        }
        // Promote: route the platform to the challenger, re-score the
        // replay buffer under it so the quality window (and drift latch)
        // reflect the new champion immediately.
        let from = ab
            .route(platform)
            .map(|h| h.kind())
            .or_else(|| system.predictor_handle().map(|h| h.kind()))
            .map_or("none", |k| k.as_str());
        ab.routes
            .write()
            .insert(platform.to_string(), challenger.clone());
        ab.champions
            .lock()
            .insert(platform.to_string(), arch.to_string());
        ab.windows.lock().remove(platform);
        let pairs: Vec<(f64, f64)> = self
            .replay_pairs(platform)
            .iter()
            .filter_map(|(g, measured)| {
                system
                    .predict_effective_with(&challenger, g, platform)
                    .ok()
                    .map(|p| (p.latency_ms, *measured))
            })
            .collect();
        let after = self.monitor.reset_window(platform, &pairs);
        metrics.predictor_promotions();
        if let Some(ev) = events {
            let mut fields: Vec<(&str, FieldValue)> = vec![
                ("platform", platform.into()),
                ("from", from.into()),
                ("to", arch.into()),
                ("challenger_mape_pct", chal_mape.into()),
                ("samples", chal_samples.into()),
            ];
            if let Some(m) = champ_mape {
                fields.push(("champion_mape_pct", m.into()));
            }
            if let Some(m) = after {
                fields.push(("windowed_mape_after_pct", m.into()));
            }
            ev.emit("predictor_promoted", fields);
        }
    }

    /// Snapshot the replay buffer for `platform`.
    fn replay_pairs(&self, platform: &str) -> Vec<(Arc<Graph>, f64)> {
        self.replay
            .lock()
            .get(platform)
            .map(|buf| buf.iter().cloned().collect())
            .unwrap_or_default()
    }
}

/// Shared state the worker pool needs.
struct WorkerCtx {
    system: Arc<Nnlqp>,
    cache: Arc<ShardedLru>,
    flights: Arc<SingleFlight<CacheKey, Result<FlightOutcome, ServeError>>>,
    metrics: Arc<ServeMetrics>,
    retrain: Arc<RetrainShared>,
    shadow: Option<Arc<Shadow>>,
    events: Option<Arc<EventLog>>,
    farm_wait: Option<Duration>,
    clock: Arc<TraceClock>,
}

struct WriterShared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// The concurrent query service. Share it across client threads with an
/// `Arc`; call [`LatencyService::shutdown`] (or drop it) to drain and
/// snapshot.
pub struct LatencyService {
    system: Arc<Nnlqp>,
    cfg: ServeConfig,
    cache: Arc<ShardedLru>,
    flights: Arc<SingleFlight<CacheKey, Result<FlightOutcome, ServeError>>>,
    metrics: Arc<ServeMetrics>,
    clock: Arc<TraceClock>,
    exemplars: Arc<ExemplarReservoir>,
    platforms: RwLock<HashMap<String, PlatformBinding>>,
    tx: Mutex<Option<Sender<Job>>>,
    retrain: Arc<RetrainShared>,
    shadow: Option<Arc<Shadow>>,
    ab: Option<Arc<AbState>>,
    events: Option<Arc<EventLog>>,
    writer: Option<Arc<WriterShared>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl LatencyService {
    /// Spawn workers (and the retrain loop and metrics writer, when
    /// enabled) and start accepting queries.
    pub fn start(system: Arc<Nnlqp>, cfg: ServeConfig) -> Self {
        let cache = Arc::new(ShardedLru::new(cfg.cache_capacity, cfg.cache_shards));
        let flights = Arc::new(SingleFlight::new());
        // Serve-tier series live next to the facade's query-stage metrics
        // in the system's registry, so one snapshot covers the stack.
        let metrics = Arc::new(ServeMetrics::new(system.registry()));
        let retrain = Arc::new(RetrainShared {
            state: Mutex::new(RetrainState::default()),
            wake: Condvar::new(),
        });
        let ab = cfg.ab.as_ref().map(|a| Arc::new(AbState::new(a.clone())));
        // A/B selection is scored by the shadow evaluator, so it implies
        // a monitor (defaulted when not tuned explicitly).
        let monitor_cfg = cfg
            .monitor
            .or_else(|| ab.as_ref().map(|_| MonitorConfig::default()));
        let shadow = monitor_cfg
            .map(|m| Arc::new(Shadow::new(m, Arc::clone(system.registry()), ab.clone())));
        let events =
            (cfg.event_log_capacity > 0).then(|| Arc::new(EventLog::new(cfg.event_log_capacity)));
        let clock = Arc::new(TraceClock::new());
        let exemplars = Arc::new(ExemplarReservoir::new(EXEMPLARS_PER_CLASS));
        let (tx, rx) = bounded::<Job>(cfg.queue_depth.max(1));
        let ctx = Arc::new(WorkerCtx {
            system: Arc::clone(&system),
            cache: Arc::clone(&cache),
            flights: Arc::clone(&flights),
            metrics: Arc::clone(&metrics),
            retrain: Arc::clone(&retrain),
            shadow: shadow.clone(),
            events: events.clone(),
            farm_wait: cfg.farm_wait,
            clock: Arc::clone(&clock),
        });
        let mut threads = Vec::new();
        for i in 0..cfg.workers.max(1) {
            threads.push(
                std::thread::Builder::new()
                    .name(format!("nnlqp-serve-worker-{i}"))
                    .spawn(worker_loop(rx.clone(), Arc::clone(&ctx)))
                    .expect("spawn worker"),
            );
        }
        drop(rx);
        // The retrain loop runs when there is any trigger for it: the
        // sample-count cadence, or drift alerts from the monitor.
        if (cfg.retrain_after > 0 || shadow.is_some()) && !cfg.retrain_platforms.is_empty() {
            threads.push(
                std::thread::Builder::new()
                    .name("nnlqp-serve-retrain".to_string())
                    .spawn(retrain_loop(RetrainCtx {
                        system: Arc::clone(&system),
                        shared: Arc::clone(&retrain),
                        metrics: Arc::clone(&metrics),
                        shadow: shadow.clone(),
                        ab: ab.clone(),
                        events: events.clone(),
                        threshold: cfg.retrain_after,
                        platforms: cfg.retrain_platforms.clone(),
                        train: cfg.train,
                        quantize_on_publish: cfg.quantize_on_publish,
                    }))
                    .expect("spawn retrain loop"),
            );
        }
        let writer = cfg.metrics_path.as_ref().map(|path| {
            let shared = Arc::new(WriterShared {
                stop: Mutex::new(false),
                wake: Condvar::new(),
            });
            threads.push(
                std::thread::Builder::new()
                    .name("nnlqp-serve-metrics".to_string())
                    .spawn(metrics_writer_loop(
                        Arc::clone(system.registry()),
                        Arc::clone(&shared),
                        path.clone(),
                        cfg.metrics_every.max(Duration::from_millis(10)),
                    ))
                    .expect("spawn metrics writer"),
            );
            shared
        });
        LatencyService {
            system,
            cfg,
            cache,
            flights,
            metrics,
            clock,
            exemplars,
            platforms: RwLock::new(HashMap::new()),
            tx: Mutex::new(Some(tx)),
            retrain,
            shadow,
            ab,
            events,
            writer,
            threads: Mutex::new(threads),
            stopped: AtomicBool::new(false),
        }
    }

    /// Serve one latency query. `model` is shared, never deep-copied
    /// (unless the batch size requires rebatching).
    pub fn query(
        &self,
        model: &Arc<Graph>,
        platform: &str,
        batch: u32,
    ) -> Result<Served, ServeError> {
        self.query_traced(model, platform, batch).0
    }

    /// [`LatencyService::query`] returning the request's full trace
    /// alongside the answer. Tracing is always on — `query` itself goes
    /// through here — so the trace costs nothing extra; this entry point
    /// just hands it back instead of dropping it.
    ///
    /// The trace's stage durations tile its end-to-end latency exactly
    /// (see `nnlqp_obs::trace`), and the trace has already been fed to
    /// the wall-time histograms and the exemplar reservoir.
    pub fn query_traced(
        &self,
        model: &Arc<Graph>,
        platform: &str,
        batch: u32,
    ) -> (Result<Served, ServeError>, RequestTrace) {
        let mut ctx = TraceContext::begin(&self.clock);
        let res = self.query_impl(model, platform, batch, &mut ctx);
        let class = match &res {
            Ok(s) if s.coalesced => "coalesced",
            Ok(s) => match s.source {
                Source::HotCache => "hot_cache",
                Source::Database => "db_hit",
                Source::Measured => "measured",
                Source::Predicted => "degraded",
            },
            Err(e) => error_str(e),
        };
        let trace = ctx.finish(class);
        self.metrics.record_trace(&trace);
        self.exemplars.record(&trace);
        if let Some(ev) = &self.events {
            match &res {
                Ok(s) => ev.emit(
                    "query",
                    vec![
                        ("platform", platform.into()),
                        ("batch", u64::from(batch).into()),
                        ("source", source_str(s.source).into()),
                        ("latency_ms", s.latency_ms.into()),
                        ("approximate", s.approximate.into()),
                        ("coalesced", s.coalesced.into()),
                        ("request_id", trace.request_id.into()),
                        ("wall_ms", trace.total_ms().into()),
                    ],
                ),
                Err(e) => ev.emit(
                    "query",
                    vec![
                        ("platform", platform.into()),
                        ("batch", u64::from(batch).into()),
                        ("source", "error".into()),
                        ("error", error_str(e).into()),
                        ("request_id", trace.request_id.into()),
                        ("wall_ms", trace.total_ms().into()),
                    ],
                ),
            };
        }
        (res, trace)
    }

    fn query_impl(
        &self,
        model: &Arc<Graph>,
        platform: &str,
        batch: u32,
        ctx: &mut TraceContext,
    ) -> Result<Served, ServeError> {
        self.metrics.requests();
        let binding = match self.resolve(platform) {
            Ok(b) => b,
            Err(e) => {
                ctx.stage("resolve", &self.clock);
                self.metrics.errors();
                return Err(e);
            }
        };
        let graph = match effective_graph(model, batch) {
            Ok(g) => g,
            Err(e) => {
                ctx.stage("resolve", &self.clock);
                self.metrics.errors();
                return Err(e);
            }
        };
        let key = CacheKey {
            graph_hash: graph_hash(&graph),
            platform: Arc::clone(&binding.canonical),
            batch,
        };
        ctx.stage("resolve", &self.clock);

        // Tier 1: hot cache.
        let hot = self.cache.get(&key);
        ctx.stage("hot_cache", &self.clock);
        if let Some(ms) = hot {
            self.metrics.hot_hits();
            self.metrics.observe_latency(ms);
            return Ok(Served {
                latency_ms: ms,
                source: Source::HotCache,
                approximate: false,
                coalesced: false,
            });
        }

        // Tier 2: the evolving database; promote hits into the LRU.
        let db_rec = self
            .system
            .db
            .lookup_latency(key.graph_hash, binding.id, batch);
        ctx.stage("db_lookup", &self.clock);
        if let Some(rec) = db_rec {
            self.cache.insert(key, rec.cost_ms);
            self.metrics.set_hot_cache_len(self.cache.len() as f64);
            self.metrics.db_hits();
            self.metrics.observe_latency(rec.cost_ms);
            // Database answers are measurement-backed: shadow-evaluate
            // them on the sampling cadence.
            if let Some(shadow) = &self.shadow {
                shadow.observe(
                    &self.system,
                    self.events.as_deref(),
                    &self.retrain,
                    &self.metrics,
                    &binding.canonical,
                    &graph,
                    rec.cost_ms,
                );
                ctx.stage("shadow_eval", &self.clock);
            }
            return Ok(Served {
                latency_ms: rec.cost_ms,
                source: Source::Database,
                approximate: false,
                coalesced: false,
            });
        }

        // Strict-mode admission gate: neither tier 1 nor tier 2 answered,
        // so serving this request means touching the farm (or the
        // predictor). Run the analyzer first — through the facade's
        // memoized per-(graph hash, platform) report cache, so repeat
        // queries of a rejected graph pay nothing — and turn error-severity
        // findings away before any measurement or database write. Cached
        // entries can never cover a rejected graph: strict is fixed at
        // build time, so everything measured was admitted.
        if self.system.strict() {
            let report =
                self.system
                    .analyze_admission(&graph, key.graph_hash, binding.platform.spec());
            ctx.stage("admission", &self.clock);
            if report.has_errors() {
                self.metrics.lint_rejected();
                return Err(ServeError::LintRejected(report.render_text()));
            }
        }

        // Tier 3: graceful degradation under measurement backlog. Served
        // through the platform's promoted A/B champion when one exists.
        let routed = self
            .ab
            .as_ref()
            .is_some_and(|ab| ab.route(&binding.canonical).is_some());
        if self.backlog() >= self.cfg.degrade_backlog
            && (routed || self.system.has_predictor_for(&binding.canonical))
        {
            if let Ok((p, ticks)) = predict_routed_staged(
                &self.system,
                self.ab.as_deref(),
                &graph,
                &binding.canonical,
                &self.clock,
            ) {
                ctx.stage_at("embed_cache", ticks.embed_ns);
                ctx.stage_at("predict_head", ticks.head_ns);
                self.metrics.degraded();
                self.metrics.observe_latency(p.latency_ms);
                return Ok(Served {
                    latency_ms: p.latency_ms,
                    source: Source::Predicted,
                    approximate: true,
                    coalesced: false,
                });
            }
        }

        // Tier 4: measure, coalescing concurrent misses on the key.
        match self.flights.begin(&key) {
            Role::Follower(flight) => {
                self.metrics.coalesced();
                self.settle(flight.wait(), true, ctx)
            }
            Role::Leader(flight) => {
                // Double-check: the previous flight for this key may have
                // completed between our cache miss and begin(). Workers
                // fill the cache BEFORE completing, so a re-check here
                // makes "one measurement per cached key" airtight.
                if let Some(ms) = self.cache.get(&key) {
                    self.flights.complete(
                        &key,
                        Ok(FlightOutcome {
                            latency_ms: ms,
                            ticks: None,
                        }),
                    );
                    ctx.stage("hot_cache", &self.clock);
                    self.metrics.hot_hits();
                    self.metrics.observe_latency(ms);
                    return Ok(Served {
                        latency_ms: ms,
                        source: Source::HotCache,
                        approximate: false,
                        coalesced: false,
                    });
                }
                let enqueued = {
                    let tx = self.tx.lock();
                    match tx.as_ref() {
                        None => Err(ServeError::ShuttingDown),
                        Some(tx) => tx
                            .try_send(Job {
                                key: key.clone(),
                                platform: binding.platform.clone(),
                                graph,
                                enqueued_ns: self.clock.now_ns(),
                            })
                            .map_err(|e| match e {
                                TrySendError::Full(_) => ServeError::Overloaded,
                                TrySendError::Disconnected(_) => ServeError::ShuttingDown,
                            }),
                    }
                };
                ctx.stage("enqueue", &self.clock);
                if let Err(e) = enqueued {
                    // Publish the rejection so coalesced followers settle
                    // the same way instead of hanging.
                    self.flights.complete(&key, Err(e.clone()));
                    self.metrics.rejected();
                    return Err(e);
                }
                self.settle(flight.wait(), false, ctx)
            }
        }
    }

    fn settle(
        &self,
        outcome: Result<FlightOutcome, ServeError>,
        coalesced: bool,
        ctx: &mut TraceContext,
    ) -> Result<Served, ServeError> {
        // A follower's whole wait is one undecomposable stage — the
        // worker's boundaries may predate its join, so splicing them
        // would mis-tile. The leader owns the flight end to end: its
        // wait *is* queue-wait + measure + db-write + publish, spliced
        // from the worker's ticks on the shared clock (clamped
        // non-decreasing), with the wakeup remainder as `response`.
        if coalesced {
            ctx.stage("coalesce_wait", &self.clock);
        } else {
            if let Ok(out) = &outcome {
                if let Some(t) = out.ticks {
                    ctx.stage_at("queue_wait", t.dequeued_ns);
                    ctx.stage_at("measure", t.measured_ns);
                    ctx.stage_at("db_write", t.db_write_ns);
                    ctx.stage_at("publish", t.published_ns);
                }
            }
            ctx.stage("response", &self.clock);
        }
        match outcome {
            Ok(out) => {
                let ms = out.latency_ms;
                self.metrics.misses();
                self.metrics.observe_latency(ms);
                Ok(Served {
                    latency_ms: ms,
                    source: Source::Measured,
                    approximate: false,
                    coalesced,
                })
            }
            Err(e) => {
                // Belt-and-braces: the pre-admission gate keeps lint
                // rejections out of the measurement path, but a flight
                // could still publish one (e.g. strict toggled mid-build
                // in a future refactor) — count it in its own class.
                if matches!(e, ServeError::LintRejected(_)) {
                    self.metrics.lint_rejected();
                } else {
                    self.metrics.rejected();
                }
                Err(e)
            }
        }
    }

    fn resolve(&self, platform: &str) -> Result<PlatformBinding, ServeError> {
        if let Some(b) = self.platforms.read().get(platform) {
            return Ok(b.clone());
        }
        let handle = Platform::by_name(platform)
            .ok_or_else(|| ServeError::UnknownPlatform(platform.to_string()))?;
        let spec = handle.spec();
        let id = self.system.db.get_or_create_platform(
            &spec.hardware,
            &spec.software,
            spec.dtype.name(),
        );
        let binding = PlatformBinding {
            canonical: Arc::from(handle.name()),
            platform: handle,
            id,
        };
        self.platforms
            .write()
            .insert(platform.to_string(), binding.clone());
        Ok(binding)
    }

    /// Jobs waiting for a worker.
    pub fn backlog(&self) -> usize {
        self.tx.lock().as_ref().map_or(0, Sender::len)
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Hot-cache occupancy.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Per-platform shadow-evaluation quality (`None` when monitoring is
    /// disabled).
    pub fn quality(&self) -> Option<QualityReport> {
        self.shadow.as_ref().map(|s| s.monitor.report())
    }

    /// Install (or replace) the A/B challenger the shadow evaluator
    /// scores against the champion. Returns false when A/B selection is
    /// disabled ([`ServeConfig::ab`] unset) — the handle is dropped.
    pub fn install_challenger(&self, handle: PredictorHandle) -> bool {
        match &self.ab {
            Some(ab) => {
                *ab.challenger.write() = Some(handle);
                true
            }
            None => false,
        }
    }

    /// Per-platform promotion outcome: platform → architecture name of
    /// the promoted champion. Platforms never promoted are absent (they
    /// serve the facade's installed predictor). `None` when A/B selection
    /// is disabled.
    pub fn champions(&self) -> Option<BTreeMap<String, String>> {
        self.ab.as_ref().map(|ab| ab.champions.lock().clone())
    }

    /// The structured event log (`None` when disabled).
    pub fn events(&self) -> Option<&Arc<EventLog>> {
        self.events.as_ref()
    }

    /// The exemplar reservoir: the K slowest full request traces per
    /// terminal class, for Chrome-trace export and tail forensics.
    pub fn exemplars(&self) -> &Arc<ExemplarReservoir> {
        &self.exemplars
    }

    /// The monotonic clock every trace in this service ticks on.
    pub fn trace_clock(&self) -> &Arc<TraceClock> {
        &self.clock
    }

    /// The wrapped facade (database, counters, predictor).
    pub fn system(&self) -> &Arc<Nnlqp> {
        &self.system
    }

    /// Stop intake, drain the queue, join every background thread and
    /// snapshot the database when configured. Durable stores also get a
    /// final WAL seal + compaction. Idempotent.
    pub fn shutdown(&self) -> std::io::Result<()> {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        // Closing the sender lets workers drain remaining jobs, then exit
        // on disconnect — every open flight still completes.
        self.tx.lock().take();
        {
            let mut st = self.retrain.state.lock();
            st.stop = true;
        }
        self.retrain.wake.notify_all();
        if let Some(w) = &self.writer {
            *w.stop.lock() = true;
            w.wake.notify_all();
        }
        let threads: Vec<JoinHandle<()>> = self.threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
        // Final observability snapshots, after every thread has drained —
        // these see the complete run.
        if let Some(path) = &self.cfg.metrics_path {
            let text = to_prometheus(&self.system.registry().snapshot());
            write_atomic(path, text.as_bytes())?;
        }
        if let (Some(path), Some(events)) = (&self.cfg.events_path, &self.events) {
            write_atomic(path, events.to_jsonl().as_bytes())?;
        }
        if let Some(path) = &self.cfg.snapshot_path {
            nnlqp_db::persist::save(&self.system.db, path)?;
        }
        // Durable stores get a closing fold: stop the background
        // compactor first so the final pass cannot race it, then seal the
        // WAL tail into segments. Reopening afterwards replays segments
        // only — no WAL tail to scan.
        if self.system.db.is_durable() {
            self.system.stop_compactor();
            self.system.db.compact()?;
        }
        Ok(())
    }
}

impl Drop for LatencyService {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Write `bytes` to `path` through a temp file + rename, so readers never
/// observe a torn snapshot.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

fn effective_graph(model: &Arc<Graph>, batch: u32) -> Result<Arc<Graph>, ServeError> {
    if batch == 0 {
        return Err(ServeError::BadBatch("batch must be at least 1".to_string()));
    }
    if model.input_shape.batch() == batch as usize {
        Ok(Arc::clone(model))
    } else {
        model
            .rebatch(batch as usize)
            .map(Arc::new)
            .map_err(|e| ServeError::BadBatch(e.to_string()))
    }
}

fn worker_loop(rx: Receiver<Job>, ctx: Arc<WorkerCtx>) -> impl FnOnce() {
    move || {
        while let Ok(job) = rx.recv() {
            let dequeued_ns = ctx.clock.now_ns();
            ctx.metrics
                .observe_queue_wait(dequeued_ns.saturating_sub(job.enqueued_ns) as f64 / 1.0e6);
            ctx.metrics.set_queue_depth(rx.len() as f64);
            let outcome = match ctx.system.query_measured_traced(
                &job.graph,
                &job.platform,
                job.key.batch,
                ctx.farm_wait,
                &ctx.clock,
            ) {
                Ok((qr, mt)) => {
                    ctx.cache.insert(job.key.clone(), qr.latency_ms);
                    ctx.metrics.set_hot_cache_len(ctx.cache.len() as f64);
                    ctx.metrics.measured();
                    {
                        let mut st = ctx.retrain.state.lock();
                        st.fresh += 1;
                    }
                    ctx.retrain.wake.notify_one();
                    // Fresh ground truth: shadow-evaluate it on the
                    // sampling cadence.
                    if let Some(shadow) = &ctx.shadow {
                        shadow.observe(
                            &ctx.system,
                            ctx.events.as_deref(),
                            &ctx.retrain,
                            &ctx.metrics,
                            &job.key.platform,
                            &job.graph,
                            qr.latency_ms,
                        );
                    }
                    Ok(FlightOutcome {
                        latency_ms: qr.latency_ms,
                        ticks: Some(WorkerTicks {
                            dequeued_ns,
                            measured_ns: mt.measured_ns,
                            db_write_ns: mt.db_write_ns,
                            published_ns: ctx.clock.now_ns(),
                        }),
                    })
                }
                Err(e) => Err(e.into()),
            };
            // Database and cache are filled before the flight publishes:
            // anyone arriving after this resolves as a hit, so each key is
            // measured at most once per flight.
            ctx.flights.complete(&job.key, outcome);
        }
    }
}

struct RetrainCtx {
    system: Arc<Nnlqp>,
    shared: Arc<RetrainShared>,
    metrics: Arc<ServeMetrics>,
    shadow: Option<Arc<Shadow>>,
    ab: Option<Arc<AbState>>,
    events: Option<Arc<EventLog>>,
    /// Fresh-sample cadence; 0 means drift alerts are the only trigger.
    threshold: usize,
    platforms: Vec<String>,
    train: TrainPredictorConfig,
    /// Acc(10%) epsilon for the publish-time quantization gate; `None`
    /// keeps every champion f32.
    quantize_on_publish: Option<f64>,
}

/// The publish-time quantization gate: freeze the freshly trained f32
/// champion into its int8 inference form, replay the shadow buffers
/// through both precision levels, and install the quantized model only
/// when its Acc(10%) drops by at most `eps` percentage points versus the
/// f32 champion on every platform with replay data. Any gate failure —
/// quantization error, no replay data, accuracy drop over the epsilon —
/// keeps the f32 champion serving, bumps `serve.quant_rejected` and
/// emits a `quant_rejected` event naming the reason.
fn quantize_gate(ctx: &RetrainCtx, canonical: &[String], eps: f64) {
    let reject = |reason: &str, mut extra: Vec<(&str, FieldValue)>| {
        ctx.metrics.quant_rejected();
        if let Some(ev) = &ctx.events {
            let mut fields: Vec<(&str, FieldValue)> =
                vec![("reason", reason.into()), ("epsilon_pct", eps.into())];
            fields.append(&mut extra);
            ev.emit("quant_rejected", fields);
        }
    };
    let Some(f32_handle) = ctx.system.predictor_handle() else {
        reject("no_predictor", Vec::new());
        return;
    };
    let q_handle = match f32_handle.quantized() {
        Ok(h) => h,
        Err(e) => {
            reject("quantize_failed", vec![("error", e.as_str().into())]);
            return;
        }
    };
    let Some(shadow) = &ctx.shadow else {
        reject("no_eval_data", Vec::new());
        return;
    };
    let mut eval_pairs = 0usize;
    let mut worst_drop = f64::NEG_INFINITY;
    let mut worst_platform = String::new();
    for platform in canonical {
        let mut f32_preds = Vec::new();
        let mut q_preds = Vec::new();
        let mut targets = Vec::new();
        for (g, measured) in shadow.replay_pairs(platform) {
            let (Ok(pf), Ok(pq)) = (
                ctx.system.predict_effective_with(&f32_handle, &g, platform),
                ctx.system.predict_effective_with(&q_handle, &g, platform),
            ) else {
                continue;
            };
            f32_preds.push(pf.latency_ms);
            q_preds.push(pq.latency_ms);
            targets.push(measured);
        }
        if targets.is_empty() {
            continue;
        }
        eval_pairs += targets.len();
        let drop = acc_at(&f32_preds, &targets, 0.10) - acc_at(&q_preds, &targets, 0.10);
        if drop > worst_drop {
            worst_drop = drop;
            worst_platform = platform.clone();
        }
    }
    if eval_pairs == 0 {
        reject("no_eval_data", Vec::new());
        return;
    }
    if worst_drop > eps {
        reject(
            "acc_drop",
            vec![
                ("acc10_drop_pct", worst_drop.into()),
                ("platform", worst_platform.as_str().into()),
                ("eval_pairs", (eval_pairs as u64).into()),
            ],
        );
        return;
    }
    ctx.system.set_predictor(q_handle);
    ctx.metrics.quant_publishes();
    if let Some(ev) = &ctx.events {
        ev.emit(
            "quantized_published",
            vec![
                ("epsilon_pct", eps.into()),
                ("acc10_drop_pct", worst_drop.into()),
                ("eval_pairs", (eval_pairs as u64).into()),
            ],
        );
    }
}

fn retrain_loop(ctx: RetrainCtx) -> impl FnOnce() {
    move || {
        let names: Vec<&str> = ctx.platforms.iter().map(String::as_str).collect();
        // Monitor state is keyed by canonical platform names; resolve the
        // configured (possibly aliased) names once.
        let canonical: Vec<String> = ctx
            .platforms
            .iter()
            .map(|p| Platform::by_name(p).map_or_else(|| p.clone(), |h| h.name().to_string()))
            .collect();
        let mut st = ctx.shared.state.lock();
        loop {
            let drift = st.drift;
            let cadence = ctx.threshold > 0 && st.fresh >= ctx.threshold;
            if drift || cadence {
                let pending = st.fresh;
                st.drift = false;
                st.fresh = 0;
                drop(st);
                let trigger = if drift { "drift" } else { "cadence" };
                if let Some(ev) = &ctx.events {
                    ev.emit(
                        "retrain_start",
                        vec![
                            ("trigger", trigger.into()),
                            ("pending_fresh", pending.into()),
                        ],
                    );
                }
                // Training runs outside the lock; the trained heads are
                // hot-swapped atomically inside the facade.
                let trained = match ctx.system.train_predictor(&names, ctx.train) {
                    Ok(n) => {
                        if n > 0 {
                            ctx.metrics.retrained(n as u64);
                            if drift {
                                ctx.metrics.drift_retrains();
                            }
                        }
                        n
                    }
                    Err(_) => 0,
                };
                // Quantized publishing: runs before the shadow re-score
                // below, so the refreshed windows reflect whichever
                // precision level actually ends up serving.
                if trained > 0 {
                    if let Some(eps) = ctx.quantize_on_publish {
                        quantize_gate(&ctx, &canonical, eps);
                    }
                }
                // A/B: refresh the challenger from the same (grown)
                // database so the race restarts against the new champion
                // with a model of the challenger architecture.
                if let Some(ab) = &ctx.ab {
                    let cfg = TrainPredictorConfig {
                        arch: Some(ab.cfg.challenger),
                        ..ab.cfg.train
                    };
                    if let Ok(Some((handle, _))) = ctx.system.train_predictor_handle(&names, cfg) {
                        *ab.challenger.write() = Some(handle);
                    }
                }
                // Re-score the replay buffers under the new model so the
                // windows (and gauges) reflect the predictor now serving,
                // and record before/after quality per platform.
                if let Some(shadow) = &ctx.shadow {
                    for platform in &canonical {
                        let before = shadow.monitor.windowed_mape(platform);
                        let pairs: Vec<(f64, f64)> = shadow
                            .replay_pairs(platform)
                            .iter()
                            .filter_map(|(g, measured)| {
                                predict_routed(&ctx.system, ctx.ab.as_deref(), g, platform)
                                    .ok()
                                    .map(|p| (p.latency_ms, *measured))
                            })
                            .collect();
                        let after = shadow.monitor.reset_window(platform, &pairs);
                        if let Some(ev) = &ctx.events {
                            let mut fields: Vec<(&str, FieldValue)> = vec![
                                ("platform", platform.as_str().into()),
                                ("trigger", trigger.into()),
                                ("samples", (trained as u64).into()),
                            ];
                            if let Some(m) = before {
                                fields.push(("windowed_mape_before_pct", m.into()));
                            }
                            if let Some(m) = after {
                                fields.push(("windowed_mape_after_pct", m.into()));
                            }
                            ev.emit("retrain_finish", fields);
                        }
                    }
                } else if let Some(ev) = &ctx.events {
                    ev.emit(
                        "retrain_finish",
                        vec![
                            ("trigger", trigger.into()),
                            ("samples", (trained as u64).into()),
                        ],
                    );
                }
                st = ctx.shared.state.lock();
                continue;
            }
            if st.stop {
                break;
            }
            ctx.shared.wake.wait_for(&mut st, Duration::from_millis(20));
        }
    }
}

fn metrics_writer_loop(
    registry: Arc<MetricsRegistry>,
    shared: Arc<WriterShared>,
    path: PathBuf,
    every: Duration,
) -> impl FnOnce() {
    move || {
        let mut stop = shared.stop.lock();
        while !*stop {
            shared.wake.wait_for(&mut stop, every);
            let text = to_prometheus(&registry.snapshot());
            let _ = write_atomic(&path, text.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_models::ModelFamily;
    use nnlqp_sim::{DeviceFarm, PlatformSpec};

    const PLATFORM: &str = "gpu-T4-trt7.1-fp32";

    fn quick_system() -> Arc<Nnlqp> {
        Arc::new(
            Nnlqp::builder()
                .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 2))
                .reps(3)
                .build(),
        )
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_depth: 8,
            cache_capacity: 64,
            cache_shards: 2,
            degrade_backlog: usize::MAX,
            ..Default::default()
        }
    }

    /// Seed the db with a family and train a small real predictor.
    fn trained_system() -> Arc<Nnlqp> {
        let system = quick_system();
        let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 8, 3)
            .into_iter()
            .map(|m| m.graph)
            .collect();
        system
            .warm_cache(&models, &Platform::by_name(PLATFORM).unwrap(), 1)
            .unwrap();
        system
            .train_predictor(
                &[PLATFORM],
                TrainPredictorConfig {
                    epochs: 4,
                    hidden: 16,
                    gnn_layers: 2,
                    ..Default::default()
                },
            )
            .unwrap();
        system
    }

    #[test]
    fn miss_then_db_hit_then_hot_hit() {
        let svc = LatencyService::start(quick_system(), small_cfg());
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        let first = svc.query(&g, PLATFORM, 1).unwrap();
        assert_eq!(first.source, Source::Measured);
        assert!(!first.approximate);
        // The measurement also filled the hot cache.
        let second = svc.query(&g, PLATFORM, 1).unwrap();
        assert_eq!(second.source, Source::HotCache);
        assert_eq!(second.latency_ms, first.latency_ms);
        let m = svc.metrics();
        assert_eq!((m.requests, m.misses, m.hot_hits, m.measured), (2, 1, 1, 1));
        assert!(m.balanced());
    }

    #[test]
    fn db_hits_promote_into_cache() {
        let system = quick_system();
        // Seed the database out-of-band: the service's own cache is cold.
        system
            .query(
                &nnlqp::QueryParams::by_name(
                    ModelFamily::SqueezeNet.canonical().unwrap(),
                    1,
                    PLATFORM,
                )
                .unwrap(),
            )
            .unwrap();
        let svc = LatencyService::start(system, small_cfg());
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        assert_eq!(svc.query(&g, PLATFORM, 1).unwrap().source, Source::Database);
        assert_eq!(svc.query(&g, PLATFORM, 1).unwrap().source, Source::HotCache);
        assert!(svc.metrics().balanced());
    }

    #[test]
    fn invalid_requests_count_as_errors() {
        let svc = LatencyService::start(quick_system(), small_cfg());
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        assert!(matches!(
            svc.query(&g, "quantum-coprocessor", 1),
            Err(ServeError::UnknownPlatform(_))
        ));
        assert!(matches!(
            svc.query(&g, PLATFORM, 0),
            Err(ServeError::BadBatch(_))
        ));
        let m = svc.metrics();
        assert_eq!((m.requests, m.errors), (2, 2));
        assert!(m.balanced());
    }

    #[test]
    fn shutdown_rejects_new_work_and_snapshots() {
        let dir = std::env::temp_dir().join(format!("nnlqp-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("snapshot.db");
        let cfg = ServeConfig {
            snapshot_path: Some(snap.clone()),
            ..small_cfg()
        };
        let svc = LatencyService::start(quick_system(), cfg);
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        svc.query(&g, PLATFORM, 1).unwrap();
        svc.shutdown().unwrap();
        svc.shutdown().unwrap(); // idempotent
        assert!(matches!(
            svc.query(&g, PLATFORM, 4),
            Err(ServeError::ShuttingDown)
        ));
        let restored = nnlqp_db::persist::load(&snap).unwrap();
        assert_eq!(restored.stats().latencies, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degrade_serves_predictions_under_backlog() {
        // degrade_backlog = 0: every cache/db miss degrades immediately.
        let cfg = ServeConfig {
            degrade_backlog: 0,
            ..small_cfg()
        };
        let svc = LatencyService::start(trained_system(), cfg);
        let fresh = Arc::new(
            nnlqp_models::generate_family(ModelFamily::SqueezeNet, 30, 99)
                .pop()
                .unwrap()
                .graph,
        );
        let served = svc.query(&fresh, PLATFORM, 1).unwrap();
        assert_eq!(served.source, Source::Predicted);
        assert!(served.approximate);
        let m = svc.metrics();
        assert_eq!((m.degraded, m.measured), (1, 0));
        assert!(m.balanced());
    }

    #[test]
    fn degrade_repeat_keys_hit_embed_cache() {
        let system = trained_system();
        let cfg = ServeConfig {
            degrade_backlog: 0,
            ..small_cfg()
        };
        let svc = LatencyService::start(Arc::clone(&system), cfg);
        let fresh = Arc::new(
            nnlqp_models::generate_family(ModelFamily::SqueezeNet, 30, 99)
                .pop()
                .unwrap()
                .graph,
        );
        // Degraded answers are not stored in the hot cache or the db, so
        // every repeat re-enters the predictor — where the embed cache
        // turns all but the first into head-only evaluations.
        let first = svc.query(&fresh, PLATFORM, 1).unwrap();
        let second = svc.query(&fresh, PLATFORM, 1).unwrap();
        let third = svc.query(&fresh, PLATFORM, 1).unwrap();
        assert_eq!(first.source, Source::Predicted);
        assert_eq!(second.latency_ms, first.latency_ms);
        assert_eq!(third.latency_ms, first.latency_ms);
        let snap = system.registry().snapshot();
        assert_eq!(snap.counter("predict.embed_cache_misses"), 1);
        assert!(
            snap.counter("predict.embed_cache_hits") >= 2,
            "repeat degraded keys must be embed-cache hits"
        );
    }

    #[test]
    fn retrain_loop_hot_swaps_predictor() {
        let system = quick_system();
        assert!(!system.has_predictor_for(PLATFORM));
        let cfg = ServeConfig {
            retrain_after: 4,
            retrain_platforms: vec![PLATFORM.to_string()],
            train: TrainPredictorConfig {
                epochs: 2,
                hidden: 16,
                gnn_layers: 2,
                ..Default::default()
            },
            ..small_cfg()
        };
        let svc = LatencyService::start(Arc::clone(&system), cfg);
        for m in nnlqp_models::generate_family(ModelFamily::SqueezeNet, 6, 5) {
            svc.query(&Arc::new(m.graph), PLATFORM, 1).unwrap();
        }
        // Retraining happens in the background; give it a bounded moment.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while svc.metrics().retrains == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let m = svc.metrics();
        assert!(m.retrains >= 1, "retrain loop never fired: {m:?}");
        assert!(m.retrain_samples >= 4);
        assert!(system.has_predictor_for(PLATFORM));
        assert!(m.balanced());
    }

    fn quantize_cfg(epsilon: f64) -> ServeConfig {
        ServeConfig {
            retrain_after: 4,
            retrain_platforms: vec![PLATFORM.to_string()],
            train: TrainPredictorConfig {
                epochs: 2,
                hidden: 16,
                gnn_layers: 2,
                ..Default::default()
            },
            quantize_on_publish: Some(epsilon),
            monitor: Some(MonitorConfig {
                sample_every: 1, // 100% shadow sampling fills the replay eval set
                ..Default::default()
            }),
            ..small_cfg()
        }
    }

    #[test]
    fn quantize_gate_publishes_int8_champion_within_epsilon() {
        // A permissive epsilon (Acc(10%) drops are bounded by 100 points)
        // must always accept once replay data exists.
        let system = quick_system();
        let svc = LatencyService::start(Arc::clone(&system), quantize_cfg(1000.0));
        for m in nnlqp_models::generate_family(ModelFamily::SqueezeNet, 6, 5) {
            svc.query(&Arc::new(m.graph), PLATFORM, 1).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while svc.metrics().quant_publishes == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let m = svc.metrics();
        assert!(m.quant_publishes >= 1, "gate never published: {m:?}");
        assert_eq!(m.quant_rejected, 0, "{m:?}");
        // The serving predictor is the int8 model: its identity lives in
        // the quantized band, distinct from every f32 architecture.
        let handle = system.predictor_handle().expect("predictor installed");
        assert_eq!(
            handle.model.identity(),
            nnlqp::QUANT_IDENTITY_OFFSET + handle.model.kind().id()
        );
        let events = svc.events().unwrap().snapshot();
        assert!(events.iter().any(|e| e.kind == "quantized_published"));
        // Degraded predictions still serve through the quantized model.
        assert!(system.has_predictor_for(PLATFORM));
    }

    #[test]
    fn quantize_gate_rejects_below_impossible_epsilon() {
        // epsilon < -100 can never be satisfied: the gate must reject and
        // keep the f32 champion serving.
        let system = quick_system();
        let svc = LatencyService::start(Arc::clone(&system), quantize_cfg(-101.0));
        for m in nnlqp_models::generate_family(ModelFamily::SqueezeNet, 6, 5) {
            svc.query(&Arc::new(m.graph), PLATFORM, 1).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while svc.metrics().quant_rejected == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let m = svc.metrics();
        assert!(m.quant_rejected >= 1, "gate never rejected: {m:?}");
        assert_eq!(m.quant_publishes, 0, "{m:?}");
        let handle = system.predictor_handle().expect("predictor installed");
        assert_eq!(
            handle.model.identity(),
            handle.model.kind().id(),
            "f32 kept"
        );
        let rejected = svc
            .events()
            .unwrap()
            .snapshot()
            .into_iter()
            .find(|e| e.kind == "quant_rejected")
            .expect("quant_rejected event");
        match rejected.field("reason") {
            Some(FieldValue::Str(s)) => assert!(
                s == "acc_drop" || s == "no_eval_data",
                "unexpected reason {s}"
            ),
            other => panic!("missing reason field: {other:?}"),
        }
    }

    #[test]
    fn shadow_eval_feeds_quality_report_and_events() {
        let cfg = ServeConfig {
            monitor: Some(MonitorConfig {
                sample_every: 1, // 100% sampling
                ..Default::default()
            }),
            ..small_cfg()
        };
        let svc = LatencyService::start(trained_system(), cfg);
        for m in nnlqp_models::generate_family(ModelFamily::SqueezeNet, 6, 11) {
            svc.query(&Arc::new(m.graph), PLATFORM, 1).unwrap();
        }
        let report = svc.quality().expect("monitor enabled");
        let q = report.platforms.get(PLATFORM).expect("platform shadowed");
        assert!(q.samples >= 1, "no shadow pairs recorded: {report:?}");
        assert!(q.windowed_mape_pct.is_finite());
        let events = svc.events().expect("event log enabled").snapshot();
        assert!(events.iter().any(|e| e.kind == "query"));
        assert!(events.iter().any(|e| e.kind == "shadow_eval"));
        // Registry carries the labelled quality gauges.
        let snap = svc.system().registry().snapshot();
        let mape_key =
            nnlqp_obs::labelled(nnlqp_obs::monitor_metric_names::WINDOWED_MAPE, PLATFORM);
        assert!(
            snap.gauges.contains_key(&mape_key),
            "gauges: {:?}",
            snap.gauges.keys()
        );
    }

    #[test]
    fn query_lifecycle_events_cover_errors() {
        let svc = LatencyService::start(quick_system(), small_cfg());
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        let _ = svc.query(&g, "quantum-coprocessor", 1);
        svc.query(&g, PLATFORM, 1).unwrap();
        let events = svc.events().unwrap().snapshot();
        let sources: Vec<String> = events
            .iter()
            .filter(|e| e.kind == "query")
            .filter_map(|e| match e.field("source") {
                Some(FieldValue::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(sources, ["error", "measured"]);
    }

    #[test]
    fn gauges_track_queue_and_cache() {
        let svc = LatencyService::start(quick_system(), small_cfg());
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        svc.query(&g, PLATFORM, 1).unwrap();
        let snap = svc.system().registry().snapshot();
        assert_eq!(snap.gauge(crate::metrics::metric_names::HOT_CACHE_LEN), 1.0);
        // Queue fully drained by the time the flight settled.
        assert_eq!(snap.gauge(crate::metrics::metric_names::QUEUE_DEPTH), 0.0);
    }

    #[test]
    fn shutdown_writes_metrics_and_events_files() {
        let dir = std::env::temp_dir().join(format!("nnlqp-serve-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let metrics_path = dir.join("metrics.prom");
        let events_path = dir.join("events.jsonl");
        let cfg = ServeConfig {
            monitor: Some(MonitorConfig::default()),
            metrics_path: Some(metrics_path.clone()),
            events_path: Some(events_path.clone()),
            metrics_every: Duration::from_millis(20),
            ..small_cfg()
        };
        let svc = LatencyService::start(quick_system(), cfg);
        let g = Arc::new(ModelFamily::SqueezeNet.canonical().unwrap());
        svc.query(&g, PLATFORM, 1).unwrap();
        svc.shutdown().unwrap();
        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        let samples = nnlqp_obs::parse_prometheus(&prom).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.name == "nnlqp_serve_requests" && s.value == 1.0));
        let jsonl = std::fs::read_to_string(&events_path).unwrap();
        assert!(!jsonl.trim().is_empty());
        for line in jsonl.lines() {
            line.parse::<serde_json::Value>()
                .expect("event line parses as JSON");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drift_alert_fires_and_retrain_recovers() {
        // Degraded predictor: zero epochs leaves randomly initialised
        // heads, so shadow evals see garbage and drift must fire; the
        // drift-triggered retrain then trains properly and the windowed
        // MAPE measured over the replayed pairs must fall back under the
        // threshold.
        let system = quick_system();
        let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 10, 3)
            .into_iter()
            .map(|m| m.graph)
            .collect();
        system
            .warm_cache(&models, &Platform::by_name(PLATFORM).unwrap(), 1)
            .unwrap();
        system
            .train_predictor(
                &[PLATFORM],
                TrainPredictorConfig {
                    epochs: 0,
                    ..Default::default()
                },
            )
            .unwrap();
        let monitor = MonitorConfig {
            sample_every: 1,
            min_samples: 4,
            mape_threshold_pct: 50.0,
            ..Default::default()
        };
        let cfg = ServeConfig {
            monitor: Some(monitor),
            retrain_after: 0, // drift is the ONLY trigger
            retrain_platforms: vec![PLATFORM.to_string()],
            train: TrainPredictorConfig {
                epochs: 40,
                hidden: 32,
                gnn_layers: 2,
                ..Default::default()
            },
            ..small_cfg()
        };
        let svc = LatencyService::start(Arc::clone(&system), cfg);
        // Serve the warmed models: db hits, each shadow-evaluated.
        for g in &models {
            svc.query(&Arc::new(g.clone()), PLATFORM, 1).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        let events = loop {
            let events = svc.events().unwrap().snapshot();
            if events.iter().any(|e| e.kind == "retrain_finish") {
                break events;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "drift never triggered a retrain: {:?}",
                svc.metrics()
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(svc.metrics().retrains >= 1);
        assert!(events.iter().any(|e| e.kind == "drift_alert"));
        let finish = events
            .iter()
            .rev()
            .find(|e| e.kind == "retrain_finish")
            .expect("retrain_finish event");
        match finish.field("trigger") {
            Some(FieldValue::Str(s)) => assert_eq!(s, "drift"),
            other => panic!("missing trigger field: {other:?}"),
        }
        // Recovery: replayed windowed MAPE under the new model is below
        // the drift threshold again.
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let report = svc.quality().unwrap();
            let q = report.platforms.get(PLATFORM);
            if q.is_some_and(|q| !q.drifting && q.windowed_mape_pct <= monitor.mape_threshold_pct) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "windowed MAPE never recovered: {report:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn degraded_champion_promotes_challenger() {
        // A degenerate (zero-epoch) GraphSAGE champion serves garbage; a
        // properly trained transformer challenger is installed. Shadow
        // evals on db hits run synchronously in the query path, so by the
        // time the query loop finishes, the challenger must have been
        // promoted to per-platform champion.
        let system = quick_system();
        let models: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, 10, 3)
            .into_iter()
            .map(|m| m.graph)
            .collect();
        system
            .warm_cache(&models, &Platform::by_name(PLATFORM).unwrap(), 1)
            .unwrap();
        system
            .train_predictor(
                &[PLATFORM],
                TrainPredictorConfig {
                    epochs: 0,
                    ..Default::default()
                },
            )
            .unwrap();
        let monitor = MonitorConfig {
            sample_every: 1,
            min_samples: 4,
            mape_threshold_pct: 50.0,
            ..Default::default()
        };
        let cfg = ServeConfig {
            monitor: Some(monitor),
            ab: Some(AbConfig::default()),
            // No retrain thread: promotion is the only recovery path.
            retrain_platforms: Vec::new(),
            ..small_cfg()
        };
        let svc = LatencyService::start(Arc::clone(&system), cfg);
        let (challenger, _) = system
            .train_predictor_handle(
                &[PLATFORM],
                TrainPredictorConfig {
                    epochs: 40,
                    hidden: 32,
                    gnn_layers: 2,
                    arch: Some(PredictorKind::Transformer),
                    ..Default::default()
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(challenger.kind(), PredictorKind::Transformer);
        assert!(svc.install_challenger(challenger));
        for g in &models {
            svc.query(&Arc::new(g.clone()), PLATFORM, 1).unwrap();
        }
        let champions = svc.champions().expect("A/B enabled");
        assert_eq!(
            champions.get(PLATFORM).map(String::as_str),
            Some("transformer"),
            "challenger never promoted: {:?} {:?}",
            svc.quality(),
            svc.metrics()
        );
        assert!(svc.metrics().predictor_promotions >= 1);
        let events = svc.events().unwrap().snapshot();
        let promo = events
            .iter()
            .find(|e| e.kind == "predictor_promoted")
            .expect("predictor_promoted event");
        match promo.field("to") {
            Some(FieldValue::Str(s)) => assert_eq!(s, "transformer"),
            other => panic!("missing `to` field: {other:?}"),
        }
        match promo.field("from") {
            Some(FieldValue::Str(s)) => assert_eq!(s, "sage"),
            other => panic!("missing `from` field: {other:?}"),
        }
        // The quality window was re-scored under the promoted champion:
        // drift cleared, MAPE back under the threshold.
        let q = svc.quality().unwrap();
        let q = q.platforms.get(PLATFORM).expect("platform monitored");
        assert!(
            !q.drifting && q.windowed_mape_pct <= 50.0,
            "window not recovered after promotion: {q:?}"
        );
        // Per-architecture challenger gauges were published while the
        // race ran.
        let snap = svc.system().registry().snapshot();
        let key = format!(
            "{}{{platform=\"{PLATFORM}\",arch=\"transformer\"}}",
            crate::metrics::metric_names::AB_CHALLENGER_MAPE
        );
        assert!(
            snap.gauges.contains_key(&key),
            "gauges: {:?}",
            snap.gauges.keys()
        );
        // Degraded answers for the promoted platform now come from the
        // routed transformer champion, bit-identical to predicting
        // through the handle directly.
        let m = svc.metrics();
        assert!(m.balanced());
    }
}
