//! Open-loop load generation for the latency service.
//!
//! The closed-loop `serve-bench` phases measure latency from *dequeue*:
//! each client waits for its previous answer before sending the next
//! request, so when the service stalls the clients stop offering load
//! and the stall never shows in the numbers — *coordinated omission*.
//!
//! This module drives the service the way real traffic does:
//!
//! * arrivals are **scheduled** from a fixed offered rate (exponential
//!   inter-arrival times — a Poisson process), independent of how fast
//!   the service answers;
//! * latency is measured from the request's **intended arrival time**,
//!   so time spent queued behind a stalled service is charged to the
//!   request (as a `sched_wait` stage spliced in front of the service's
//!   own trace — the combined stages still tile the open-loop latency
//!   exactly);
//! * key popularity is **Zipfian**, so a handful of hot keys dominate
//!   (and cache quickly) while the long tail keeps forcing farm
//!   measurements.
//!
//! Sweeping a ladder of offered rates locates the *knee*: the rate where
//! queueing delay takes off and p99 departs from the service floor.

use crate::service::{LatencyService, ServeError};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_obs::{tail_attribution, RequestTrace, StageShare, TraceStage};
use std::collections::BTreeMap;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

/// One open-loop sweep: a ladder of fixed offered rates over the same
/// workload shape.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered arrival rates to sweep, requests/second, ascending.
    pub rates_rps: Vec<f64>,
    /// How long each rate runs.
    pub duration: Duration,
    /// Client threads the scheduled arrivals are dealt across. Bounds
    /// concurrency the honest way: a client behind schedule charges the
    /// delay to the requests it delayed.
    pub clients: usize,
    /// Zipf exponent for key popularity (0 = uniform; ~1 = web-like).
    pub zipf_s: f64,
    /// Target platform name.
    pub platform: String,
    /// Batch size for every request.
    pub batch: u32,
    /// Seed for arrival times and key sampling.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            rates_rps: vec![25.0, 50.0, 100.0],
            duration: Duration::from_secs(2),
            clients: 8,
            zipf_s: 1.1,
            platform: "gpu-T4-trt7.1-fp32".to_string(),
            batch: 1,
            seed: 42,
        }
    }
}

/// Outcome of one fixed-rate run.
#[derive(Debug, Clone)]
pub struct RateReport {
    /// The offered (scheduled) arrival rate, requests/second.
    pub offered_rps: f64,
    /// Completions per second of actual wall time.
    pub achieved_rps: f64,
    /// Arrivals scheduled for this rate.
    pub scheduled: usize,
    /// Requests answered successfully.
    pub completed: usize,
    /// Requests that returned an error (overload rejections, ...).
    pub errors: usize,
    /// Open-loop latency quantiles, milliseconds, measured from each
    /// request's intended arrival time.
    pub p50_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
    /// Mean.
    pub mean_ms: f64,
    /// Requests per terminal class (trace classes; errors appear under
    /// their error class).
    pub outcomes: BTreeMap<&'static str, usize>,
    /// Where the p99 tail went, by stage — shares of the tail's total
    /// open-loop time, `sched_wait` included, summing to 100%.
    pub attribution: Vec<StageShare>,
}

/// Precomputed Zipf CDF over ranks `0..keys`: weight of rank r is
/// `1/(r+1)^s`, so rank 0 is the hottest key.
struct ZipfCdf {
    cdf: Vec<f64>,
}

impl ZipfCdf {
    fn new(keys: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(keys.max(1));
        let mut acc = 0.0;
        for r in 0..keys.max(1) {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("at least one key");
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.uniform();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Run one fixed offered rate against the service: schedule Poisson
/// arrivals over Zipf-popular `models`, deal them across
/// [`OpenLoopConfig::clients`] threads, and measure every request from
/// its intended arrival tick.
pub fn run_rate(
    service: &Arc<LatencyService>,
    models: &[Arc<Graph>],
    cfg: &OpenLoopConfig,
    rate_rps: f64,
) -> RateReport {
    assert!(rate_rps > 0.0, "rate must be positive");
    assert!(!models.is_empty(), "need at least one model");
    let clients = cfg.clients.max(1);
    let mut rng = Rng64::new(cfg.seed ^ rate_rps.to_bits());
    let zipf = ZipfCdf::new(models.len(), cfg.zipf_s);

    // The schedule: cumulative exponential inter-arrival gaps at the
    // offered rate, each arrival bound to a Zipf-sampled key up front so
    // the workload is identical no matter how the service behaves.
    let horizon_ns = cfg.duration.as_nanos() as u64;
    let mut schedule: Vec<(u64, usize)> = Vec::new();
    let mut at_ns = 0u64;
    loop {
        let gap_s = -(1.0 - rng.uniform()).ln() / rate_rps;
        at_ns += (gap_s * 1.0e9) as u64;
        if at_ns >= horizon_ns {
            break;
        }
        schedule.push((at_ns, zipf.sample(&mut rng)));
    }
    let scheduled = schedule.len();

    let clock = Arc::clone(service.trace_clock());
    let results: Mutex<Vec<(Result<(), ServeError>, RequestTrace)>> =
        Mutex::new(Vec::with_capacity(scheduled));
    let barrier = Barrier::new(clients);
    let started = std::thread::scope(|s| {
        for c in 0..clients {
            // Deal arrivals round-robin so every client sees the full
            // rate range, then run them in scheduled order.
            let mine: Vec<(u64, usize)> =
                schedule.iter().skip(c).step_by(clients).copied().collect();
            let (service, clock, results, barrier) = (service, &clock, &results, &barrier);
            let platform = cfg.platform.as_str();
            let batch = cfg.batch;
            s.spawn(move || {
                barrier.wait();
                let base_ns = clock.now_ns();
                let mut local = Vec::with_capacity(mine.len());
                for (offset_ns, key) in mine {
                    let target_ns = base_ns + offset_ns;
                    loop {
                        let now = clock.now_ns();
                        if now >= target_ns {
                            break;
                        }
                        std::thread::sleep(Duration::from_nanos(target_ns - now));
                    }
                    let (res, trace) = service.query_traced(&models[key], platform, batch);
                    // Splice the intended-arrival wait in front of the
                    // service's stages: the combined trace tiles the
                    // open-loop latency exactly, and coordinated
                    // omission shows up as `sched_wait` instead of
                    // disappearing.
                    let mut t = trace;
                    let delay_ns = t.start_ns.saturating_sub(target_ns);
                    t.stages.insert(
                        0,
                        TraceStage {
                            name: "sched_wait",
                            dur_ns: delay_ns,
                        },
                    );
                    t.start_ns -= delay_ns;
                    t.total_ns += delay_ns;
                    local.push((res.map(|_| ()), t));
                }
                results.lock().expect("results lock").append(&mut local);
            });
        }
        clock.now_ns()
    });
    let ended = clock.now_ns();

    let all = results.into_inner().expect("results lock");
    let mut outcomes: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut totals: Vec<u64> = Vec::with_capacity(all.len());
    let mut errors = 0usize;
    let mut traces: Vec<RequestTrace> = Vec::with_capacity(all.len());
    for (res, trace) in all {
        *outcomes.entry(trace.class).or_insert(0) += 1;
        totals.push(trace.total_ns);
        if res.is_err() {
            errors += 1;
        }
        traces.push(trace);
    }
    totals.sort_unstable();
    let completed = totals.len() - errors;
    let wall_s = (ended.saturating_sub(started) as f64 / 1.0e9).max(1.0e-9);
    let pctl = |q: f64| -> f64 {
        if totals.is_empty() {
            return 0.0;
        }
        let rank = ((q * totals.len() as f64).ceil() as usize).clamp(1, totals.len());
        totals[rank - 1] as f64 / 1.0e6
    };
    RateReport {
        offered_rps: rate_rps,
        achieved_rps: completed as f64 / wall_s,
        scheduled,
        completed,
        errors,
        p50_ms: pctl(0.50),
        p99_ms: pctl(0.99),
        p999_ms: pctl(0.999),
        max_ms: totals.last().map_or(0.0, |&n| n as f64 / 1.0e6),
        mean_ms: if totals.is_empty() {
            0.0
        } else {
            totals.iter().sum::<u64>() as f64 / totals.len() as f64 / 1.0e6
        },
        outcomes,
        attribution: tail_attribution(&traces, 0.99),
    }
}

/// Sweep every rate in [`OpenLoopConfig::rates_rps`] in order. Each rate
/// gets its own key space via `models_for` (rate index → models), so a
/// later rate is not served entirely out of caches the previous rate
/// warmed.
pub fn run_sweep(
    service: &Arc<LatencyService>,
    cfg: &OpenLoopConfig,
    models_for: impl Fn(usize) -> Vec<Arc<Graph>>,
) -> Vec<RateReport> {
    cfg.rates_rps
        .iter()
        .enumerate()
        .map(|(i, &rate)| run_rate(service, &models_for(i), cfg, rate))
        .collect()
}

/// The knee of a sweep: the first rate whose p99 exceeds `factor` times
/// the lowest p99 seen at any *earlier* rate — where queueing delay has
/// taken off. The floor is the running minimum rather than the first
/// rate's p99, so one scheduler stall during an unloaded rate cannot
/// poison the baseline and mask the real blowup.
pub fn find_knee(reports: &[RateReport], factor: f64) -> Option<f64> {
    let mut floor = reports.first()?.p99_ms.max(1.0e-6);
    for r in reports.iter().skip(1) {
        if r.p99_ms > floor * factor {
            return Some(r.offered_rps);
        }
        floor = floor.min(r.p99_ms.max(1.0e-6));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_front_loaded_and_in_range() {
        let zipf = ZipfCdf::new(50, 1.1);
        let mut rng = Rng64::new(7);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            let k = zipf.sample(&mut rng);
            assert!(k < 50);
            counts[k] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49] * 5);
        assert!(counts.iter().sum::<usize>() == 20_000);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let zipf = ZipfCdf::new(10, 0.0);
        let mut rng = Rng64::new(11);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn knee_detection_picks_first_blowup() {
        let mk = |rps: f64, p99: f64| RateReport {
            offered_rps: rps,
            achieved_rps: rps,
            scheduled: 100,
            completed: 100,
            errors: 0,
            p50_ms: p99 / 2.0,
            p99_ms: p99,
            p999_ms: p99 * 1.5,
            max_ms: p99 * 2.0,
            mean_ms: p99 / 2.0,
            outcomes: BTreeMap::new(),
            attribution: Vec::new(),
        };
        let reports = vec![mk(25.0, 2.0), mk(50.0, 3.0), mk(100.0, 40.0)];
        assert_eq!(find_knee(&reports, 5.0), Some(100.0));
        assert_eq!(find_knee(&reports[..2], 5.0), None);
        assert_eq!(find_knee(&[], 5.0), None);
        // A stall that inflates an early unloaded rate must not poison
        // the floor: the running minimum recovers at the next rate.
        let noisy = vec![
            mk(25.0, 30.0),
            mk(50.0, 2.0),
            mk(100.0, 3.0),
            mk(200.0, 40.0),
        ];
        assert_eq!(find_knee(&noisy, 5.0), Some(200.0));
    }
}
