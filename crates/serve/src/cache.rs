//! Sharded in-memory LRU hot cache in front of the evolving database.
//!
//! The database answers every repeat query, but each lookup pays a write
//! to nothing and a read under the store's `RwLock` plus (in the paper's
//! deployment) a network round trip. Hot keys — the same model queried by
//! many clients — are instead pinned in a small sharded LRU keyed by
//! `(graph_hash, platform, batch)`. Shards keep lock contention local:
//! two requests for different keys almost never serialize on the same
//! mutex.
//!
//! The LRU list is intrusive over a slab (`Vec` of entries linked by
//! index), so promotion on hit and eviction on insert are O(1) with no
//! per-entry allocation.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache identity of a served latency: graph structure (by hash), target
/// platform (canonical name) and batch size.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `nnlqp_hash::graph_hash` of the effective (rebatched) graph.
    pub graph_hash: u64,
    /// Canonical platform name (shared, not copied, across the service).
    pub platform: Arc<str>,
    /// Batch size.
    pub batch: u32,
}

const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    value: f64,
    prev: usize,
    next: usize,
}

struct Shard {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<f64> {
        let &i = self.map.get(key)?;
        self.detach(i);
        self.push_front(i);
        Some(self.slab[i].value)
    }

    /// Returns true when an entry was evicted to make room.
    fn insert(&mut self, key: CacheKey, value: f64) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            self.detach(i);
            self.push_front(i);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.detach(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
            evicted = true;
        }
        let slot = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.push_front(slot);
        self.map.insert(key, slot);
        evicted
    }
}

/// Thread-safe sharded LRU of `CacheKey → latency_ms`.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    evictions: AtomicU64,
}

impl ShardedLru {
    /// `capacity` total entries spread over `shards` independent LRUs
    /// (shard count is rounded up to a power of two).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    /// Look up and promote to most-recently-used.
    pub fn get(&self, key: &CacheKey) -> Option<f64> {
        self.shard_of(key).lock().get(key)
    }

    /// Insert or refresh; evicts the shard's LRU entry when full.
    pub fn insert(&self, key: CacheKey, value: f64) {
        if self.shard_of(&key).lock().insert(key, value) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently cached (sums shard sizes; racy under writes).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime evictions across all shards.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(hash: u64) -> CacheKey {
        CacheKey {
            graph_hash: hash,
            platform: Arc::from("gpu-T4-trt7.1-fp32"),
            batch: 1,
        }
    }

    #[test]
    fn get_promotes_and_insert_evicts_lru() {
        // Single shard of capacity 2 makes the eviction order observable.
        let cache = ShardedLru::new(2, 1);
        cache.insert(key(1), 10.0);
        cache.insert(key(2), 20.0);
        assert_eq!(cache.get(&key(1)), Some(10.0)); // 1 is now MRU
        cache.insert(key(3), 30.0); // evicts 2, the LRU
        assert_eq!(cache.get(&key(2)), None);
        assert_eq!(cache.get(&key(1)), Some(10.0));
        assert_eq!(cache.get(&key(3)), Some(30.0));
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_without_eviction() {
        let cache = ShardedLru::new(2, 1);
        cache.insert(key(1), 10.0);
        cache.insert(key(1), 11.0);
        assert_eq!(cache.get(&key(1)), Some(11.0));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_platform_or_batch_is_a_distinct_key() {
        let cache = ShardedLru::new(8, 2);
        let base = key(7);
        let other_platform = CacheKey {
            platform: Arc::from("cpu-openppl-fp32"),
            ..base.clone()
        };
        let other_batch = CacheKey {
            batch: 8,
            ..base.clone()
        };
        cache.insert(base.clone(), 1.0);
        cache.insert(other_platform.clone(), 2.0);
        cache.insert(other_batch.clone(), 3.0);
        assert_eq!(cache.get(&base), Some(1.0));
        assert_eq!(cache.get(&other_platform), Some(2.0));
        assert_eq!(cache.get(&other_batch), Some(3.0));
    }

    #[test]
    fn shards_stay_consistent_under_concurrency() {
        let cache = Arc::new(ShardedLru::new(256, 8));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        let k = key(t * 1000 + i % 50);
                        cache.insert(k.clone(), i as f64);
                        let _ = cache.get(&k);
                    }
                });
            }
        });
        // 4 threads × 50 distinct hashes, capacity 256: nothing evicted.
        assert_eq!(cache.len(), 200);
    }
}
