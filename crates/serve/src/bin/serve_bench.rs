//! `serve-bench` — load generator for the concurrent latency service.
//!
//! ```text
//! serve-bench [--clients N] [--dup-requests N] [--fresh-requests N]
//!             [--workers N] [--queue N] [--degrade-backlog N]
//!             [--platform NAME] [--family FAMILY] [--reps R] [--seed S]
//!             [--retrain-after N] [--snapshot FILE] [--durable DIR]
//!             [--monitor-sample N] [--events FILE]
//!             [--metrics FILE] [--metrics-every-ms N] [--ab]
//! ```
//!
//! Two phases drive the two headline behaviours:
//!
//! 1. **Coalesce** — every client queries the *same* models through a
//!    barrier, so concurrent misses collide on identical keys. The farm
//!    must execute exactly one measurement per distinct key, far fewer
//!    than the number of requests.
//! 2. **Degrade** — a predictor is trained on phase-1 ground truth, then
//!    every client floods the service with *disjoint fresh* models. The
//!    worker pool saturates and requests over the backlog threshold are
//!    served approximate predictions instead of waiting.
//!
//! The final metrics snapshot is printed as JSON on stdout — including a
//! per-platform `quality` section when shadow evaluation is on
//! (`--monitor-sample N` samples every Nth measurement-backed answer).
//! `--metrics FILE` writes the whole registry in Prometheus text format
//! every `--metrics-every-ms` (and once more at shutdown), so progress is
//! observable *during* the run, not only at the end; `--events FILE`
//! writes the structured JSONL event log at shutdown. The exit code is
//! nonzero unless the counters balance and both behaviours are visible.
//!
//! `--durable DIR` backs the database with the sharded WAL storage
//! engine at DIR: every measurement is logged before it is acknowledged,
//! shutdown seals and compacts the store, and a later run (or `nnlqp db
//! verify`) can reopen it — the knob behind the CI crash-recovery smoke.
//!
//! `--ab` turns on online A/B champion selection: alongside the GraphSAGE
//! degrade predictor, a transformer challenger is trained on the same
//! phase-1 ground truth and installed; the shadow evaluator scores both
//! and promotes the challenger per platform when the champion drifts. The
//! stdout JSON gains an `ab` section with the champion table and the
//! promotion count.

use nnlqp::{MonitorConfig, Nnlqp, PredictorKind, TrainPredictorConfig};
use nnlqp_models::ModelFamily;
use nnlqp_serve::{AbConfig, LatencyService, ServeConfig, Served};
use nnlqp_sim::{DeviceFarm, PlatformSpec};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  serve-bench [--clients N] [--dup-requests N] [--fresh-requests N]");
    eprintln!("              [--workers N] [--queue N] [--degrade-backlog N]");
    eprintln!("              [--platform NAME] [--family FAMILY] [--reps R] [--seed S]");
    eprintln!("              [--retrain-after N] [--snapshot FILE] [--durable DIR]");
    eprintln!("              [--monitor-sample N] [--events FILE]");
    eprintln!("              [--metrics FILE] [--metrics-every-ms N] [--ab]");
    std::process::exit(2);
}

/// Flags that take no value.
const BOOL_FLAGS: [&str; 1] = ["ab"];

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("error: unexpected argument {a}");
            usage();
        };
        if BOOL_FLAGS.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        match it.next() {
            Some(v) => {
                out.insert(key.to_string(), v.clone());
            }
            None => {
                eprintln!("error: missing value for --{key}");
                usage();
            }
        }
    }
    out
}

fn num(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags.get(key).map_or(default, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("error: --{key} must be a number");
            usage();
        })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args);

    let clients = num(&flags, "clients", 8).max(1);
    let dup_requests = num(&flags, "dup-requests", 6);
    let fresh_requests = num(&flags, "fresh-requests", 6);
    let workers = num(&flags, "workers", 2).max(1);
    let queue = num(&flags, "queue", 64).max(1);
    let degrade_backlog = num(&flags, "degrade-backlog", 3);
    let reps = num(&flags, "reps", 3).max(1);
    let seed = num(&flags, "seed", 42) as u64;
    let retrain_after = num(&flags, "retrain-after", 0);
    let monitor_sample = num(&flags, "monitor-sample", 0);
    let ab = flags.contains_key("ab");
    let metrics_every_ms = num(&flags, "metrics-every-ms", 1000).max(10);
    let platform = flags
        .get("platform")
        .cloned()
        .unwrap_or_else(|| "gpu-T4-trt7.1-fp32".to_string());
    let family = flags
        .get("family")
        .map(|f| {
            ModelFamily::parse(f).unwrap_or_else(|| {
                eprintln!("error: --family must name a model family");
                usage();
            })
        })
        .unwrap_or(ModelFamily::SqueezeNet);

    let mut builder = Nnlqp::builder()
        .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 4))
        .reps(reps)
        .seed(seed);
    if let Some(dir) = flags.get("durable") {
        builder = builder.durable(nnlqp_db::DurableOptions::new(dir));
    }
    let system = Arc::new(builder.try_build().unwrap_or_else(|e| {
        eprintln!("error: failed to open durable store: {e}");
        std::process::exit(1);
    }));

    let cfg = ServeConfig {
        workers,
        queue_depth: queue,
        cache_capacity: 4096,
        cache_shards: 8,
        degrade_backlog,
        retrain_after,
        // Drift-triggered retrains need covered platforms too, so any
        // trigger (cadence or monitor) enables them.
        retrain_platforms: if retrain_after > 0 || monitor_sample > 0 {
            vec![platform.clone()]
        } else {
            Vec::new()
        },
        train: TrainPredictorConfig {
            epochs: 6,
            hidden: 24,
            gnn_layers: 2,
            ..Default::default()
        },
        snapshot_path: flags.get("snapshot").map(Into::into),
        monitor: (monitor_sample > 0 || ab).then(|| MonitorConfig {
            sample_every: monitor_sample.max(1) as u64,
            ..Default::default()
        }),
        ab: ab.then(|| AbConfig {
            challenger: PredictorKind::Transformer,
            train: TrainPredictorConfig {
                epochs: 6,
                hidden: 24,
                gnn_layers: 2,
                ..Default::default()
            },
        }),
        events_path: flags.get("events").map(Into::into),
        metrics_path: flags.get("metrics").map(Into::into),
        metrics_every: Duration::from_millis(metrics_every_ms as u64),
        ..Default::default()
    };
    let service = Arc::new(LatencyService::start(Arc::clone(&system), cfg));

    // Phase 1 — every client hammers the SAME models: singleflight must
    // collapse the duplicate misses onto one measurement per key.
    let shared: Vec<_> = nnlqp_models::generate_family(family, dup_requests, seed)
        .into_iter()
        .map(|m| Arc::new(m.graph))
        .collect();
    let outcomes = run_clients(&service, &platform, clients, |_| shared.clone());
    let measured_after_dup = service.metrics().measured;
    eprintln!(
        "phase 1 (coalesce): {} requests over {} distinct models -> {} farm measurements",
        clients * dup_requests,
        dup_requests,
        measured_after_dup
    );

    // Train a predictor on the freshly measured ground truth so the
    // degrade path has a head to fall back to.
    let samples = system
        .train_predictor(
            &[platform.as_str()],
            TrainPredictorConfig {
                epochs: 6,
                hidden: 24,
                gnn_layers: 2,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: predictor training failed: {e}");
            std::process::exit(1);
        });
    eprintln!("trained the degrade predictor on {samples} samples");

    // A/B: a transformer challenger trained on the same ground truth
    // rides shotgun on the shadow evaluator.
    if ab {
        match system.train_predictor_handle(
            &[platform.as_str()],
            TrainPredictorConfig {
                epochs: 6,
                hidden: 24,
                gnn_layers: 2,
                arch: Some(PredictorKind::Transformer),
                ..Default::default()
            },
        ) {
            Ok(Some((handle, n))) => {
                service.install_challenger(handle);
                eprintln!("installed a transformer challenger trained on {n} samples");
            }
            Ok(None) => eprintln!("no samples to train a challenger on"),
            Err(e) => {
                eprintln!("error: challenger training failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Phase 2 — every client floods DISJOINT fresh models: the worker
    // pool saturates and over-backlog requests degrade to predictions.
    let degrade_outcomes = run_clients(&service, &platform, clients, |c| {
        nnlqp_models::generate_family(family, fresh_requests, seed ^ (0x5eed_0000 + c as u64))
            .into_iter()
            .map(|m| Arc::new(m.graph))
            .collect()
    });
    let snapshot = service.metrics();
    eprintln!(
        "phase 2 (degrade): {} fresh requests -> {} served approximate",
        clients * fresh_requests,
        snapshot.degraded
    );
    if let Err(e) = service.shutdown() {
        eprintln!("error: shutdown snapshot failed: {e}");
        std::process::exit(1);
    }

    let snapshot = service.metrics();
    // One JSON document on stdout: the metrics snapshot, extended with a
    // per-platform shadow-evaluation quality section when monitoring ran.
    let serde_json::Value::Object(mut doc) = snapshot.to_json() else {
        unreachable!("metrics snapshot renders an object");
    };
    if let Some(quality) = service.quality() {
        let q: serde_json::Value = quality
            .to_json_string()
            .parse()
            .expect("quality report renders valid JSON");
        doc.insert("quality".to_string(), q);
    }
    if let Some(champions) = service.champions() {
        let table: std::collections::BTreeMap<String, serde_json::Value> = champions
            .into_iter()
            .map(|(p, arch)| (p, serde_json::Value::String(arch)))
            .collect();
        doc.insert(
            "ab".to_string(),
            serde_json::json!({
                "champions": serde_json::Value::Object(table),
                "promotions": snapshot.predictor_promotions,
            }),
        );
    }
    println!("{}", serde_json::Value::Object(doc));
    // The full registry (facade query stages + serve tiers) on stderr,
    // keeping stdout a single JSON document.
    eprintln!(
        "registry: {}",
        system.registry().snapshot().to_json_string()
    );
    if let Some(path) = flags.get("metrics") {
        eprintln!("wrote Prometheus metrics to {path}");
    }
    if let Some(path) = flags.get("events") {
        eprintln!("wrote JSONL event log to {path}");
    }

    // Pass/fail: the counters must partition the request stream, phase 1
    // must show coalescing (measurements < requests on duplicated keys),
    // and phase 2 must show the degrade path firing.
    let mut failures = Vec::new();
    if !snapshot.balanced() {
        failures.push("metrics do not balance".to_string());
    }
    if outcomes.iter().any(Result::is_err) {
        failures.push("phase 1 had failed requests".to_string());
    }
    if measured_after_dup >= (clients * dup_requests) as u64 {
        failures.push(format!(
            "no coalescing: {} measurements for {} duplicate requests",
            measured_after_dup,
            clients * dup_requests
        ));
    }
    if clients > 1 && snapshot.coalesced == 0 {
        failures.push("no request ever joined an existing flight".to_string());
    }
    if fresh_requests > 0 && snapshot.degraded == 0 {
        failures.push("degrade path never fired under saturation".to_string());
    }
    let degrade_errors = degrade_outcomes
        .iter()
        .filter(|o| matches!(o, Err(e) if !e.contains("queue full")))
        .count();
    if degrade_errors > 0 {
        failures.push(format!("{degrade_errors} unexpected phase 2 errors"));
    }
    if failures.is_empty() {
        eprintln!("serve-bench: OK");
    } else {
        for f in &failures {
            eprintln!("serve-bench: FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// Spawn `clients` threads behind a barrier; each queries its model list
/// in order. Returns every outcome (latency or rendered error).
fn run_clients(
    service: &Arc<LatencyService>,
    platform: &str,
    clients: usize,
    models_for: impl Fn(usize) -> Vec<Arc<nnlqp_ir::Graph>> + Sync,
) -> Vec<Result<Served, String>> {
    let barrier = Barrier::new(clients);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let service = Arc::clone(service);
                let models = models_for(c);
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    models
                        .iter()
                        .map(|m| service.query(m, platform, 1).map_err(|e| e.to_string()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    })
}
