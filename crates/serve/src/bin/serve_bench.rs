//! `serve-bench` — load generator for the concurrent latency service.
//!
//! ```text
//! serve-bench [--clients N] [--dup-requests N] [--fresh-requests N]
//!             [--workers N] [--queue N] [--degrade-backlog N]
//!             [--platform NAME] [--family FAMILY] [--reps R] [--seed S]
//!             [--retrain-after N] [--snapshot FILE] [--durable DIR]
//!             [--monitor-sample N] [--events FILE]
//!             [--metrics FILE] [--metrics-every-ms N] [--ab]
//! ```
//!
//! Two phases drive the two headline behaviours:
//!
//! 1. **Coalesce** — every client queries the *same* models through a
//!    barrier, so concurrent misses collide on identical keys. The farm
//!    must execute exactly one measurement per distinct key, far fewer
//!    than the number of requests.
//! 2. **Degrade** — a predictor is trained on phase-1 ground truth, then
//!    every client floods the service with *disjoint fresh* models. The
//!    worker pool saturates and requests over the backlog threshold are
//!    served approximate predictions instead of waiting.
//!
//! The final metrics snapshot is printed as JSON on stdout — including a
//! per-platform `quality` section when shadow evaluation is on
//! (`--monitor-sample N` samples every Nth measurement-backed answer).
//! `--metrics FILE` writes the whole registry in Prometheus text format
//! every `--metrics-every-ms` (and once more at shutdown), so progress is
//! observable *during* the run, not only at the end; `--events FILE`
//! writes the structured JSONL event log at shutdown. The exit code is
//! nonzero unless the counters balance and both behaviours are visible.
//!
//! `--durable DIR` backs the database with the sharded WAL storage
//! engine at DIR: every measurement is logged before it is acknowledged,
//! shutdown seals and compacts the store, and a later run (or `nnlqp db
//! verify`) can reopen it — the knob behind the CI crash-recovery smoke.
//!
//! `--ab` turns on online A/B champion selection: alongside the GraphSAGE
//! degrade predictor, a transformer challenger is trained on the same
//! phase-1 ground truth and installed; the shadow evaluator scores both
//! and promotes the challenger per platform when the champion drifts. The
//! stdout JSON gains an `ab` section with the champion table and the
//! promotion count.

use nnlqp::{MonitorConfig, Nnlqp, PredictorKind, TrainPredictorConfig};
use nnlqp_models::ModelFamily;
use nnlqp_obs::{timeline_of, to_chrome_json, HistogramSnapshot};
use nnlqp_serve::{
    find_knee, run_sweep, AbConfig, LatencyService, OpenLoopConfig, ServeConfig, Served,
};
use nnlqp_sim::{DeviceFarm, PlatformSpec};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!("  serve-bench [--clients N] [--dup-requests N] [--fresh-requests N]");
    eprintln!("              [--workers N] [--queue N] [--degrade-backlog N]");
    eprintln!("              [--platform NAME] [--family FAMILY] [--reps R] [--seed S]");
    eprintln!("              [--retrain-after N] [--snapshot FILE] [--durable DIR]");
    eprintln!("              [--monitor-sample N] [--events FILE]");
    eprintln!("              [--metrics FILE] [--metrics-every-ms N] [--ab]");
    eprintln!("  serve-bench --open-loop [--rates R1,R2,...] [--duration-ms N] [--keys N]");
    eprintln!("              [--zipf S] [--clients N] [--workers N] [--queue N]");
    eprintln!("              [--degrade-backlog N] [--platform NAME] [--family FAMILY]");
    eprintln!("              [--reps R] [--seed S] [--out FILE] [--trace-out FILE]");
    std::process::exit(2);
}

/// Flags that take no value.
const BOOL_FLAGS: [&str; 2] = ["ab", "open-loop"];

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("error: unexpected argument {a}");
            usage();
        };
        if BOOL_FLAGS.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        match it.next() {
            Some(v) => {
                out.insert(key.to_string(), v.clone());
            }
            None => {
                eprintln!("error: missing value for --{key}");
                usage();
            }
        }
    }
    out
}

fn num(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags.get(key).map_or(default, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("error: --{key} must be a number");
            usage();
        })
    })
}

/// Quantile summary of a wall-time histogram, for the closed-loop
/// queue-wait printout and its JSON section.
fn wait_summary(h: &HistogramSnapshot) -> serde_json::Value {
    serde_json::json!({
        "count": h.count,
        "mean_ms": h.mean(),
        "p50_ms": h.quantile(0.50),
        "p99_ms": h.quantile(0.99),
        "p999_ms": h.quantile(0.999),
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args);
    if flags.contains_key("open-loop") {
        open_loop_main(&flags);
        return;
    }

    let clients = num(&flags, "clients", 8).max(1);
    let dup_requests = num(&flags, "dup-requests", 6);
    let fresh_requests = num(&flags, "fresh-requests", 6);
    let workers = num(&flags, "workers", 2).max(1);
    let queue = num(&flags, "queue", 64).max(1);
    let degrade_backlog = num(&flags, "degrade-backlog", 3);
    let reps = num(&flags, "reps", 3).max(1);
    let seed = num(&flags, "seed", 42) as u64;
    let retrain_after = num(&flags, "retrain-after", 0);
    let monitor_sample = num(&flags, "monitor-sample", 0);
    let ab = flags.contains_key("ab");
    let metrics_every_ms = num(&flags, "metrics-every-ms", 1000).max(10);
    let platform = flags
        .get("platform")
        .cloned()
        .unwrap_or_else(|| "gpu-T4-trt7.1-fp32".to_string());
    let family = flags
        .get("family")
        .map(|f| {
            ModelFamily::parse(f).unwrap_or_else(|| {
                eprintln!("error: --family must name a model family");
                usage();
            })
        })
        .unwrap_or(ModelFamily::SqueezeNet);

    let mut builder = Nnlqp::builder()
        .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 4))
        .reps(reps)
        .seed(seed);
    if let Some(dir) = flags.get("durable") {
        builder = builder.durable(nnlqp_db::DurableOptions::new(dir));
    }
    let system = Arc::new(builder.try_build().unwrap_or_else(|e| {
        eprintln!("error: failed to open durable store: {e}");
        std::process::exit(1);
    }));

    let cfg = ServeConfig {
        workers,
        queue_depth: queue,
        cache_capacity: 4096,
        cache_shards: 8,
        degrade_backlog,
        retrain_after,
        // Drift-triggered retrains need covered platforms too, so any
        // trigger (cadence or monitor) enables them.
        retrain_platforms: if retrain_after > 0 || monitor_sample > 0 {
            vec![platform.clone()]
        } else {
            Vec::new()
        },
        train: TrainPredictorConfig {
            epochs: 6,
            hidden: 24,
            gnn_layers: 2,
            ..Default::default()
        },
        snapshot_path: flags.get("snapshot").map(Into::into),
        monitor: (monitor_sample > 0 || ab).then(|| MonitorConfig {
            sample_every: monitor_sample.max(1) as u64,
            ..Default::default()
        }),
        ab: ab.then(|| AbConfig {
            challenger: PredictorKind::Transformer,
            train: TrainPredictorConfig {
                epochs: 6,
                hidden: 24,
                gnn_layers: 2,
                ..Default::default()
            },
        }),
        events_path: flags.get("events").map(Into::into),
        metrics_path: flags.get("metrics").map(Into::into),
        metrics_every: Duration::from_millis(metrics_every_ms as u64),
        ..Default::default()
    };
    let service = Arc::new(LatencyService::start(Arc::clone(&system), cfg));

    // Phase 1 — every client hammers the SAME models: singleflight must
    // collapse the duplicate misses onto one measurement per key.
    let shared: Vec<_> = nnlqp_models::generate_family(family, dup_requests, seed)
        .into_iter()
        .map(|m| Arc::new(m.graph))
        .collect();
    let outcomes = run_clients(&service, &platform, clients, |_| shared.clone());
    let measured_after_dup = service.metrics().measured;
    eprintln!(
        "phase 1 (coalesce): {} requests over {} distinct models -> {} farm measurements",
        clients * dup_requests,
        dup_requests,
        measured_after_dup
    );

    // Train a predictor on the freshly measured ground truth so the
    // degrade path has a head to fall back to.
    let samples = system
        .train_predictor(
            &[platform.as_str()],
            TrainPredictorConfig {
                epochs: 6,
                hidden: 24,
                gnn_layers: 2,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: predictor training failed: {e}");
            std::process::exit(1);
        });
    eprintln!("trained the degrade predictor on {samples} samples");

    // A/B: a transformer challenger trained on the same ground truth
    // rides shotgun on the shadow evaluator.
    if ab {
        match system.train_predictor_handle(
            &[platform.as_str()],
            TrainPredictorConfig {
                epochs: 6,
                hidden: 24,
                gnn_layers: 2,
                arch: Some(PredictorKind::Transformer),
                ..Default::default()
            },
        ) {
            Ok(Some((handle, n))) => {
                service.install_challenger(handle);
                eprintln!("installed a transformer challenger trained on {n} samples");
            }
            Ok(None) => eprintln!("no samples to train a challenger on"),
            Err(e) => {
                eprintln!("error: challenger training failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Phase 2 — every client floods DISJOINT fresh models: the worker
    // pool saturates and over-backlog requests degrade to predictions.
    let degrade_outcomes = run_clients(&service, &platform, clients, |c| {
        nnlqp_models::generate_family(family, fresh_requests, seed ^ (0x5eed_0000 + c as u64))
            .into_iter()
            .map(|m| Arc::new(m.graph))
            .collect()
    });
    let snapshot = service.metrics();
    eprintln!(
        "phase 2 (degrade): {} fresh requests -> {} served approximate",
        clients * fresh_requests,
        snapshot.degraded
    );
    if let Err(e) = service.shutdown() {
        eprintln!("error: shutdown snapshot failed: {e}");
        std::process::exit(1);
    }

    let snapshot = service.metrics();
    // One JSON document on stdout: the metrics snapshot, extended with a
    // per-platform shadow-evaluation quality section when monitoring ran.
    let serde_json::Value::Object(mut doc) = snapshot.to_json() else {
        unreachable!("metrics snapshot renders an object");
    };
    if let Some(quality) = service.quality() {
        let q: serde_json::Value = quality
            .to_json_string()
            .parse()
            .expect("quality report renders valid JSON");
        doc.insert("quality".to_string(), q);
    }
    // Enqueue→dequeue queue wait, recorded by the workers on every
    // dequeued job — reported separately so closed-loop numbers can be
    // compared honestly against open-loop runs at the same offered rate
    // (closed-loop latency-from-dequeue hides exactly this wait).
    let registry_snap = system.registry().snapshot();
    if let Some(h) = registry_snap
        .histograms
        .get(nnlqp_serve::metric_names::QUEUE_WAIT_MS)
    {
        if h.count > 0 {
            eprintln!(
                "queue wait (enqueue->dequeue): {} jobs, mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
            );
        }
        doc.insert("queue_wait".to_string(), wait_summary(h));
    }
    if let Some(champions) = service.champions() {
        let table: std::collections::BTreeMap<String, serde_json::Value> = champions
            .into_iter()
            .map(|(p, arch)| (p, serde_json::Value::String(arch)))
            .collect();
        doc.insert(
            "ab".to_string(),
            serde_json::json!({
                "champions": serde_json::Value::Object(table),
                "promotions": snapshot.predictor_promotions,
            }),
        );
    }
    println!("{}", serde_json::Value::Object(doc));
    // The full registry (facade query stages + serve tiers) on stderr,
    // keeping stdout a single JSON document.
    eprintln!(
        "registry: {}",
        system.registry().snapshot().to_json_string()
    );
    if let Some(path) = flags.get("metrics") {
        eprintln!("wrote Prometheus metrics to {path}");
    }
    if let Some(path) = flags.get("events") {
        eprintln!("wrote JSONL event log to {path}");
    }

    // Pass/fail: the counters must partition the request stream, phase 1
    // must show coalescing (measurements < requests on duplicated keys),
    // and phase 2 must show the degrade path firing.
    let mut failures = Vec::new();
    if !snapshot.balanced() {
        failures.push("metrics do not balance".to_string());
    }
    if outcomes.iter().any(Result::is_err) {
        failures.push("phase 1 had failed requests".to_string());
    }
    if measured_after_dup >= (clients * dup_requests) as u64 {
        failures.push(format!(
            "no coalescing: {} measurements for {} duplicate requests",
            measured_after_dup,
            clients * dup_requests
        ));
    }
    if clients > 1 && snapshot.coalesced == 0 {
        failures.push("no request ever joined an existing flight".to_string());
    }
    if fresh_requests > 0 && snapshot.degraded == 0 {
        failures.push("degrade path never fired under saturation".to_string());
    }
    let degrade_errors = degrade_outcomes
        .iter()
        .filter(|o| matches!(o, Err(e) if !e.contains("queue full")))
        .count();
    if degrade_errors > 0 {
        failures.push(format!("{degrade_errors} unexpected phase 2 errors"));
    }
    if failures.is_empty() {
        eprintln!("serve-bench: OK");
    } else {
        for f in &failures {
            eprintln!("serve-bench: FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// `serve-bench --open-loop`: sweep a ladder of fixed offered arrival
/// rates (Poisson arrivals, Zipfian key popularity), measure every
/// request from its intended arrival time, and publish the result as a
/// schema-stable JSON document (`--out`, checked in as
/// `BENCH_serve.json`) plus a Chrome trace of the slowest class's
/// exemplar requests (`--trace-out`).
fn open_loop_main(flags: &HashMap<String, String>) {
    let clients = num(flags, "clients", 8).max(1);
    let workers = num(flags, "workers", 2).max(1);
    let queue = num(flags, "queue", 64).max(1);
    let keys = num(flags, "keys", 24).max(1);
    let duration_ms = num(flags, "duration-ms", 1000).max(10);
    let reps = num(flags, "reps", 3).max(1);
    let seed = num(flags, "seed", 42) as u64;
    // No predictor is trained in open-loop mode, so the degrade tier
    // stays cold regardless — saturation shows up as queue wait and
    // overload rejections, which is the behaviour the sweep probes.
    let degrade_backlog = num(flags, "degrade-backlog", usize::MAX);
    let zipf_s: f64 = flags.get("zipf").map_or(1.1, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("error: --zipf must be a number");
            usage();
        })
    });
    let rates: Vec<f64> = flags
        .get("rates")
        .map(String::as_str)
        .unwrap_or("25,50,100")
        .split(',')
        .map(|r| {
            r.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: --rates must be comma-separated numbers");
                usage();
            })
        })
        .collect();
    if rates.is_empty() || rates.windows(2).any(|w| w[0] >= w[1]) {
        eprintln!("error: --rates must be strictly increasing");
        usage();
    }
    let platform = flags
        .get("platform")
        .cloned()
        .unwrap_or_else(|| "gpu-T4-trt7.1-fp32".to_string());
    let family = flags
        .get("family")
        .map(|f| {
            ModelFamily::parse(f).unwrap_or_else(|| {
                eprintln!("error: --family must name a model family");
                usage();
            })
        })
        .unwrap_or(ModelFamily::SqueezeNet);

    let system = Arc::new(
        Nnlqp::builder()
            .farm(DeviceFarm::new(&PlatformSpec::table2_platforms(), 4))
            .reps(reps)
            .seed(seed)
            .build(),
    );
    let service = Arc::new(LatencyService::start(
        Arc::clone(&system),
        ServeConfig {
            workers,
            queue_depth: queue,
            cache_capacity: 4096,
            cache_shards: 8,
            degrade_backlog,
            ..Default::default()
        },
    ));

    let cfg = OpenLoopConfig {
        rates_rps: rates.clone(),
        duration: Duration::from_millis(duration_ms as u64),
        clients,
        zipf_s,
        platform: platform.clone(),
        batch: 1,
        seed,
    };
    // Each rate gets a fresh Zipf key space: a later rate must win or
    // lose on its own queueing behaviour, not on caches the previous
    // rate warmed.
    let reports = run_sweep(&service, &cfg, |i| {
        nnlqp_models::generate_family(family, keys, seed ^ ((i as u64 + 1) << 20))
            .into_iter()
            .map(|m| Arc::new(m.graph))
            .collect()
    });
    for r in &reports {
        eprintln!(
            "rate {:>7.1} rps: {} scheduled, {} ok, {} err | p50 {:>8.3} ms  p99 {:>9.3} ms  p999 {:>9.3} ms",
            r.offered_rps, r.scheduled, r.completed, r.errors, r.p50_ms, r.p99_ms, r.p999_ms,
        );
    }
    let knee = find_knee(&reports, 5.0);
    match knee {
        Some(rps) => eprintln!("knee: p99 leaves the floor at {rps} rps (>5x the unloaded p99)"),
        None => eprintln!("knee: not reached within the swept rates"),
    }

    // Chrome trace of the slowest class's retained exemplars.
    if let Some(path) = flags.get("trace-out") {
        let snap = service.exemplars().snapshot();
        if let Some(class) = service.exemplars().slowest_class() {
            let traces = &snap[class];
            let json = to_chrome_json(&timeline_of(traces));
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "wrote Chrome trace of {} '{class}' exemplars to {path}",
                traces.len()
            );
        }
    }
    if let Err(e) = service.shutdown() {
        eprintln!("error: shutdown failed: {e}");
        std::process::exit(1);
    }

    let rate_docs: Vec<serde_json::Value> = reports
        .iter()
        .map(|r| {
            let outcomes: std::collections::BTreeMap<String, serde_json::Value> = r
                .outcomes
                .iter()
                .map(|(&class, &n)| (class.to_string(), serde_json::json!(n)))
                .collect();
            let attribution: Vec<serde_json::Value> = r
                .attribution
                .iter()
                .map(|s| {
                    serde_json::json!({
                        "stage": s.stage,
                        "share_pct": s.share_pct,
                        "mean_ms": s.mean_ms,
                        "total_ms": s.total_ns as f64 / 1.0e6,
                    })
                })
                .collect();
            serde_json::json!({
                "offered_rps": r.offered_rps,
                "achieved_rps": r.achieved_rps,
                "scheduled": r.scheduled,
                "completed": r.completed,
                "errors": r.errors,
                "latency_ms": {
                    "p50": r.p50_ms,
                    "p99": r.p99_ms,
                    "p999": r.p999_ms,
                    "max": r.max_ms,
                    "mean": r.mean_ms,
                },
                "outcomes": serde_json::Value::Object(outcomes),
                "tail_attribution_p99": attribution,
            })
        })
        .collect();
    let doc = serde_json::json!({
        "schema_version": 1,
        "mode": "open_loop",
        "config": {
            "platform": platform,
            "family": family.name(),
            "keys_per_rate": keys,
            "zipf_s": zipf_s,
            "duration_ms": duration_ms,
            "clients": clients,
            "workers": workers,
            "queue_depth": queue,
            "reps": reps,
            "seed": seed,
        },
        "rates": rate_docs,
        "knee_rps": knee,
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("render BENCH doc");
    println!("{rendered}");
    if let Some(path) = flags.get("out") {
        if let Err(e) = std::fs::write(path, format!("{rendered}\n")) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    // Pass/fail: quantiles must be ordered, attribution must tile the
    // tail (shares sum to ~100%), and every scheduled arrival must have
    // been accounted for.
    let mut failures = Vec::new();
    for r in &reports {
        if r.completed + r.errors != r.scheduled {
            failures.push(format!(
                "rate {}: {} + {} outcomes != {} scheduled",
                r.offered_rps, r.completed, r.errors, r.scheduled
            ));
        }
        if !(r.p50_ms <= r.p99_ms && r.p99_ms <= r.p999_ms && r.p999_ms <= r.max_ms) {
            failures.push(format!("rate {}: quantiles out of order", r.offered_rps));
        }
        let share_sum: f64 = r.attribution.iter().map(|s| s.share_pct).sum();
        if !r.attribution.is_empty() && (share_sum - 100.0).abs() > 0.5 {
            failures.push(format!(
                "rate {}: attribution shares sum to {share_sum:.2}%",
                r.offered_rps
            ));
        }
    }
    if failures.is_empty() {
        eprintln!("serve-bench --open-loop: OK");
    } else {
        for f in &failures {
            eprintln!("serve-bench --open-loop: FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// Spawn `clients` threads behind a barrier; each queries its model list
/// in order. Returns every outcome (latency or rendered error).
fn run_clients(
    service: &Arc<LatencyService>,
    platform: &str,
    clients: usize,
    models_for: impl Fn(usize) -> Vec<Arc<nnlqp_ir::Graph>> + Sync,
) -> Vec<Result<Served, String>> {
    let barrier = Barrier::new(clients);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let service = Arc::clone(service);
                let models = models_for(c);
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    models
                        .iter()
                        .map(|m| service.query(m, platform, 1).map_err(|e| e.to_string()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    })
}
