//! Request-scoped tracing with exact stage tiling, for the serving layer.
//!
//! Every request carries a [`TraceContext`]: a cheap monotone request id
//! plus a list of stage *boundaries* — integer nanosecond ticks on a
//! shared monotonic [`TraceClock`]. A stage's duration is the delta
//! between consecutive boundaries, and the trace total is the delta
//! between the first and last boundary, so the stage durations **tile the
//! end-to-end latency exactly** (integer arithmetic, no float drift) —
//! the same invariant the query-pipeline spans enforce on the simulated
//! clock, applied to real wall time.
//!
//! On top of the per-request traces:
//!
//! * [`ExemplarReservoir`] — a bounded reservoir retaining the K slowest
//!   full traces per terminal class (hot-cache hit, measured miss,
//!   coalesced follower, degraded, ...), exportable through the existing
//!   Chrome-trace writer via [`timeline_of`];
//! * [`tail_attribution`] — "where does the tail go": aggregate the stage
//!   durations of every request at or above a latency quantile and report
//!   each stage's share of the tail's total time.

use crate::span::{Recorder, Span, Timeline, Track};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Global monotone request-id source; ids order requests across every
/// service instance in the process.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// A shared monotonic wall clock: all stage boundaries of a service are
/// ticks (nanoseconds) from one origin, so worker-side boundaries can be
/// spliced into a requester's trace and still tile exactly.
#[derive(Debug, Clone)]
pub struct TraceClock {
    origin: Instant,
}

impl Default for TraceClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceClock {
    /// A clock with its origin now.
    pub fn new() -> Self {
        TraceClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds since the clock's origin.
    pub fn now_ns(&self) -> u64 {
        // A u64 of nanoseconds holds ~584 years; the cast cannot wrap in
        // any real process lifetime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// One stage of a finished trace: everything between two consecutive
/// boundaries, attributed to the name of the later one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStage {
    /// Stage name (`"queue_wait"`, `"measure"`, ...).
    pub name: &'static str,
    /// Duration in whole nanoseconds.
    pub dur_ns: u64,
}

/// A finished request trace: terminal class, total latency and the stage
/// durations that tile it exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Process-wide monotone request id.
    pub request_id: u64,
    /// Terminal class the request ended in (`"hot_cache"`, `"measured"`,
    /// `"coalesced"`, `"degraded"`, an error class, ...).
    pub class: &'static str,
    /// First boundary, in ticks of the service's [`TraceClock`].
    pub start_ns: u64,
    /// Stage durations, in request order. Their sum equals
    /// [`RequestTrace::total_ns`] exactly.
    pub stages: Vec<TraceStage>,
    /// End-to-end latency in whole nanoseconds.
    pub total_ns: u64,
}

impl RequestTrace {
    /// End-to-end latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1.0e6
    }

    /// The tiling invariant: stage durations sum to the total exactly.
    /// Always true by construction; exposed so tests can state it.
    pub fn tiles_exactly(&self) -> bool {
        self.stages.iter().map(|s| s.dur_ns).sum::<u64>() == self.total_ns
    }

    /// Duration of the named stage (summed over repeats), if present.
    pub fn stage_ns(&self, name: &str) -> Option<u64> {
        let mut total = None;
        for s in &self.stages {
            if s.name == name {
                *total.get_or_insert(0) += s.dur_ns;
            }
        }
        total
    }
}

/// The live side of a [`RequestTrace`]: created at request entry, marked
/// at every stage boundary, finished with a terminal class.
#[derive(Debug)]
pub struct TraceContext {
    request_id: u64,
    start_ns: u64,
    /// `(stage name, end tick)`; ticks are non-decreasing.
    marks: Vec<(&'static str, u64)>,
}

impl TraceContext {
    /// Open a trace: assign the next request id and take the first
    /// boundary now.
    pub fn begin(clock: &TraceClock) -> Self {
        TraceContext {
            request_id: NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed),
            start_ns: clock.now_ns(),
            marks: Vec::with_capacity(8),
        }
    }

    /// This request's id.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The latest boundary tick (the start tick before any stage).
    pub fn last_ns(&self) -> u64 {
        self.marks.last().map_or(self.start_ns, |&(_, t)| t)
    }

    /// End the current stage now: everything since the previous boundary
    /// is attributed to `name`.
    pub fn stage(&mut self, name: &'static str, clock: &TraceClock) {
        self.stage_at(name, clock.now_ns());
    }

    /// End the current stage at an explicit tick — how worker-side
    /// boundaries (recorded on the same clock, shipped through the
    /// singleflight payload) are spliced into the requester's trace.
    /// Clamped to be non-decreasing so the tiling invariant survives any
    /// splice order.
    pub fn stage_at(&mut self, name: &'static str, tick_ns: u64) {
        let tick = tick_ns.max(self.last_ns());
        self.marks.push((name, tick));
    }

    /// Freeze into a [`RequestTrace`] with terminal class `class`. The
    /// total is the span from the first to the last boundary; with no
    /// recorded stage the trace is a single zero-length point.
    pub fn finish(self, class: &'static str) -> RequestTrace {
        let mut stages = Vec::with_capacity(self.marks.len());
        let mut prev = self.start_ns;
        for (name, tick) in &self.marks {
            stages.push(TraceStage {
                name,
                dur_ns: tick - prev,
            });
            prev = *tick;
        }
        RequestTrace {
            request_id: self.request_id,
            class,
            start_ns: self.start_ns,
            total_ns: prev - self.start_ns,
            stages,
        }
    }
}

/// Bounded per-class reservoir of the K slowest full traces — the
/// exemplars behind a latency histogram: when p999 spikes, these are the
/// actual requests that did it, stage by stage.
#[derive(Debug)]
pub struct ExemplarReservoir {
    k: usize,
    /// Class → traces sorted ascending by total (fastest first, so the
    /// eviction candidate is index 0).
    classes: Mutex<BTreeMap<&'static str, Vec<RequestTrace>>>,
}

impl ExemplarReservoir {
    /// A reservoir keeping the `k` slowest traces per terminal class.
    pub fn new(k: usize) -> Self {
        ExemplarReservoir {
            k,
            classes: Mutex::new(BTreeMap::new()),
        }
    }

    /// Offer one finished trace; it is retained only while it is among
    /// the `k` slowest of its class.
    pub fn record(&self, trace: &RequestTrace) {
        if self.k == 0 {
            return;
        }
        let mut classes = self.classes.lock().expect("reservoir lock");
        let bucket = classes.entry(trace.class).or_default();
        if bucket.len() == self.k {
            if bucket[0].total_ns >= trace.total_ns {
                return; // faster than everything retained
            }
            bucket.remove(0);
        }
        let at = bucket.partition_point(|t| t.total_ns < trace.total_ns);
        bucket.insert(at, trace.clone());
    }

    /// Everything retained, slowest-first within each class.
    pub fn snapshot(&self) -> BTreeMap<&'static str, Vec<RequestTrace>> {
        let classes = self.classes.lock().expect("reservoir lock");
        classes
            .iter()
            .map(|(&class, traces)| {
                let mut t = traces.clone();
                t.reverse();
                (class, t)
            })
            .collect()
    }

    /// The class holding the slowest retained trace overall.
    pub fn slowest_class(&self) -> Option<&'static str> {
        let classes = self.classes.lock().expect("reservoir lock");
        classes
            .iter()
            .filter_map(|(&class, traces)| traces.last().map(|t| (class, t.total_ns)))
            .max_by_key(|&(_, total)| total)
            .map(|(class, _)| class)
    }
}

/// Render traces as a [`Timeline`] for the Chrome-trace writer: one lane
/// per trace (grouped by class), one span per stage plus an umbrella
/// `request` span carrying the request id. Times are relative
/// milliseconds from each trace's start, so lanes align for comparison.
pub fn timeline_of(traces: &[RequestTrace]) -> Timeline {
    let rec = Recorder::new();
    let mut lanes: BTreeMap<&'static str, u32> = BTreeMap::new();
    for trace in traces {
        let lane = lanes.entry(trace.class).or_insert(0);
        let track = Track::new(trace.class, *lane);
        *lane += 1;
        rec.record(
            Span::new("request", "request", track.clone(), 0.0, trace.total_ms())
                .arg("request_id", trace.request_id)
                .arg("class", trace.class),
        );
        let mut at_ns = 0u64;
        for stage in &trace.stages {
            rec.record(Span::new(
                stage.name,
                "serve_stage",
                track.clone(),
                at_ns as f64 / 1.0e6,
                stage.dur_ns as f64 / 1.0e6,
            ));
            at_ns += stage.dur_ns;
        }
    }
    rec.timeline()
}

/// One stage's share of the tail in a [`tail_attribution`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct StageShare {
    /// Stage name.
    pub stage: &'static str,
    /// Summed duration over every tail request, nanoseconds.
    pub total_ns: u64,
    /// Share of the tail's total end-to-end time, percent.
    pub share_pct: f64,
    /// Mean duration per tail request, milliseconds.
    pub mean_ms: f64,
}

/// Attribute the latency tail to stages: take every trace at or above
/// the `q` quantile of total latency, sum stage durations across them,
/// and report each stage's share of the tail's total time (largest
/// first). Because stages tile each trace exactly, the shares sum to
/// 100% (up to float rendering).
pub fn tail_attribution(traces: &[RequestTrace], q: f64) -> Vec<StageShare> {
    if traces.is_empty() {
        return Vec::new();
    }
    let mut totals: Vec<u64> = traces.iter().map(|t| t.total_ns).collect();
    totals.sort_unstable();
    let n = totals.len();
    // The tail is the slowest (1-q) fraction, at least one request; ties
    // at the cut are included.
    let frac = (1.0 - q.clamp(0.0, 1.0)) * n as f64;
    let keep = ((frac - 1e-9).ceil() as usize).clamp(1, n);
    let threshold = totals[n - keep];
    let tail: Vec<&RequestTrace> = traces.iter().filter(|t| t.total_ns >= threshold).collect();
    let mut by_stage: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut tail_total = 0u64;
    for t in &tail {
        tail_total += t.total_ns;
        for s in &t.stages {
            *by_stage.entry(s.name).or_insert(0) += s.dur_ns;
        }
    }
    let n = tail.len().max(1) as f64;
    let mut out: Vec<StageShare> = by_stage
        .into_iter()
        .map(|(stage, total_ns)| StageShare {
            stage,
            total_ns,
            share_pct: if tail_total == 0 {
                0.0
            } else {
                100.0 * total_ns as f64 / tail_total as f64
            },
            mean_ms: total_ns as f64 / n / 1.0e6,
        })
        .collect();
    out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.stage.cmp(b.stage)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(class: &'static str, stages: &[(&'static str, u64)]) -> RequestTrace {
        let clock = TraceClock::new();
        let mut ctx = TraceContext::begin(&clock);
        let mut tick = ctx.last_ns();
        for &(name, dur) in stages {
            tick += dur;
            ctx.stage_at(name, tick);
        }
        ctx.finish(class)
    }

    #[test]
    fn stages_tile_total_exactly() {
        let t = trace(
            "measured",
            &[("resolve", 7), ("queue_wait", 1000), ("measure", 31)],
        );
        assert!(t.tiles_exactly());
        assert_eq!(t.total_ns, 1038);
        assert_eq!(t.stage_ns("queue_wait"), Some(1000));
        assert_eq!(t.stage_ns("absent"), None);
    }

    #[test]
    fn request_ids_are_monotone() {
        let clock = TraceClock::new();
        let a = TraceContext::begin(&clock).request_id();
        let b = TraceContext::begin(&clock).request_id();
        assert!(b > a);
    }

    #[test]
    fn out_of_order_splice_is_clamped_and_still_tiles() {
        let clock = TraceClock::new();
        let mut ctx = TraceContext::begin(&clock);
        let base = ctx.last_ns();
        ctx.stage_at("a", base + 100);
        // An earlier tick (e.g. a worker boundary that raced) clamps to a
        // zero-length stage instead of breaking monotonicity.
        ctx.stage_at("b", base + 50);
        ctx.stage_at("c", base + 130);
        let t = ctx.finish("x");
        assert!(t.tiles_exactly());
        assert_eq!(t.stage_ns("b"), Some(0));
        assert_eq!(t.total_ns, 130);
    }

    #[test]
    fn live_clock_trace_tiles() {
        let clock = TraceClock::new();
        let mut ctx = TraceContext::begin(&clock);
        ctx.stage("one", &clock);
        std::thread::sleep(std::time::Duration::from_millis(1));
        ctx.stage("two", &clock);
        let t = ctx.finish("live");
        assert!(t.tiles_exactly());
        assert!(t.stage_ns("two").unwrap() >= 1_000_000);
    }

    #[test]
    fn reservoir_keeps_k_slowest_per_class() {
        let res = ExemplarReservoir::new(2);
        for dur in [10, 50, 30, 90, 20] {
            res.record(&trace("hot_cache", &[("s", dur)]));
        }
        res.record(&trace("measured", &[("s", 5)]));
        let snap = res.snapshot();
        let hot: Vec<u64> = snap["hot_cache"].iter().map(|t| t.total_ns).collect();
        assert_eq!(hot, vec![90, 50], "slowest-first, k=2");
        assert_eq!(snap["measured"].len(), 1);
        assert_eq!(res.slowest_class(), Some("hot_cache"));
    }

    #[test]
    fn reservoir_zero_k_retains_nothing() {
        let res = ExemplarReservoir::new(0);
        res.record(&trace("x", &[("s", 1)]));
        assert!(res.snapshot().is_empty());
        assert_eq!(res.slowest_class(), None);
    }

    #[test]
    fn timeline_exports_stages_and_umbrella() {
        let t = trace(
            "measured",
            &[("resolve", 1_000_000), ("measure", 3_000_000)],
        );
        let tl = timeline_of(&[t]);
        assert_eq!(tl.spans.len(), 3); // umbrella + 2 stages
        let total: f64 = tl
            .spans
            .iter()
            .filter(|s| s.cat == "serve_stage")
            .map(|s| s.dur_ms)
            .sum();
        assert!((total - 4.0).abs() < 1e-9);
        let json = crate::to_chrome_json(&tl);
        assert!(json.contains("\"request\""), "{json}");
    }

    #[test]
    fn tail_attribution_shares_sum_to_hundred() {
        // 99 fast requests dominated by "hot_cache", one slow one
        // dominated by "queue_wait": the p99 tail is the slow request.
        let mut traces = Vec::new();
        for _ in 0..99 {
            traces.push(trace("hot_cache", &[("resolve", 10), ("hot_cache", 90)]));
        }
        traces.push(trace(
            "measured",
            &[
                ("resolve", 10),
                ("queue_wait", 6100),
                ("measure", 3000),
                ("db_write", 890),
            ],
        ));
        let shares = tail_attribution(&traces, 0.99);
        assert_eq!(shares[0].stage, "queue_wait");
        assert!((shares[0].share_pct - 61.0).abs() < 1e-9, "{shares:?}");
        let sum: f64 = shares.iter().map(|s| s.share_pct).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!(tail_attribution(&[], 0.99).is_empty());
    }
}
