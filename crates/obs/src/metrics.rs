//! The unified metrics registry: named counters and histograms shared by
//! every layer of the stack.
//!
//! The facade, the device farm and the serving layer all publish into one
//! [`MetricsRegistry`]; `serve-bench` and the CLI snapshot it to report
//! where requests went *and* how long each stage took — replacing the
//! per-crate private counter structs. Handles are `Arc`s: register once,
//! bump lock-free forever.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

/// A gauge: a value that can move both ways (queue depth, cache
/// occupancy, a windowed error rate). Stored as `f64` bits in an atomic,
/// so sets and reads are lock-free from any thread.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }
}

impl Gauge {
    /// Set the current value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed upper bucket bounds plus an overflow bucket,
/// with a running sum for means. Unit-agnostic: the name carries the unit
/// by convention (`"...:ms"`, `"...:s"`).
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of observed values, stored as f64 bits and updated by CAS.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.into(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds; the implicit final bucket is `+inf`.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile `q` (0..=1) estimated by linear interpolation inside the
    /// containing bucket (the Prometheus `histogram_quantile` rule): the
    /// target rank `q * count` is located in the cumulative distribution
    /// and positioned proportionally between the bucket's lower and upper
    /// bound. The old bucket-upper-bound estimate was biased upward by up
    /// to a full bucket width at every bucket edge — with the log-spaced
    /// bounds used for tail latencies that bias doubles the reported
    /// value; the interpolated estimate is exact for uniform in-bucket
    /// mass. Ranks landing in the overflow bucket return the largest
    /// finite bound (there is no upper edge to interpolate toward).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1e-12);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let prev = seen;
            seen += c;
            if (seen as f64) < rank || c == 0 {
                continue;
            }
            let Some(&upper) = self.bounds.get(i) else {
                // Overflow bucket: clamp to the largest finite bound.
                return self.bounds.last().copied().unwrap_or(f64::INFINITY);
            };
            let lower = if i == 0 {
                // No lower edge below the first bucket; anchor at 0 for
                // non-negative series (latencies), at the bound otherwise.
                if upper > 0.0 {
                    0.0
                } else {
                    upper
                }
            } else {
                self.bounds[i - 1]
            };
            let frac = (rank - prev as f64) / c as f64;
            return lower + (upper - lower) * frac.clamp(0.0, 1.0);
        }
        self.bounds.last().copied().unwrap_or(f64::INFINITY)
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1) — the
    /// conservative `le`-style estimate ("the quantile is at most this").
    /// `+inf` when it lands in the overflow bucket.
    pub fn quantile_le(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }
}

/// Default histogram bounds for stage durations in simulated seconds
/// (queries span ~1 s cache hits to ~200 s cold deployments).
pub const STAGE_SECONDS_BOUNDS: [f64; 12] = [
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
];

/// Geometric (log-spaced) bucket bounds: `count` bounds starting at
/// `start`, each `factor` times the previous. Linear bounds lose the tail
/// — everything past the last bound piles into one overflow bucket and
/// p999 becomes unreadable; log spacing keeps *relative* resolution
/// constant across decades, so a `factor` of √2 bounds the interpolated
/// quantile error at ~±20% from nanoseconds to seconds with ~50 buckets.
pub fn log_bounds(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0, "log bounds must grow");
    let mut out = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        out.push(b);
        b *= factor;
    }
    out
}

/// The registry: name → counter / histogram. One per deployment; share
/// it with `Arc`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`. The handle is lock-free to bump;
    /// keep it around instead of re-resolving per event.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counters
            .lock()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`. Like counters, the handle is
    /// lock-free to set.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauges
            .lock()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name`. Bounds are fixed by the first
    /// registration; later calls reuse the existing instance.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histograms
            .lock()
            .expect("registry lock")
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Counter value (0 when absent — reading a metric nobody has
    /// published yet is not an error).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value (0 when absent, same convention as counters).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Render as a JSON object: counters verbatim, histograms as
    /// `{count, mean, p50, p99}` plus non-empty buckets.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "\"{k}\": {v}");
        }
        for (k, v) in &self.gauges {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "\"{k}\": {}", json_num(*v));
        }
        for (k, h) in &self.histograms {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "\"{k}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50_le\": {}, \"p99_le\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.mean(),
                json_num(h.quantile_le(0.5)),
                json_num(h.quantile_le(0.99)),
            );
            let mut first_b = true;
            for (i, c) in h.buckets.iter().enumerate() {
                if *c == 0 {
                    continue;
                }
                if !first_b {
                    out.push_str(", ");
                }
                first_b = false;
                let le = h.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                let _ = write!(out, "{{\"le\": {}, \"count\": {c}}}", json_num(le));
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

/// JSON has no infinity; render it as a string, finite values as numbers.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "\"+inf\"".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert_eq!(reg.snapshot().counter("x"), 3);
        assert_eq!(reg.snapshot().counter("absent"), 0);
    }

    #[test]
    fn gauges_move_both_ways_and_are_shared() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(5.0);
        g.add(-2.0);
        reg.gauge("depth").add(0.5);
        assert_eq!(g.get(), 3.5);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("depth"), 3.5);
        assert_eq!(snap.gauge("absent"), 0.0);
        assert!(snap.to_json_string().contains("\"depth\": 3.5"));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.6, 3.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 2, 1, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 106.6).abs() < 1e-9);
        assert!((s.mean() - 21.32).abs() < 1e-9);
        assert_eq!(s.quantile_le(0.5), 2.0);
        assert!(s.quantile_le(0.99).is_infinite());
        // Interpolated: rank 2.5 of 5 sits halfway through the (1, 2]
        // bucket (cumulative 1 below it, 2 inside): 1 + 1 * 1.5/2 = 1.75.
        assert!((s.quantile(0.5) - 1.75).abs() < 1e-12);
        // Rank in the overflow bucket clamps to the largest finite bound.
        assert_eq!(s.quantile(0.99), 4.0);
    }

    #[test]
    fn interpolated_quantiles_on_hand_computed_distributions() {
        // 100 observations, one per integer 1..=100, bounds at 10-steps:
        // every bucket holds exactly 10, so the cumulative distribution is
        // piecewise linear and quantiles are exact to interpolation.
        let bounds: Vec<f64> = (1..=10).map(|i| f64::from(i) * 10.0).collect();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("u", &bounds);
        for v in 1..=100 {
            h.observe(f64::from(v));
        }
        let s = h.snapshot();
        // p50: rank 50 is the upper edge of the (40, 50] bucket.
        assert!((s.quantile(0.50) - 50.0).abs() < 1e-9);
        // p99: rank 99 sits 9/10 into the (90, 100] bucket: 90 + 10*0.9.
        assert!((s.quantile(0.99) - 99.0).abs() < 1e-9);
        // p25 / p75 interpolate the same way.
        assert!((s.quantile(0.25) - 25.0).abs() < 1e-9);
        assert!((s.quantile(0.75) - 75.0).abs() < 1e-9);
        // The le-estimate rounds each of those up to its bucket bound.
        assert_eq!(s.quantile_le(0.99), 100.0);
        // The old estimator returned the bucket UPPER bound for p50 (60.0
        // would be the answer with rank ceil(50.5)=51 → bucket (50,60]);
        // pin that the bias is gone: interpolation never exceeds the
        // le-estimate and reaches it only at exact bucket edges.
        for q in [0.1, 0.33, 0.5, 0.9, 0.99, 0.999] {
            assert!(s.quantile(q) <= s.quantile_le(q), "q={q}");
        }
    }

    #[test]
    fn quantile_first_bucket_anchors_at_zero() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("f", &[8.0, 16.0]);
        for _ in 0..4 {
            h.observe(2.0);
        }
        let s = h.snapshot();
        // All mass in the first bucket: p50 = 0 + 8 * (2/4) = 4.
        assert!((s.quantile(0.5) - 4.0).abs() < 1e-12);
        assert!((s.quantile(1.0) - 8.0).abs() < 1e-12);
        assert_eq!(s.quantile_le(0.5), 8.0);
    }

    #[test]
    fn quantile_empty_and_overflow_only() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("e", &[1.0]);
        assert_eq!(h.snapshot().quantile(0.5), 0.0);
        h.observe(100.0); // overflow only
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1.0); // clamped to largest finite bound
        assert!(s.quantile_le(0.5).is_infinite());
    }

    #[test]
    fn log_bounds_grow_geometrically() {
        let b = log_bounds(0.001, 2.0, 12);
        assert_eq!(b.len(), 12);
        assert!((b[0] - 0.001).abs() < 1e-15);
        for w in b.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12);
        }
        // p999 of a heavy-tailed series is resolvable: observations
        // spanning four decades land in distinct buckets.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t", &log_bounds(0.001, 2.0, 24));
        for _ in 0..997 {
            h.observe(0.002);
        }
        for _ in 0..3 {
            h.observe(500.0); // three slow outliers
        }
        let s = h.snapshot();
        assert!(s.quantile(0.5) < 0.01);
        assert!(s.quantile(0.999) > 100.0, "p999 = {}", s.quantile(0.999));
    }

    #[test]
    fn histogram_bounds_fixed_by_first_registration() {
        let reg = MetricsRegistry::new();
        let a = reg.histogram("h", &[1.0]);
        let b = reg.histogram("h", &[5.0, 10.0]);
        a.observe(0.5);
        b.observe(0.6);
        assert_eq!(reg.histogram("h", &[]).snapshot().count, 2);
        assert_eq!(b.snapshot().bounds, vec![1.0]);
    }

    #[test]
    fn snapshot_json_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(7);
        reg.histogram("stage:s", &[1.0, 2.0]).observe(1.5);
        let json = reg.snapshot().to_json_string();
        assert!(json.contains("\"serve.requests\": 7"), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
        assert!(json.contains("\"le\": 2, \"count\": 1"), "{json}");
    }

    #[test]
    fn concurrent_bumps_are_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("n");
        let h = reg.histogram("v", &STAGE_SECONDS_BOUNDS);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(f64::from(i % 100));
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert!((s.sum - 8.0 * 1000.0 * 49.5).abs() < 1e-6);
    }
}
