//! The unified metrics registry: named counters and histograms shared by
//! every layer of the stack.
//!
//! The facade, the device farm and the serving layer all publish into one
//! [`MetricsRegistry`]; `serve-bench` and the CLI snapshot it to report
//! where requests went *and* how long each stage took — replacing the
//! per-crate private counter structs. Handles are `Arc`s: register once,
//! bump lock-free forever.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

/// A gauge: a value that can move both ways (queue depth, cache
/// occupancy, a windowed error rate). Stored as `f64` bits in an atomic,
/// so sets and reads are lock-free from any thread.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }
}

impl Gauge {
    /// Set the current value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + delta).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed upper bucket bounds plus an overflow bucket,
/// with a running sum for means. Unit-agnostic: the name carries the unit
/// by convention (`"...:ms"`, `"...:s"`).
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of observed values, stored as f64 bits and updated by CAS.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.into(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + value).to_bits())
            });
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds; the implicit final bucket is `+inf`.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1).
    /// `+inf` when it lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }
}

/// Default histogram bounds for stage durations in simulated seconds
/// (queries span ~1 s cache hits to ~200 s cold deployments).
pub const STAGE_SECONDS_BOUNDS: [f64; 12] = [
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
];

/// The registry: name → counter / histogram. One per deployment; share
/// it with `Arc`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`. The handle is lock-free to bump;
    /// keep it around instead of re-resolving per event.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counters
            .lock()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`. Like counters, the handle is
    /// lock-free to set.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauges
            .lock()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name`. Bounds are fixed by the first
    /// registration; later calls reuse the existing instance.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histograms
            .lock()
            .expect("registry lock")
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Counter value (0 when absent — reading a metric nobody has
    /// published yet is not an error).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value (0 when absent, same convention as counters).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Render as a JSON object: counters verbatim, histograms as
    /// `{count, mean, p50, p99}` plus non-empty buckets.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "\"{k}\": {v}");
        }
        for (k, v) in &self.gauges {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "\"{k}\": {}", json_num(*v));
        }
        for (k, h) in &self.histograms {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "\"{k}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50_le\": {}, \"p99_le\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.mean(),
                json_num(h.quantile(0.5)),
                json_num(h.quantile(0.99)),
            );
            let mut first_b = true;
            for (i, c) in h.buckets.iter().enumerate() {
                if *c == 0 {
                    continue;
                }
                if !first_b {
                    out.push_str(", ");
                }
                first_b = false;
                let le = h.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                let _ = write!(out, "{{\"le\": {}, \"count\": {c}}}", json_num(le));
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

/// JSON has no infinity; render it as a string, finite values as numbers.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "\"+inf\"".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert_eq!(reg.snapshot().counter("x"), 3);
        assert_eq!(reg.snapshot().counter("absent"), 0);
    }

    #[test]
    fn gauges_move_both_ways_and_are_shared() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(5.0);
        g.add(-2.0);
        reg.gauge("depth").add(0.5);
        assert_eq!(g.get(), 3.5);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("depth"), 3.5);
        assert_eq!(snap.gauge("absent"), 0.0);
        assert!(snap.to_json_string().contains("\"depth\": 3.5"));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.6, 3.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 2, 1, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 106.6).abs() < 1e-9);
        assert!((s.mean() - 21.32).abs() < 1e-9);
        assert_eq!(s.quantile(0.5), 2.0);
        assert!(s.quantile(0.99).is_infinite());
    }

    #[test]
    fn histogram_bounds_fixed_by_first_registration() {
        let reg = MetricsRegistry::new();
        let a = reg.histogram("h", &[1.0]);
        let b = reg.histogram("h", &[5.0, 10.0]);
        a.observe(0.5);
        b.observe(0.6);
        assert_eq!(reg.histogram("h", &[]).snapshot().count, 2);
        assert_eq!(b.snapshot().bounds, vec![1.0]);
    }

    #[test]
    fn snapshot_json_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(7);
        reg.histogram("stage:s", &[1.0, 2.0]).observe(1.5);
        let json = reg.snapshot().to_json_string();
        assert!(json.contains("\"serve.requests\": 7"), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
        assert!(json.contains("\"le\": 2, \"count\": 1"), "{json}");
    }

    #[test]
    fn concurrent_bumps_are_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("n");
        let h = reg.histogram("v", &STAGE_SECONDS_BOUNDS);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(f64::from(i % 100));
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert!((s.sum - 8.0 * 1000.0 * 49.5).abs() < 1e-6);
    }
}
