//! Compact text flamegraph: one bar row per track, plus a span legend.
//!
//! Not a call-stack flamegraph (spans here are scheduler lanes, not
//! frames) — a *timeline* graph in the terminal: each track is a row of
//! cells over `[0, end_ms]`, each span paints its interval with a glyph,
//! and the legend maps glyphs back to names, durations and shares. Wide
//! enough for "where did the time go" at a glance; `chrome.rs` has the
//! zoomable version.

use crate::span::Timeline;
use std::fmt::Write as _;

/// Glyph cycle for successive spans on one track.
const GLYPHS: [char; 8] = ['#', '=', '@', '%', '+', '*', 'o', ':'];

/// Render the timeline as text, `width` cells per bar.
pub fn render(timeline: &Timeline, width: usize) -> String {
    let width = width.clamp(20, 400);
    let end = timeline.end_ms();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline: {end:.3} ms over {} spans",
        timeline.spans.len()
    );
    if timeline.spans.is_empty() || end <= 0.0 {
        return out;
    }
    let cell_ms = end / width as f64;
    let label_w = timeline
        .tracks()
        .iter()
        .map(|t| t.to_string().len())
        .max()
        .unwrap_or(0);

    for track in timeline.tracks() {
        let spans = timeline.on_track(&track);
        let mut bar = vec!['.'; width];
        for (i, s) in spans.iter().enumerate() {
            let glyph = GLYPHS[i % GLYPHS.len()];
            let a = (s.start_ms / cell_ms).floor() as usize;
            let b = ((s.end_ms() / cell_ms).ceil() as usize).min(width);
            // Every span gets at least one cell, however short.
            for cell in bar
                .iter_mut()
                .take(b.max(a + 1).min(width))
                .skip(a.min(width - 1))
            {
                *cell = glyph;
            }
        }
        let _ = writeln!(
            out,
            "{:label_w$} |{}|",
            track.to_string(),
            bar.iter().collect::<String>()
        );
    }

    // Legend: per-track span list with glyphs, durations and share of the
    // makespan.
    out.push('\n');
    for track in timeline.tracks() {
        let _ = writeln!(out, "{track}:");
        for (i, s) in timeline.on_track(&track).iter().enumerate() {
            let glyph = GLYPHS[i % GLYPHS.len()];
            let _ = writeln!(
                out,
                "  {glyph} {:<24} {:>10.4} ms  ({:>5.1}%)  @ {:.4}",
                clip(&s.name, 24),
                s.dur_ms,
                100.0 * s.dur_ms / end,
                s.start_ms,
            );
        }
    }
    out
}

/// Aggregate view: total duration per span name (descending), for "which
/// kernels dominate" summaries.
pub fn top_spans(timeline: &Timeline, cat: &str, limit: usize) -> Vec<(String, f64, usize)> {
    let mut totals: Vec<(String, f64, usize)> = Vec::new();
    for s in timeline.spans.iter().filter(|s| s.cat == cat) {
        match totals.iter_mut().find(|(n, _, _)| n == &s.name) {
            Some((_, d, c)) => {
                *d += s.dur_ms;
                *c += 1;
            }
            None => totals.push((s.name.clone(), s.dur_ms, 1)),
        }
    }
    totals.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite durations"));
    totals.truncate(limit);
    totals
}

fn clip(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max - 1).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, Span, Track};

    fn sample() -> Timeline {
        let r = Recorder::new();
        r.record(Span::new("hash", "stage", Track::new("query", 0), 0.0, 2.0));
        r.record(Span::new(
            "lookup",
            "stage",
            Track::new("query", 0),
            2.0,
            2.0,
        ));
        r.record(Span::new(
            "Conv",
            "kernel",
            Track::new("device", 0),
            1.0,
            1.0,
        ));
        r.record(Span::new(
            "Conv",
            "kernel",
            Track::new("device", 1),
            1.5,
            0.5,
        ));
        r.timeline()
    }

    #[test]
    fn render_has_all_tracks_and_legend() {
        let text = render(&sample(), 40);
        assert!(text.contains("query/0"), "{text}");
        assert!(text.contains("device/0"), "{text}");
        assert!(text.contains("device/1"), "{text}");
        assert!(text.contains("hash"), "{text}");
        assert!(text.contains("( 50.0%)"), "{text}");
    }

    #[test]
    fn render_empty_timeline() {
        let t = Timeline::default();
        assert!(render(&t, 80).contains("0 spans"));
    }

    #[test]
    fn top_spans_aggregates_by_name() {
        let top = top_spans(&sample(), "kernel", 10);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, "Conv");
        assert_eq!(top[0].1, 1.5);
        assert_eq!(top[0].2, 2);
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(render(&sample(), 60), render(&sample(), 60));
    }
}
