//! Bounded structured event log, rendered as JSONL.
//!
//! The serving layer appends one event per interesting transition — a
//! query's terminal outcome, a shadow-evaluation result, a drift alert, a
//! retrain start/finish — and the log keeps the most recent `capacity`
//! events in a ring (dropping the oldest, counting the drops). Every
//! event carries a process-unique monotonically increasing `seq` assigned
//! under the log's lock, so the rendered JSONL has one deterministic total
//! order regardless of producer interleaving; under the deterministic sim
//! clock a fixed single-threaded workload reproduces the log byte for
//! byte.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// One typed field value (JSONL renders each with its native JSON type).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Float (non-finite values render as strings, like the metrics JSON).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Log-assigned sequence number (total order).
    pub seq: u64,
    /// Event kind, e.g. `"query"`, `"shadow_eval"`, `"drift_alert"`,
    /// `"retrain_start"`, `"retrain_finish"`.
    pub kind: String,
    /// Typed payload fields, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Render as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"seq\": {}, \"event\": ", self.seq);
        push_json_str(&mut out, &self.kind);
        for (k, v) in &self.fields {
            out.push_str(", ");
            push_json_str(&mut out, k);
            out.push_str(": ");
            match v {
                FieldValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::F64(f) if f.is_finite() => {
                    let _ = write!(out, "{f}");
                }
                FieldValue::F64(f) => push_json_str(&mut out, &format!("{f}")),
                FieldValue::Str(s) => push_json_str(&mut out, s),
                FieldValue::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
            }
        }
        out.push('}');
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct LogInner {
    next_seq: u64,
    dropped: u64,
    events: VecDeque<Event>,
}

/// The bounded event log. Share with `Arc`; `emit` from any thread.
pub struct EventLog {
    cap: usize,
    inner: Mutex<LogInner>,
}

impl EventLog {
    /// A log keeping the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            cap: capacity.max(1),
            inner: Mutex::new(LogInner {
                next_seq: 0,
                dropped: 0,
                events: VecDeque::new(),
            }),
        }
    }

    /// Append one event; returns its sequence number. When full, the
    /// oldest event is dropped (and counted).
    pub fn emit(&self, kind: &str, fields: Vec<(&str, FieldValue)>) -> u64 {
        let mut inner = self.inner.lock().expect("event log lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(Event {
            seq,
            kind: kind.to_string(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        });
        seq
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event log lock").events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event log lock").dropped
    }

    /// Copy of the retained events, in sequence order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("event log lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Render the retained events as JSONL (one JSON object per line,
    /// trailing newline after each).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bound_drops_oldest_and_counts() {
        let log = EventLog::new(2);
        for i in 0..5u64 {
            log.emit("query", vec![("i", i.into())]);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let events = log.snapshot();
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        assert_eq!(events[1].field("i"), Some(&FieldValue::U64(4)));
    }

    #[test]
    fn jsonl_is_one_object_per_line_with_stable_order() {
        let log = EventLog::new(16);
        log.emit(
            "shadow_eval",
            vec![
                ("platform", "gpu-T4-trt7.1-fp32".into()),
                ("predicted_ms", 1.5f64.into()),
                ("measured_ms", 2.0f64.into()),
                ("ok", true.into()),
            ],
        );
        log.emit("drift_alert", vec![("windowed_mape_pct", 40.25f64.into())]);
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"seq\": 0, \"event\": \"shadow_eval\", \"platform\": \"gpu-T4-trt7.1-fp32\", \
             \"predicted_ms\": 1.5, \"measured_ms\": 2, \"ok\": true}"
        );
        assert!(lines[1].starts_with("{\"seq\": 1, \"event\": \"drift_alert\""));
    }

    #[test]
    fn strings_are_escaped() {
        let log = EventLog::new(4);
        log.emit("query", vec![("msg", "a \"b\"\nc\\d".into())]);
        let line = log.to_jsonl();
        assert!(line.contains("\"a \\\"b\\\"\\nc\\\\d\""), "{line}");
    }

    #[test]
    fn concurrent_emits_get_unique_ordered_seqs() {
        let log = std::sync::Arc::new(EventLog::new(10_000));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let log = std::sync::Arc::clone(&log);
                s.spawn(move || {
                    for _ in 0..100 {
                        log.emit("e", Vec::new());
                    }
                });
            }
        });
        let events = log.snapshot();
        assert_eq!(events.len(), 800);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }
}
