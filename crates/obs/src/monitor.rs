//! Online prediction-quality monitoring: rolling error windows, drift
//! detection, and the shared error formulas the offline evaluator uses.
//!
//! The paper evaluates NNLP only offline (§5.4, MAPE and Acc(10%)); a
//! production deployment needs the same numbers **online**, per platform,
//! so that the evolving-database retrain loop can fire from evidence of
//! quality loss instead of a blind sample-count cadence.
//!
//! [`mape`] and [`acc_at`] are the single source of truth for the error
//! formulas (Eq. 6 / Eq. 7): `nnlqp-predict` re-exports them for offline
//! evaluation and [`ErrorWindow`] recomputes over its stored pairs with
//! the very same functions — so online and offline numbers agree
//! *bitwise* on the same pairs.

use crate::metrics::{Counter, MetricsRegistry};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Mean Absolute Percentage Error (Eq. 6), in percent. Lower is better.
pub fn mape(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty(), "empty metric input");
    let s: f64 = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| ((p - t) / t).abs())
        .sum();
    s / pred.len() as f64 * 100.0
}

/// Error-bound accuracy Acc(δ) (Eq. 7), in percent: the share of samples
/// whose relative error is within `delta` (e.g. 0.10). Higher is better.
pub fn acc_at(pred: &[f64], truth: &[f64], delta: f64) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty(), "empty metric input");
    let hit = pred
        .iter()
        .zip(truth)
        .filter(|(p, t)| ((*p - *t) / *t).abs() <= delta)
        .count();
    hit as f64 / pred.len() as f64 * 100.0
}

/// Upper bucket bounds for the per-platform relative-error histogram, in
/// percent (|pred - truth| / truth * 100).
pub const REL_ERR_PCT_BOUNDS: [f64; 10] =
    [1.0, 2.0, 5.0, 10.0, 15.0, 25.0, 50.0, 100.0, 200.0, 400.0];

/// Tuning of the [`QualityMonitor`].
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Rolling-window capacity per platform (oldest pairs evicted).
    pub window: usize,
    /// Shadow-evaluate every Nth measurement-backed answer per platform
    /// (1 = 100% sampling). Must be >= 1.
    pub sample_every: u64,
    /// Windowed-MAPE percentage above which drift is declared.
    pub mape_threshold_pct: f64,
    /// Minimum pairs in the window before drift can be declared.
    pub min_samples: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: 256,
            sample_every: 1,
            mape_threshold_pct: 25.0,
            min_samples: 16,
        }
    }
}

/// A bounded rolling window of `(predicted, measured)` latency pairs.
///
/// Statistics are recomputed over the stored pairs with the shared
/// [`mape`] / [`acc_at`] functions, so a window holding exactly the pairs
/// an offline evaluation used reports bit-identical numbers.
#[derive(Debug, Clone)]
pub struct ErrorWindow {
    cap: usize,
    pairs: VecDeque<(f64, f64)>,
}

impl ErrorWindow {
    /// An empty window holding at most `cap` pairs.
    pub fn new(cap: usize) -> Self {
        ErrorWindow {
            cap: cap.max(1),
            pairs: VecDeque::new(),
        }
    }

    /// Record one `(predicted, measured)` pair, evicting the oldest when
    /// full.
    pub fn push(&mut self, predicted_ms: f64, measured_ms: f64) {
        if self.pairs.len() == self.cap {
            self.pairs.pop_front();
        }
        self.pairs.push_back((predicted_ms, measured_ms));
    }

    /// Pairs currently held.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pair has been recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Drop every pair (used when a retrain invalidates the predictor the
    /// pairs were produced by).
    pub fn clear(&mut self) {
        self.pairs.clear();
    }

    fn split(&self) -> (Vec<f64>, Vec<f64>) {
        self.pairs.iter().copied().unzip()
    }

    /// Windowed MAPE in percent (`None` when empty).
    pub fn mape(&self) -> Option<f64> {
        if self.pairs.is_empty() {
            return None;
        }
        let (p, t) = self.split();
        Some(mape(&p, &t))
    }

    /// Windowed Acc(δ) in percent (`None` when empty).
    pub fn acc_at(&self, delta: f64) -> Option<f64> {
        if self.pairs.is_empty() {
            return None;
        }
        let (p, t) = self.split();
        Some(acc_at(&p, &t, delta))
    }
}

/// A raised drift signal: the platform's windowed MAPE crossed the
/// configured threshold with enough samples behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftAlert {
    /// Canonical platform name.
    pub platform: String,
    /// Windowed MAPE at the moment the alert fired, in percent.
    pub windowed_mape_pct: f64,
    /// The configured threshold, in percent.
    pub threshold_pct: f64,
    /// Pairs in the window when the alert fired.
    pub samples: usize,
}

#[derive(Debug)]
struct PlatformState {
    window: ErrorWindow,
    /// Measurement-backed answers seen (drives the sampling decision).
    seen: u64,
    /// A drift alert has fired and no retrain has cleared it yet — the
    /// latch stops one degradation from raising a retrain storm.
    drift_latched: bool,
}

impl PlatformState {
    fn new(window_cap: usize) -> Self {
        PlatformState {
            window: ErrorWindow::new(window_cap),
            seen: 0,
            drift_latched: false,
        }
    }
}

/// Registry names (and labelled name templates) of the monitor's metrics.
pub mod monitor_metric_names {
    /// Counter: shadow evaluations performed (pairs recorded).
    pub const SHADOW_EVALS: &str = "monitor.shadow_evals";
    /// Counter: drift alerts raised.
    pub const DRIFT_ALERTS: &str = "monitor.drift_alerts";
    /// Gauge (per platform): windowed MAPE, percent.
    pub const WINDOWED_MAPE: &str = "monitor.windowed_mape";
    /// Gauge (per platform): windowed Acc(10%), percent.
    pub const ACC10: &str = "monitor.acc10";
    /// Gauge (per platform): windowed Acc(5%), percent.
    pub const ACC5: &str = "monitor.acc5";
    /// Gauge (per platform): pairs currently in the window.
    pub const WINDOW_SAMPLES: &str = "monitor.window_samples";
    /// Histogram (per platform): relative error of each shadow eval, %.
    pub const REL_ERR_PCT: &str = "monitor.rel_err_pct";
}

/// Append a `{platform="..."}` label set to a metric name. Registry keys
/// are plain strings; the Prometheus exposition layer splits the label
/// set back out (see [`crate::expose`]).
pub fn labelled(name: &str, platform: &str) -> String {
    format!("{name}{{platform=\"{platform}\"}}")
}

/// Per-platform online quality monitor.
///
/// Feed it `(predicted, measured)` pairs from a shadow evaluator (see
/// `nnlqp-serve`); it maintains rolling MAPE / Acc(10%) / Acc(5%) and an
/// error histogram per platform, publishes them as gauges into the shared
/// [`MetricsRegistry`], and raises a [`DriftAlert`] when windowed MAPE
/// crosses the threshold.
pub struct QualityMonitor {
    cfg: MonitorConfig,
    registry: Arc<MetricsRegistry>,
    state: Mutex<BTreeMap<String, PlatformState>>,
    shadow_evals: Arc<Counter>,
    drift_alerts: Arc<Counter>,
}

impl QualityMonitor {
    /// A monitor publishing into `registry`.
    pub fn new(cfg: MonitorConfig, registry: Arc<MetricsRegistry>) -> Self {
        let shadow_evals = registry.counter(monitor_metric_names::SHADOW_EVALS);
        let drift_alerts = registry.counter(monitor_metric_names::DRIFT_ALERTS);
        QualityMonitor {
            cfg: MonitorConfig {
                sample_every: cfg.sample_every.max(1),
                ..cfg
            },
            registry,
            state: Mutex::new(BTreeMap::new()),
            shadow_evals,
            drift_alerts,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> MonitorConfig {
        self.cfg
    }

    /// Sampling decision for the next measurement-backed answer on
    /// `platform`: true every `sample_every`-th call (deterministic
    /// per-platform modular sampling, so a fixed request order always
    /// shadows the same requests).
    pub fn sample(&self, platform: &str) -> bool {
        let mut st = self.state.lock().expect("monitor lock");
        let entry = st
            .entry(platform.to_string())
            .or_insert_with(|| PlatformState::new(self.cfg.window));
        let pick = entry.seen.is_multiple_of(self.cfg.sample_every);
        entry.seen += 1;
        pick
    }

    /// Record one shadow-evaluated pair. Returns a [`DriftAlert`] when
    /// this pair pushes the platform's windowed MAPE over the threshold
    /// (once per degradation — the latch clears on
    /// [`QualityMonitor::reset_window`]).
    pub fn record(
        &self,
        platform: &str,
        predicted_ms: f64,
        measured_ms: f64,
    ) -> Option<DriftAlert> {
        self.shadow_evals.inc();
        let rel_err_pct = ((predicted_ms - measured_ms) / measured_ms).abs() * 100.0;
        self.registry
            .histogram(
                &labelled(monitor_metric_names::REL_ERR_PCT, platform),
                &REL_ERR_PCT_BOUNDS,
            )
            .observe(rel_err_pct);
        let mut st = self.state.lock().expect("monitor lock");
        let entry = st
            .entry(platform.to_string())
            .or_insert_with(|| PlatformState::new(self.cfg.window));
        entry.window.push(predicted_ms, measured_ms);
        let wmape = entry.window.mape().expect("window non-empty");
        self.publish_gauges(platform, &entry.window);
        let drifting =
            entry.window.len() >= self.cfg.min_samples && wmape > self.cfg.mape_threshold_pct;
        if drifting && !entry.drift_latched {
            entry.drift_latched = true;
            self.drift_alerts.inc();
            return Some(DriftAlert {
                platform: platform.to_string(),
                windowed_mape_pct: wmape,
                threshold_pct: self.cfg.mape_threshold_pct,
                samples: entry.window.len(),
            });
        }
        None
    }

    /// Replace the platform's window with freshly evaluated pairs (the
    /// retrain loop re-predicts its replay buffer under the new model) and
    /// clear the drift latch. Returns the new windowed MAPE.
    pub fn reset_window(&self, platform: &str, pairs: &[(f64, f64)]) -> Option<f64> {
        let mut st = self.state.lock().expect("monitor lock");
        let entry = st
            .entry(platform.to_string())
            .or_insert_with(|| PlatformState::new(self.cfg.window));
        entry.window = ErrorWindow::new(self.cfg.window);
        for &(p, t) in pairs {
            entry.window.push(p, t);
        }
        entry.drift_latched = false;
        self.publish_gauges(platform, &entry.window);
        entry.window.mape()
    }

    /// Current windowed MAPE for `platform`, in percent.
    pub fn windowed_mape(&self, platform: &str) -> Option<f64> {
        self.state
            .lock()
            .expect("monitor lock")
            .get(platform)
            .and_then(|e| e.window.mape())
    }

    /// Point-in-time per-platform quality report.
    pub fn report(&self) -> QualityReport {
        let st = self.state.lock().expect("monitor lock");
        QualityReport {
            platforms: st
                .iter()
                .filter(|(_, e)| !e.window.is_empty())
                .map(|(name, e)| {
                    (
                        name.clone(),
                        PlatformQuality {
                            samples: e.window.len(),
                            windowed_mape_pct: e.window.mape().unwrap_or(0.0),
                            acc10_pct: e.window.acc_at(0.10).unwrap_or(0.0),
                            acc5_pct: e.window.acc_at(0.05).unwrap_or(0.0),
                            drifting: e.drift_latched,
                        },
                    )
                })
                .collect(),
        }
    }

    fn publish_gauges(&self, platform: &str, window: &ErrorWindow) {
        let set = |name: &str, v: f64| {
            self.registry.gauge(&labelled(name, platform)).set(v);
        };
        if let Some(m) = window.mape() {
            set(monitor_metric_names::WINDOWED_MAPE, m);
        }
        if let Some(a) = window.acc_at(0.10) {
            set(monitor_metric_names::ACC10, a);
        }
        if let Some(a) = window.acc_at(0.05) {
            set(monitor_metric_names::ACC5, a);
        }
        set(monitor_metric_names::WINDOW_SAMPLES, window.len() as f64);
    }
}

/// Online quality of one platform's predictor, over the rolling window.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformQuality {
    /// Pairs in the window.
    pub samples: usize,
    /// Windowed MAPE, percent (Eq. 6 over the window).
    pub windowed_mape_pct: f64,
    /// Windowed Acc(10%), percent (Eq. 7).
    pub acc10_pct: f64,
    /// Windowed Acc(5%), percent.
    pub acc5_pct: f64,
    /// True while a drift alert is latched (raised, not yet retrained).
    pub drifting: bool,
}

/// Per-platform quality, as rendered into `serve-bench`'s final snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QualityReport {
    /// Canonical platform name → quality.
    pub platforms: BTreeMap<String, PlatformQuality>,
}

impl QualityReport {
    /// Render as a JSON object keyed by platform.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, q) in &self.platforms {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "\"{name}\": {{\"samples\": {}, \"windowed_mape_pct\": {}, \
                 \"acc10_pct\": {}, \"acc5_pct\": {}, \"drifting\": {}}}",
                q.samples, q.windowed_mape_pct, q.acc10_pct, q.acc5_pct, q.drifting
            );
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(cfg: MonitorConfig) -> QualityMonitor {
        QualityMonitor::new(cfg, Arc::new(MetricsRegistry::new()))
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = ErrorWindow::new(3);
        // Errors: 10%, 20%, 30%, 40% — the first pair falls out.
        for p in [110.0, 120.0, 130.0, 140.0] {
            w.push(p, 100.0);
        }
        assert_eq!(w.len(), 3);
        let m = w.mape().unwrap();
        assert!((m - 30.0).abs() < 1e-9, "window MAPE {m}");
        assert!((w.acc_at(0.30).unwrap() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn window_matches_offline_formulas_bitwise() {
        // The acceptance criterion: windowed numbers must be *bitwise*
        // equal to the slice evaluators over the same pairs.
        let preds = [12.5, 7.25, 101.0, 55.125, 9.875];
        let truths = [11.0, 8.0, 90.0, 60.0, 10.0];
        let mut w = ErrorWindow::new(preds.len());
        for (p, t) in preds.iter().zip(&truths) {
            w.push(*p, *t);
        }
        assert_eq!(w.mape().unwrap().to_bits(), mape(&preds, &truths).to_bits());
        assert_eq!(
            w.acc_at(0.10).unwrap().to_bits(),
            acc_at(&preds, &truths, 0.10).to_bits()
        );
        assert_eq!(
            w.acc_at(0.05).unwrap().to_bits(),
            acc_at(&preds, &truths, 0.05).to_bits()
        );
    }

    #[test]
    fn drift_requires_min_samples_and_threshold() {
        let m = monitor(MonitorConfig {
            window: 8,
            sample_every: 1,
            mape_threshold_pct: 25.0,
            min_samples: 3,
        });
        // Two wildly wrong pairs: over threshold, under min_samples.
        assert!(m.record("p", 200.0, 100.0).is_none());
        assert!(m.record("p", 200.0, 100.0).is_none());
        // Third pair crosses min_samples with MAPE 100% > 25%.
        let alert = m.record("p", 200.0, 100.0).expect("drift fires");
        assert_eq!(alert.samples, 3);
        assert!((alert.windowed_mape_pct - 100.0).abs() < 1e-9);
        // Latched: no storm of repeat alerts.
        assert!(m.record("p", 200.0, 100.0).is_none());
        // A retrain resets the window and clears the latch.
        let after = m.reset_window("p", &[(101.0, 100.0)]).unwrap();
        assert!((after - 1.0).abs() < 1e-9);
        assert!(!m.report().platforms["p"].drifting);
    }

    #[test]
    fn accurate_predictions_never_alert() {
        let m = monitor(MonitorConfig {
            window: 8,
            sample_every: 1,
            mape_threshold_pct: 25.0,
            min_samples: 1,
        });
        for _ in 0..10 {
            assert!(m.record("p", 102.0, 100.0).is_none());
        }
        let q = &m.report().platforms["p"];
        assert_eq!(q.samples, 8); // capped by the window
        assert_eq!(q.acc10_pct, 100.0);
        assert!(!q.drifting);
    }

    #[test]
    fn sampling_is_deterministic_modular() {
        let m = monitor(MonitorConfig {
            sample_every: 3,
            ..Default::default()
        });
        let picks: Vec<bool> = (0..7).map(|_| m.sample("p")).collect();
        assert_eq!(picks, [true, false, false, true, false, false, true]);
        // Platforms sample independently.
        assert!(m.sample("q"));
    }

    #[test]
    fn gauges_published_per_platform() {
        let reg = Arc::new(MetricsRegistry::new());
        let m = QualityMonitor::new(
            MonitorConfig {
                min_samples: 1,
                ..Default::default()
            },
            Arc::clone(&reg),
        );
        m.record("gpu", 110.0, 100.0);
        let snap = reg.snapshot();
        let key = labelled(monitor_metric_names::WINDOWED_MAPE, "gpu");
        assert!((snap.gauge(&key) - 10.0).abs() < 1e-9);
        assert_eq!(snap.counter(monitor_metric_names::SHADOW_EVALS), 1);
        let hist = &snap.histograms[&labelled(monitor_metric_names::REL_ERR_PCT, "gpu")];
        assert_eq!(hist.count, 1);
    }
}
