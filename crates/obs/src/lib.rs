//! # nnlqp-obs
//!
//! Structured observability for the NNLQP stack: the paper's central
//! claims (Fig. 2 kernel-additivity violation, §8.2 query cost) are
//! statements about *where time goes* inside a query, and this crate is
//! how the rest of the workspace answers that question.
//!
//! Three pieces, all std-only:
//!
//! * **Spans** ([`Recorder`], [`Span`], [`SimClock`]) — closed intervals
//!   on the deterministic simulated clock. `nnlqp-sim` records one span
//!   per formed kernel (stream, fusion family, compute/memory phases,
//!   launch overhead); the `nnlqp` facade wraps queries with
//!   hash / db-lookup / deployment-stage spans.
//! * **Exporters** — [`to_chrome_json`] renders a [`Timeline`] as
//!   Chrome-trace JSON (loadable in `chrome://tracing` and Perfetto);
//!   [`render_flamegraph`] draws a compact per-track text timeline.
//! * **Metrics** ([`MetricsRegistry`]) — named counters, gauges and
//!   histograms shared across the facade, farm and serving layer,
//!   snapshotted by `serve-bench` and the CLI, and rendered in the
//!   Prometheus text format by [`to_prometheus`].
//! * **Quality monitoring** ([`QualityMonitor`]) — per-platform rolling
//!   windows over `(predicted, measured)` latency pairs maintaining the
//!   paper's MAPE / Acc(δ) **online**, with threshold-based drift
//!   detection that drives the serving layer's retrain loop. [`mape`] and
//!   [`acc_at`] are the single shared implementation of the error
//!   formulas (`nnlqp-predict` re-exports them), so online and offline
//!   numbers agree bitwise on the same pairs.
//! * **Events** ([`EventLog`]) — a bounded structured JSONL log of query
//!   lifecycle, shadow-eval, drift and retrain events with a
//!   deterministic total order.

pub mod chrome;
pub mod events;
pub mod expose;
pub mod flame;
pub mod metrics;
pub mod monitor;
pub mod span;
pub mod trace;

pub use chrome::to_chrome_json;
pub use events::{Event, EventLog, FieldValue};
pub use expose::{parse_prometheus, to_prometheus, PromSample};
pub use flame::{render as render_flamegraph, top_spans};
pub use metrics::{
    log_bounds, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
    STAGE_SECONDS_BOUNDS,
};
pub use monitor::{
    acc_at, labelled, mape, monitor_metric_names, DriftAlert, ErrorWindow, MonitorConfig,
    PlatformQuality, QualityMonitor, QualityReport, REL_ERR_PCT_BOUNDS,
};
pub use span::{Recorder, SimClock, Span, Timeline, Track};
pub use trace::{
    tail_attribution, timeline_of, ExemplarReservoir, RequestTrace, StageShare, TraceClock,
    TraceContext, TraceStage,
};
