//! # nnlqp-obs
//!
//! Structured observability for the NNLQP stack: the paper's central
//! claims (Fig. 2 kernel-additivity violation, §8.2 query cost) are
//! statements about *where time goes* inside a query, and this crate is
//! how the rest of the workspace answers that question.
//!
//! Three pieces, all std-only:
//!
//! * **Spans** ([`Recorder`], [`Span`], [`SimClock`]) — closed intervals
//!   on the deterministic simulated clock. `nnlqp-sim` records one span
//!   per formed kernel (stream, fusion family, compute/memory phases,
//!   launch overhead); the `nnlqp` facade wraps queries with
//!   hash / db-lookup / deployment-stage spans.
//! * **Exporters** — [`to_chrome_json`] renders a [`Timeline`] as
//!   Chrome-trace JSON (loadable in `chrome://tracing` and Perfetto);
//!   [`render_flamegraph`] draws a compact per-track text timeline.
//! * **Metrics** ([`MetricsRegistry`]) — named counters and histograms
//!   shared across the facade, farm and serving layer, snapshotted by
//!   `serve-bench` and the CLI.

pub mod chrome;
pub mod flame;
pub mod metrics;
pub mod span;

pub use chrome::to_chrome_json;
pub use flame::{render as render_flamegraph, top_spans};
pub use metrics::{
    Counter, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot, STAGE_SECONDS_BOUNDS,
};
pub use span::{Recorder, SimClock, Span, Timeline, Track};
