//! Prometheus text-format exposition of a [`RegistrySnapshot`].
//!
//! Registry keys are plain strings; a key may carry a label set in curly
//! braces (`monitor.windowed_mape{platform="gpu-T4-trt7.1-fp32"}`). The
//! exposition splits the label set out, sanitises the base name into a
//! legal Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`, dots become
//! underscores) and prefixes everything with `nnlqp_`.
//!
//! Histograms render in the standard cumulative form: one
//! `_bucket{le="..."}` series per bound plus `le="+Inf"`, then `_sum` and
//! `_count`. [`parse_prometheus`] is the matching round-trip checker used
//! by the golden test and CI: every exposition this module emits must
//! parse back into the same sample values.

use crate::metrics::{HistogramSnapshot, RegistrySnapshot};
use std::fmt::Write as _;

/// Split a registry key into `(base_name, label_set)` where the label set
/// (without braces) is empty for unlabelled keys.
fn split_labels(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) if key.ends_with('}') => (&key[..i], &key[i + 1..key.len() - 1]),
        _ => (key, ""),
    }
}

/// Sanitise a registry base name into a legal Prometheus metric name.
fn metric_name(base: &str) -> String {
    let mut out = String::with_capacity(base.len() + 6);
    out.push_str("nnlqp_");
    for c in base.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a float the Prometheus way: `+Inf` / `-Inf` for infinities,
/// shortest round-trip decimal otherwise.
fn prom_num(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn write_type_line(out: &mut String, last_family: &mut String, name: &str, kind: &str) {
    if last_family != name {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        last_family.clear();
        last_family.push_str(name);
    }
}

fn labels_with(extra: &str, labels: &str) -> String {
    match (labels.is_empty(), extra.is_empty()) {
        (true, true) => String::new(),
        (true, false) => format!("{{{extra}}}"),
        (false, true) => format!("{{{labels}}}"),
        (false, false) => format!("{{{labels},{extra}}}"),
    }
}

/// Render the whole snapshot in the Prometheus text exposition format
/// (version 0.0.4). Deterministic: `BTreeMap` ordering, stable float
/// formatting — goldenable byte-for-byte under a fixed seed.
pub fn to_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut family = String::new();
    for (key, value) in &snap.counters {
        let (base, labels) = split_labels(key);
        let name = metric_name(base);
        write_type_line(&mut out, &mut family, &name, "counter");
        let _ = writeln!(out, "{name}{} {value}", labels_with("", labels));
    }
    for (key, value) in &snap.gauges {
        let (base, labels) = split_labels(key);
        let name = metric_name(base);
        write_type_line(&mut out, &mut family, &name, "gauge");
        let _ = writeln!(
            out,
            "{name}{} {}",
            labels_with("", labels),
            prom_num(*value)
        );
    }
    for (key, h) in &snap.histograms {
        let (base, labels) = split_labels(key);
        let name = metric_name(base);
        write_type_line(&mut out, &mut family, &name, "histogram");
        write_histogram(&mut out, &name, labels, h);
    }
    out
}

fn write_histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    // Prometheus buckets are cumulative; the registry's are disjoint.
    let mut cum = 0u64;
    for (i, count) in h.buckets.iter().enumerate() {
        cum += count;
        let le = h.bounds.get(i).copied().unwrap_or(f64::INFINITY);
        let le = format!("le=\"{}\"", prom_num(le));
        let _ = writeln!(out, "{name}_bucket{} {cum}", labels_with(&le, labels));
    }
    let plain = labels_with("", labels);
    let _ = writeln!(out, "{name}_sum{plain} {}", prom_num(h.sum));
    let _ = writeln!(out, "{name}_count{plain} {}", h.count);
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (for histograms: the `_bucket` / `_sum` / `_count`
    /// series name).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// Value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse a Prometheus text exposition back into its samples — the
/// round-trip checker for [`to_prometheus`]. Returns an error describing
/// the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sample =
            parse_sample(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?;
        out.push(sample);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (name_part, value_part) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            (&line[..open], &line[close + 1..])
        }
        None => {
            let sp = line.find(' ').ok_or("missing value")?;
            (&line[..sp], &line[sp..])
        }
    };
    if name_part.is_empty()
        || !name_part.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
    {
        return Err(format!("illegal metric name {name_part:?}"));
    }
    let labels = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unterminated label set")?;
            parse_labels(&line[open + 1..close])?
        }
        None => Vec::new(),
    };
    let value_str = value_part.trim();
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s.parse::<f64>().map_err(|_| format!("bad value {s:?}"))?,
    };
    Ok(PromSample {
        name: name_part.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find("=\"").ok_or("label missing =\"")?;
        let key = &rest[..eq];
        if key.is_empty() {
            return Err("empty label name".to_string());
        }
        let after = &rest[eq + 2..];
        let endq = after.find('"').ok_or("unterminated label value")?;
        labels.push((key.to_string(), after[..endq].to_string()));
        rest = &after[endq + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn name_sanitisation_and_labels() {
        assert_eq!(metric_name("serve.latency_ms"), "nnlqp_serve_latency_ms");
        let (base, labels) = split_labels("monitor.windowed_mape{platform=\"gpu-T4-trt7.1-fp32\"}");
        assert_eq!(base, "monitor.windowed_mape");
        assert_eq!(labels, "platform=\"gpu-T4-trt7.1-fp32\"");
    }

    #[test]
    fn exposition_has_cumulative_buckets_and_types() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(7);
        reg.gauge("serve.queue_depth").set(3.0);
        let h = reg.histogram("serve.latency_ms", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(100.0);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE nnlqp_serve_requests counter"));
        assert!(text.contains("nnlqp_serve_requests 7"));
        assert!(text.contains("# TYPE nnlqp_serve_queue_depth gauge"));
        assert!(text.contains("nnlqp_serve_latency_ms_bucket{le=\"1\"} 1"));
        assert!(text.contains("nnlqp_serve_latency_ms_bucket{le=\"2\"} 2"));
        assert!(text.contains("nnlqp_serve_latency_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("nnlqp_serve_latency_ms_count 3"));
    }

    #[test]
    fn round_trips_through_the_parser() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").add(5);
        reg.counter("monitor.drift_alerts").inc();
        reg.gauge("monitor.windowed_mape{platform=\"gpu-T4-trt7.1-fp32\"}")
            .set(12.5);
        reg.histogram("q.stage_s{platform=\"cpu\"}", &[0.5, 1.0])
            .observe(0.75);
        let snap = reg.snapshot();
        let text = to_prometheus(&snap);
        let samples = parse_prometheus(&text).expect("own exposition parses");
        let find = |name: &str, platform: Option<&str>| -> f64 {
            samples
                .iter()
                .find(|s| s.name == name && s.label("platform") == platform)
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
        };
        assert_eq!(find("nnlqp_a_b", None), 5.0);
        assert_eq!(
            find("nnlqp_monitor_windowed_mape", Some("gpu-T4-trt7.1-fp32")),
            12.5
        );
        assert_eq!(find("nnlqp_q_stage_s_count", Some("cpu")), 1.0);
        // The histogram's +Inf bucket carries both labels.
        let inf = samples
            .iter()
            .find(|s| s.name == "nnlqp_q_stage_s_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.label("platform"), Some("cpu"));
        assert_eq!(inf.value, 1.0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("ok_metric 1\n").is_ok());
        assert!(parse_prometheus("1bad_name 1\n").is_err());
        assert!(parse_prometheus("no_value\n").is_err());
        assert!(parse_prometheus("bad_label{x=1} 2\n").is_err());
        assert!(parse_prometheus("unterminated{x=\"y\" 2\n").is_err());
    }
}
