//! Chrome-trace (`chrome://tracing` / Perfetto) export.
//!
//! Emits the JSON Object Format: `{"traceEvents": [...]}` where every
//! span becomes a complete event (`"ph": "X"`) with microsecond `ts` /
//! `dur`. Track groups map to trace *processes* and lanes to *threads*,
//! with metadata events naming both — so Perfetto shows `device` streams
//! and the `query` pipeline as separately labelled swimlanes.
//!
//! The exporter is hand-rolled string building on purpose: it keeps this
//! crate dependency-free and the output byte-deterministic, which the
//! golden trace tests rely on.

use crate::span::{Span, Timeline};
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a simulated-ms value as microseconds (Chrome-trace's unit).
fn us(ms: f64) -> String {
    // Shortest round-trip float formatting: deterministic and valid JSON.
    format!("{}", ms * 1000.0)
}

fn push_meta(out: &mut String, name: &str, pid: usize, tid: Option<u32>, label: &str) {
    out.push_str("    {\"name\": \"");
    out.push_str(name);
    let _ = write!(out, "\", \"ph\": \"M\", \"pid\": {pid}, ");
    if let Some(tid) = tid {
        let _ = write!(out, "\"tid\": {tid}, ");
    }
    let _ = write!(out, "\"args\": {{\"name\": \"{}\"}}}},", escape(label));
    out.push('\n');
}

/// Render a timeline as a Chrome-trace JSON document.
pub fn to_chrome_json(timeline: &Timeline) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");

    // Stable pid assignment: order of first appearance in the (sorted)
    // timeline. pid 0 is reserved by some viewers; start at 1.
    let tracks = timeline.tracks();
    let mut groups: Vec<&str> = Vec::new();
    for t in &tracks {
        if !groups.contains(&t.group.as_str()) {
            groups.push(&t.group);
        }
    }
    let pid_of = |group: &str| -> usize {
        1 + groups
            .iter()
            .position(|g| *g == group)
            .expect("group registered")
    };

    for (i, g) in groups.iter().enumerate() {
        push_meta(&mut out, "process_name", i + 1, None, g);
    }
    for t in &tracks {
        push_meta(
            &mut out,
            "thread_name",
            pid_of(&t.group),
            Some(t.lane),
            &format!("{} {}", t.group, t.lane),
        );
    }

    let mut first = true;
    for s in &timeline.spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("    ");
        push_event(&mut out, s, pid_of(&s.track.group));
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn push_event(out: &mut String, s: &Span, pid: usize) {
    let _ = write!(
        out,
        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": {pid}, \"tid\": {}, \
         \"ts\": {}, \"dur\": {}",
        escape(&s.name),
        escape(&s.cat),
        s.track.lane,
        us(s.start_ms),
        us(s.dur_ms),
    );
    if !s.args.is_empty() {
        out.push_str(", \"args\": {");
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            // Numeric-looking values stay numbers so Perfetto can plot
            // them; everything else is a string.
            if v.parse::<f64>().is_ok() {
                let _ = write!(out, "\"{}\": {v}", escape(k));
            } else {
                let _ = write!(out, "\"{}\": \"{}\"", escape(k), escape(v));
            }
        }
        out.push('}');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, Track};

    fn sample() -> Timeline {
        let r = Recorder::new();
        r.record(
            Span::new("hash", "stage", Track::new("query", 0), 0.0, 1.5).arg("graph_hash", 42),
        );
        r.record(
            Span::new("Conv+Relu", "kernel", Track::new("device", 0), 0.5, 0.25)
                .arg("flops", 1.0e6)
                .arg("family", "Conv+Relu"),
        );
        r.record(Span::new(
            "MaxPool",
            "kernel",
            Track::new("device", 1),
            0.5,
            0.1,
        ));
        r.timeline()
    }

    #[test]
    fn export_structure() {
        let json = to_chrome_json(&sample());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        // ms -> us conversion.
        assert!(json.contains("\"ts\": 500, \"dur\": 250"), "{json}");
        // Numeric args stay numbers, strings are quoted.
        assert!(json.contains("\"graph_hash\": 42"));
        assert!(json.contains("\"family\": \"Conv+Relu\""));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(to_chrome_json(&sample()), to_chrome_json(&sample()));
    }

    #[test]
    fn escaping_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
