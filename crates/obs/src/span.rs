//! Span recording on a simulated clock.
//!
//! A [`Span`] is one closed interval of simulated time attributed to a
//! named activity on a [`Track`] (a display lane: a device stream, the
//! query pipeline, ...). A [`Recorder`] collects spans from any number of
//! producers; a disabled recorder makes every call a cheap no-op, so hot
//! paths can thread one through unconditionally.
//!
//! Timestamps are *simulated* milliseconds: the stack's deterministic sim
//! clock, not wall time. That is what makes traces goldenable — the same
//! seeded query always yields byte-identical timelines.

use std::fmt;
use std::sync::Mutex;

/// A display lane for spans: a named group plus a lane index within it
/// (Chrome-trace renders groups as processes and lanes as threads).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Track {
    /// Lane group, e.g. `"query"` or `"device"`.
    pub group: String,
    /// Lane within the group, e.g. the stream id.
    pub lane: u32,
}

impl Track {
    /// Track in `group` at `lane`.
    pub fn new(group: &str, lane: u32) -> Self {
        Track {
            group: group.to_string(),
            lane,
        }
    }
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.group, self.lane)
    }
}

/// One recorded interval of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Activity name, e.g. `"Conv+Add+Relu"` or `"db.lookup"`.
    pub name: String,
    /// Category, e.g. `"stage"` or `"kernel"` (Chrome-trace `cat`).
    pub cat: String,
    /// Display lane.
    pub track: Track,
    /// Start, in simulated milliseconds.
    pub start_ms: f64,
    /// Duration, in simulated milliseconds.
    pub dur_ms: f64,
    /// Free-form key/value annotations (Chrome-trace `args`).
    pub args: Vec<(String, String)>,
}

impl Span {
    /// A span with no annotations.
    pub fn new(name: &str, cat: &str, track: Track, start_ms: f64, dur_ms: f64) -> Self {
        Span {
            name: name.to_string(),
            cat: cat.to_string(),
            track,
            start_ms,
            dur_ms,
            args: Vec::new(),
        }
    }

    /// Attach an annotation (builder style).
    #[must_use]
    pub fn arg(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.args.push((key.to_string(), value.to_string()));
        self
    }

    /// End of the interval.
    pub fn end_ms(&self) -> f64 {
        self.start_ms + self.dur_ms
    }
}

/// A monotonic simulated clock: sequential stages advance it and get back
/// their interval. Purely local state — one per traced operation.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ms: f64,
}

impl SimClock {
    /// Clock at t = 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Advance by `dur_ms` and return the consumed `(start, dur)`.
    pub fn advance(&mut self, dur_ms: f64) -> (f64, f64) {
        let start = self.now_ms;
        self.now_ms += dur_ms;
        (start, dur_ms)
    }
}

/// Thread-safe span collector. Cloneless: share it by reference (or wrap
/// in an `Arc`); producers push, the owner drains a [`Timeline`] at the
/// end.
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    spans: Mutex<Vec<Span>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An enabled recorder.
    pub fn new() -> Self {
        Recorder {
            enabled: true,
            spans: Mutex::new(Vec::new()),
        }
    }

    /// A recorder that drops everything — the zero-cost default for
    /// untraced hot paths.
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Whether records are kept; producers can skip building expensive
    /// annotations when false.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one span (no-op when disabled).
    pub fn record(&self, span: Span) {
        if self.enabled {
            self.spans.lock().expect("recorder lock").push(span);
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("recorder lock").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the recorded spans as an ordered [`Timeline`].
    pub fn timeline(&self) -> Timeline {
        let mut spans = self.spans.lock().expect("recorder lock").clone();
        // Deterministic order regardless of producer interleaving.
        spans.sort_by(|a, b| {
            (&a.track, a.start_ms, &a.name)
                .partial_cmp(&(&b.track, b.start_ms, &b.name))
                .expect("finite timestamps")
        });
        Timeline { spans }
    }
}

/// An ordered snapshot of recorded spans, ready for export.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Spans sorted by `(track, start, name)`.
    pub spans: Vec<Span>,
}

impl Timeline {
    /// Latest span end (0 for an empty timeline).
    pub fn end_ms(&self) -> f64 {
        self.spans.iter().map(Span::end_ms).fold(0.0, f64::max)
    }

    /// Distinct tracks in display order.
    pub fn tracks(&self) -> Vec<Track> {
        let mut out: Vec<Track> = Vec::new();
        for s in &self.spans {
            if !out.contains(&s.track) {
                out.push(s.track.clone());
            }
        }
        out
    }

    /// Spans on one track, in start order.
    pub fn on_track(&self, track: &Track) -> Vec<&Span> {
        self.spans.iter().filter(|s| &s.track == track).collect()
    }

    /// Total duration of spans whose category is `cat`.
    pub fn total_ms(&self, cat: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.cat == cat)
            .map(|s| s.dur_ms)
            .sum()
    }

    /// First pair of spans on the same track that overlap in time, if
    /// any — the invariant checker behind the golden trace tests (kernel
    /// spans within one stream must never overlap).
    pub fn first_overlap(&self) -> Option<(&Span, &Span)> {
        for t in self.tracks() {
            let on = self.on_track(&t);
            for w in on.windows(2) {
                // Sorted by start: an overlap is "next starts before
                // previous ends" (with a float-noise guard band).
                if w[1].start_ms < w[0].end_ms() - 1e-9 {
                    return Some((w[0], w[1]));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_spans() {
        let r = Recorder::disabled();
        r.record(Span::new("x", "stage", Track::new("q", 0), 0.0, 1.0));
        assert!(!r.is_enabled());
        assert!(r.is_empty());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        let (s1, d1) = c.advance(2.5);
        let (s2, _) = c.advance(1.0);
        assert_eq!((s1, d1), (0.0, 2.5));
        assert_eq!(s2, 2.5);
        assert_eq!(c.now_ms(), 3.5);
    }

    #[test]
    fn timeline_sorts_and_groups() {
        let r = Recorder::new();
        r.record(Span::new("b", "k", Track::new("s", 1), 5.0, 1.0));
        r.record(Span::new("a", "k", Track::new("s", 0), 2.0, 1.0));
        r.record(Span::new("c", "k", Track::new("s", 0), 0.0, 1.0));
        let t = r.timeline();
        assert_eq!(t.spans[0].name, "c");
        assert_eq!(t.spans[1].name, "a");
        assert_eq!(t.spans[2].name, "b");
        assert_eq!(t.tracks().len(), 2);
        assert_eq!(t.end_ms(), 6.0);
        assert_eq!(t.total_ms("k"), 3.0);
    }

    #[test]
    fn overlap_detection() {
        let r = Recorder::new();
        r.record(Span::new("a", "k", Track::new("s", 0), 0.0, 2.0));
        r.record(Span::new("b", "k", Track::new("s", 0), 1.0, 2.0));
        let t = r.timeline();
        let (x, y) = t.first_overlap().expect("overlap found");
        assert_eq!((x.name.as_str(), y.name.as_str()), ("a", "b"));

        // Different lanes may overlap freely.
        let r = Recorder::new();
        r.record(Span::new("a", "k", Track::new("s", 0), 0.0, 2.0));
        r.record(Span::new("b", "k", Track::new("s", 1), 1.0, 2.0));
        assert!(r.timeline().first_overlap().is_none());

        // Back-to-back spans do not count as overlapping.
        let r = Recorder::new();
        r.record(Span::new("a", "k", Track::new("s", 0), 0.0, 2.0));
        r.record(Span::new("b", "k", Track::new("s", 0), 2.0, 2.0));
        assert!(r.timeline().first_overlap().is_none());
    }

    #[test]
    fn span_args_builder() {
        let s = Span::new("conv", "kernel", Track::new("d", 0), 0.0, 1.0)
            .arg("stream", 0)
            .arg("flops", 12.5);
        assert_eq!(s.args.len(), 2);
        assert_eq!(s.args[1], ("flops".to_string(), "12.5".to_string()));
    }
}
