//! NAS-Bench-201 family generator (Dong & Yang, 2020).
//!
//! Cell-based CIFAR models: each cell is a 4-node DAG whose 6 edges carry
//! one of five candidate operations (none / skip / 1x1 conv / 3x3 conv /
//! 3x3 avg-pool); cells are stacked in three stages separated by residual
//! reduction blocks. The paper adds 2,000 such models to its corpus — the
//! one family whose *topology* varies, which is what breaks search-space-
//! specific predictors like BRP-NAS.

use crate::util::scale_c;
use nnlqp_ir::{Graph, GraphBuilder, IrResult, NodeId, Rng64, Shape};

/// The five candidate edge operations of the NAS-Bench-201 search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOp {
    /// No connection.
    None,
    /// Identity.
    Skip,
    /// 1x1 convolution + ReLU.
    Conv1x1,
    /// 3x3 convolution + ReLU.
    Conv3x3,
    /// 3x3 average pool (stride 1).
    AvgPool3x3,
}

/// All candidate ops (sampling order).
pub const CELL_OPS: [CellOp; 5] = [
    CellOp::None,
    CellOp::Skip,
    CellOp::Conv1x1,
    CellOp::Conv3x3,
    CellOp::AvgPool3x3,
];

/// A cell architecture: ops for the 6 edges
/// (0→1, 0→2, 1→2, 0→3, 1→3, 2→3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellArch(pub [CellOp; 6]);

impl CellArch {
    /// Sample a random cell, re-drawing until node 3 (the output) is
    /// reachable from node 0.
    pub fn sample(r: &mut Rng64) -> CellArch {
        loop {
            let ops = [(); 6].map(|_| *r.choice(&CELL_OPS));
            let arch = CellArch(ops);
            if arch.output_reachable() {
                return arch;
            }
        }
    }

    /// Edge index for `i -> j` (i < j <= 3).
    fn edge(i: usize, j: usize) -> usize {
        match (i, j) {
            (0, 1) => 0,
            (0, 2) => 1,
            (1, 2) => 2,
            (0, 3) => 3,
            (1, 3) => 4,
            (2, 3) => 5,
            _ => unreachable!("bad edge {i}->{j}"),
        }
    }

    /// Is the cell output connected (transitively) to the cell input?
    pub fn output_reachable(&self) -> bool {
        let mut live = [true, false, false, false];
        for j in 1..4 {
            for i in 0..j {
                if live[i] && self.0[Self::edge(i, j)] != CellOp::None {
                    live[j] = true;
                }
            }
        }
        live[3]
    }
}

/// Configuration of one NAS-Bench-201 variant.
#[derive(Debug, Clone)]
pub struct NasBenchConfig {
    /// The cell architecture replicated through the network.
    pub arch: CellArch,
    /// Cells per stage (canonical 5; sampled smaller for corpus variety).
    pub cells_per_stage: u32,
    /// Stem width (canonical 16).
    pub stem_channels: u32,
    /// Batch size.
    pub batch: usize,
    /// Output classes (CIFAR-10/100).
    pub classes: u32,
}

impl Default for NasBenchConfig {
    fn default() -> Self {
        NasBenchConfig {
            arch: CellArch([
                CellOp::Conv3x3,
                CellOp::Conv3x3,
                CellOp::Conv3x3,
                CellOp::Skip,
                CellOp::Conv1x1,
                CellOp::Conv3x3,
            ]),
            cells_per_stage: 5,
            stem_channels: 16,
            batch: 1,
            classes: 10,
        }
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> NasBenchConfig {
    NasBenchConfig {
        arch: CellArch::sample(r),
        cells_per_stage: 2 + r.below(4) as u32,
        stem_channels: *r.choice(&[16u32, 24, 32]),
        batch: 1,
        classes: 10,
    }
}

/// Apply one edge op to a node; `None` is handled by the caller.
fn apply_op(b: &mut GraphBuilder, op: CellOp, x: NodeId, c: u32) -> IrResult<NodeId> {
    match op {
        CellOp::None => unreachable!("None edges are skipped by the caller"),
        CellOp::Skip => Ok(x),
        CellOp::Conv1x1 => {
            let conv = b.conv(Some(x), c, 1, 1, 0, 1)?;
            b.relu(conv)
        }
        CellOp::Conv3x3 => {
            let conv = b.conv(Some(x), c, 3, 1, 1, 1)?;
            b.relu(conv)
        }
        CellOp::AvgPool3x3 => b.avgpool(x, 3, 1, 1),
    }
}

/// Build one cell; returns the cell output node.
fn build_cell(b: &mut GraphBuilder, arch: &CellArch, input: NodeId, c: u32) -> IrResult<NodeId> {
    let mut values: [Option<NodeId>; 4] = [Some(input), None, None, None];
    for j in 1..4 {
        let mut acc: Option<NodeId> = None;
        #[allow(clippy::needless_range_loop)] // i indexes both arch edges and values
        for i in 0..j {
            let op = arch.0[CellArch::edge(i, j)];
            if op == CellOp::None {
                continue;
            }
            let Some(src) = values[i] else { continue };
            let contrib = apply_op(b, op, src, c)?;
            acc = Some(match acc {
                None => contrib,
                Some(prev) => b.add(prev, contrib)?,
            });
        }
        values[j] = acc;
    }
    // output_reachable() guarantees node 3 is populated.
    Ok(values[3].expect("cell output unreachable"))
}

/// Residual reduction block between stages (stride-2 basic block).
fn reduction(b: &mut GraphBuilder, x: NodeId, c: u32) -> IrResult<NodeId> {
    let c1 = b.conv(Some(x), c, 3, 2, 1, 1)?;
    let r1 = b.relu(c1)?;
    let c2 = b.conv(Some(r1), c, 3, 1, 1, 1)?;
    let sc = b.conv(Some(x), c, 1, 2, 0, 1)?;
    let sum = b.add(c2, sc)?;
    b.relu(sum)
}

/// Build the variant graph (CIFAR 32x32 input).
pub fn build(name: &str, cfg: &NasBenchConfig) -> IrResult<Graph> {
    let mut b = GraphBuilder::new(name, Shape::nchw(cfg.batch, 3, 32, 32));
    let stem = b.conv(None, cfg.stem_channels, 3, 1, 1, 1)?;
    let mut cur = b.relu(stem)?;
    let mut c = cfg.stem_channels;
    for stage in 0..3 {
        if stage > 0 {
            c = scale_c(c * 2, 1.0);
            cur = reduction(&mut b, cur, c)?;
        }
        for _ in 0..cfg.cells_per_stage {
            cur = build_cell(&mut b, &cfg.arch, cur, c)?;
        }
    }
    let gp = b.global_avgpool(cur)?;
    let fl = b.flatten(gp)?;
    b.gemm(fl, cfg.classes)?;
    b.finish()
}

/// Sample and build one variant.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;

    #[test]
    fn canonical_builds() {
        let g = build("nb201", &NasBenchConfig::default()).unwrap();
        assert!(validate(&g).is_ok());
        assert_eq!(*g.output_shape().unwrap(), Shape::nc(1, 10));
    }

    #[test]
    fn all_skip_cell_collapses_to_identity() {
        let cfg = NasBenchConfig {
            arch: CellArch([
                CellOp::Skip,
                CellOp::Skip,
                CellOp::None,
                CellOp::Skip,
                CellOp::None,
                CellOp::None,
            ]),
            ..Default::default()
        };
        // 0->1 skip, 0->2 skip, 0->3 skip: cell output == cell input, so the
        // network is just stem + reductions + head.
        let g = build("skips", &cfg).unwrap();
        assert!(validate(&g).is_ok());
        let convs = g
            .nodes
            .iter()
            .filter(|n| n.op == nnlqp_ir::OpType::Conv)
            .count();
        assert_eq!(convs, 1 + 2 * 3); // stem + 2 reductions x 3 convs (head gemm is not a conv)
    }

    #[test]
    fn unreachable_cells_are_rejected_by_sampler() {
        let mut r = Rng64::new(3);
        for _ in 0..200 {
            assert!(CellArch::sample(&mut r).output_reachable());
        }
    }

    #[test]
    fn dead_none_cell_detected() {
        let arch = CellArch([CellOp::None; 6]);
        assert!(!arch.output_reachable());
        // 0->3 only via 0->1, 1->3
        let arch2 = CellArch([
            CellOp::Conv3x3,
            CellOp::None,
            CellOp::None,
            CellOp::None,
            CellOp::Skip,
            CellOp::None,
        ]);
        assert!(arch2.output_reachable());
    }

    #[test]
    fn random_variants_valid_and_distinct_topologies() {
        let mut r = Rng64::new(101);
        let mut hashes = std::collections::HashSet::new();
        for i in 0..50 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
            hashes.insert(g.len() * 1000 + g.num_edges());
        }
        // Many structurally different graphs (not just reparameterized).
        assert!(
            hashes.len() > 10,
            "only {} distinct topologies",
            hashes.len()
        );
    }
}
