//! VGG family generator (Simonyan & Zisserman, 2014).
//!
//! Five stages of stacked same-resolution convolutions separated by max
//! pools, followed by a wide fully-connected head. Variants perturb per-
//! stage depth, kernel size and channel widths.

use crate::util::{same_pad, scale_c};
use nnlqp_ir::{Graph, GraphBuilder, IrResult, NodeId, Rng64, Shape};

/// Configuration of one VGG variant.
#[derive(Debug, Clone)]
pub struct VggConfig {
    /// Input resolution.
    pub resolution: usize,
    /// Batch size.
    pub batch: usize,
    /// Width multiplier.
    pub width: f64,
    /// Convolutions per stage (5 stages).
    pub depths: [u32; 5],
    /// Kernel size used in the first two stages (3 canonical).
    pub early_kernel: u32,
    /// Hidden fc width (canonical 4096).
    pub fc_width: u32,
    /// Output classes.
    pub classes: u32,
}

impl Default for VggConfig {
    fn default() -> Self {
        // VGG-16: depths 2,2,3,3,3.
        VggConfig {
            resolution: 224,
            batch: 1,
            width: 1.0,
            depths: [2, 2, 3, 3, 3],
            early_kernel: 3,
            fc_width: 4096,
            classes: 1000,
        }
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> VggConfig {
    VggConfig {
        resolution: *r.choice(&[160usize, 192, 224]),
        batch: 1,
        width: r.range_f64(0.4, 1.2),
        depths: [
            1 + r.below(2) as u32,
            1 + r.below(2) as u32,
            2 + r.below(2) as u32,
            2 + r.below(2) as u32,
            2 + r.below(2) as u32,
        ],
        early_kernel: *r.choice(&[3u32, 5]),
        fc_width: *r.choice(&[1024u32, 2048, 4096]),
        classes: 1000,
    }
}

const STAGE_CHANNELS: [u32; 5] = [64, 128, 256, 512, 512];

/// Build the variant graph.
pub fn build(name: &str, cfg: &VggConfig) -> IrResult<Graph> {
    let mut b = GraphBuilder::new(
        name,
        Shape::nchw(cfg.batch, 3, cfg.resolution, cfg.resolution),
    );
    let mut cur: Option<NodeId> = None;
    for (stage, &base_c) in STAGE_CHANNELS.iter().enumerate() {
        let c = scale_c(base_c, cfg.width);
        let k = if stage < 2 { cfg.early_kernel } else { 3 };
        for _ in 0..cfg.depths[stage] {
            let conv = b.conv(cur, c, k, 1, same_pad(k), 1)?;
            cur = Some(b.relu(conv)?);
        }
        cur = Some(b.maxpool(cur.unwrap(), 2, 2, 0)?);
    }
    let x = cur.unwrap();
    let gp = b.global_avgpool(x)?;
    let fl = b.flatten(gp)?;
    let f1 = b.gemm(fl, cfg.fc_width)?;
    let a1 = b.relu(f1)?;
    let f2 = b.gemm(a1, cfg.fc_width)?;
    let a2 = b.relu(f2)?;
    b.gemm(a2, cfg.classes)?;
    b.finish()
}

/// Sample and build one variant.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;

    #[test]
    fn vgg16_canonical() {
        let g = build("vgg16", &VggConfig::default()).unwrap();
        assert!(validate(&g).is_ok());
        // 13 convs + 13 relus + 5 pools + head(gp,flatten,3 gemm,2 relu)
        assert_eq!(g.len(), 13 + 13 + 5 + 7);
    }

    #[test]
    fn vgg_is_flop_heavy() {
        // VGG's defining property: enormous FLOPs relative to AlexNet.
        let v = build("v", &VggConfig::default()).unwrap();
        let a = crate::alexnet::build("a", &crate::alexnet::AlexNetConfig::default()).unwrap();
        let fv = nnlqp_ir::cost::graph_cost(&v, nnlqp_ir::DType::F32).flops;
        let fa = nnlqp_ir::cost::graph_cost(&a, nnlqp_ir::DType::F32).flops;
        assert!(fv > 5.0 * fa, "vgg {fv} vs alexnet {fa}");
    }

    #[test]
    fn random_variants_valid() {
        let mut r = Rng64::new(23);
        for i in 0..50 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
        }
    }
}
