//! RegNetX family generator (Radosavovic et al., 2020).
//!
//! Used by the §9 design-triage comparison: RegNetX-200M and ResNet18
//! have similar ImageNet accuracy but the paper measures RegNetX at 150%
//! of ResNet18's latency on P4 int8 — grouped convolutions with narrow
//! group width underutilize wide MAC arrays.

use crate::util::{classifier, scale_c};
use nnlqp_ir::{Graph, GraphBuilder, IrResult, NodeId, Rng64, Shape};

/// Configuration of one RegNetX variant.
#[derive(Debug, Clone)]
pub struct RegNetConfig {
    /// Input resolution.
    pub resolution: usize,
    /// Batch size.
    pub batch: usize,
    /// Width multiplier.
    pub width: f64,
    /// Blocks per stage.
    pub depths: [u32; 4],
    /// Base widths per stage.
    pub widths: [u32; 4],
    /// Group width (channels per convolution group).
    pub group_width: u32,
    /// Output classes.
    pub classes: u32,
}

impl Default for RegNetConfig {
    /// RegNetX-200MF.
    fn default() -> Self {
        RegNetConfig {
            resolution: 224,
            batch: 1,
            width: 1.0,
            depths: [1, 1, 4, 7],
            widths: [24, 56, 152, 368],
            group_width: 8,
            classes: 1000,
        }
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> RegNetConfig {
    RegNetConfig {
        resolution: *r.choice(&[192usize, 224]),
        batch: 1,
        width: r.range_f64(0.7, 1.3),
        depths: [
            1,
            1 + r.below(2) as u32,
            3 + r.below(3) as u32,
            5 + r.below(4) as u32,
        ],
        group_width: *r.choice(&[8u32, 16]),
        ..Default::default()
    }
}

/// X block: 1x1 -> grouped 3x3 -> 1x1 with a residual.
fn x_block(
    b: &mut GraphBuilder,
    x: NodeId,
    w: u32,
    stride: u32,
    group_width: u32,
) -> IrResult<NodeId> {
    let groups = (w / group_width).max(1);
    let c1 = b.conv(Some(x), w, 1, 1, 0, 1)?;
    let r1 = b.relu(c1)?;
    let c2 = b.conv(Some(r1), w, 3, stride, 1, groups)?;
    let r2 = b.relu(c2)?;
    let c3 = b.conv(Some(r2), w, 1, 1, 0, 1)?;
    let shortcut = if stride != 1 || b.channels(x) as u32 != w {
        b.conv(Some(x), w, 1, stride, 0, 1)?
    } else {
        x
    };
    let sum = b.add(c3, shortcut)?;
    b.relu(sum)
}

/// Round a width so it is divisible by the group width.
fn round_to_group(w: u32, group_width: u32) -> u32 {
    ((w + group_width / 2) / group_width).max(1) * group_width
}

/// Build the variant graph.
pub fn build(name: &str, cfg: &RegNetConfig) -> IrResult<Graph> {
    let mut b = GraphBuilder::new(
        name,
        Shape::nchw(cfg.batch, 3, cfg.resolution, cfg.resolution),
    );
    let stem = b.conv(None, 32, 3, 2, 1, 1)?;
    let mut cur = b.relu(stem)?;
    for stage in 0..4 {
        let w = round_to_group(scale_c(cfg.widths[stage], cfg.width), cfg.group_width);
        for i in 0..cfg.depths[stage] {
            let stride = if i == 0 { 2 } else { 1 };
            cur = x_block(&mut b, cur, w, stride, cfg.group_width)?;
        }
    }
    classifier(&mut b, cur, cfg.classes)?;
    b.finish()
}

/// Sample and build one variant.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;
    use nnlqp_ir::OpType;

    #[test]
    fn regnetx_200m_builds() {
        let g = build("regnetx-200m", &RegNetConfig::default()).unwrap();
        assert!(validate(&g).is_ok());
        // 13 X blocks, each with a grouped conv.
        let grouped = g
            .nodes
            .iter()
            .filter(|n| n.op == OpType::Conv && n.attrs.groups > 1)
            .count();
        assert_eq!(grouped, 13);
    }

    #[test]
    fn widths_divisible_by_group_width() {
        let g = build("r", &RegNetConfig::default()).unwrap();
        for n in g
            .nodes
            .iter()
            .filter(|n| n.op == OpType::Conv && n.attrs.groups > 1)
        {
            assert_eq!(n.attrs.out_channels % 8, 0);
        }
    }

    #[test]
    fn flops_comparable_to_small_models() {
        // "200MF" = ~200M FLOPs (400M MACs by our 2-flops convention,
        // within a factor of 2-3 given the classifier head).
        let g = build("r", &RegNetConfig::default()).unwrap();
        let f = nnlqp_ir::cost::graph_cost(&g, nnlqp_ir::DType::F32).flops;
        assert!(f > 2e8 && f < 2e9, "flops {f}");
    }

    #[test]
    fn random_variants_valid() {
        let mut r = Rng64::new(121);
        for i in 0..30 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
        }
    }
}
