//! GoogleNet / Inception-v1 family generator (Szegedy et al., 2015).
//!
//! Inception modules with four parallel branches (1x1; 1x1->3x3; 1x1->5x5;
//! pool->1x1) concatenated on the channel axis. Variants perturb module
//! count, branch widths and the large-branch kernel.

use crate::util::{same_pad, scale_c};
use nnlqp_ir::{Graph, GraphBuilder, IrResult, NodeId, Rng64, Shape};

/// Configuration of one GoogleNet variant.
#[derive(Debug, Clone)]
pub struct GoogleNetConfig {
    /// Input resolution.
    pub resolution: usize,
    /// Batch size.
    pub batch: usize,
    /// Width multiplier.
    pub width: f64,
    /// Number of inception modules (canonical 9).
    pub modules: u32,
    /// Kernel of the third branch (canonical 5).
    pub large_kernel: u32,
    /// Output classes.
    pub classes: u32,
}

impl Default for GoogleNetConfig {
    fn default() -> Self {
        GoogleNetConfig {
            resolution: 224,
            batch: 1,
            width: 1.0,
            modules: 9,
            large_kernel: 5,
            classes: 1000,
        }
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> GoogleNetConfig {
    GoogleNetConfig {
        resolution: *r.choice(&[160usize, 192, 224]),
        batch: 1,
        width: r.range_f64(0.5, 1.3),
        modules: 6 + r.below(4) as u32,
        large_kernel: *r.choice(&[3u32, 5]),
        classes: 1000,
    }
}

/// One inception module. Branch widths follow the canonical proportions of
/// the 3a module scaled by total width `c`.
fn inception(b: &mut GraphBuilder, x: NodeId, c: u32, large_k: u32) -> IrResult<NodeId> {
    let b1 = scale_c(c / 4, 1.0);
    let b2r = scale_c(c / 6, 1.0);
    let b2 = scale_c(c / 3, 1.0);
    let b3r = scale_c(c / 12, 1.0);
    let b3 = scale_c(c / 8, 1.0);
    let b4 = scale_c(c / 8, 1.0);

    // Branch 1: 1x1.
    let c1 = b.conv(Some(x), b1, 1, 1, 0, 1)?;
    let r1 = b.relu(c1)?;
    // Branch 2: 1x1 reduce then 3x3.
    let c2a = b.conv(Some(x), b2r, 1, 1, 0, 1)?;
    let r2a = b.relu(c2a)?;
    let c2b = b.conv(Some(r2a), b2, 3, 1, 1, 1)?;
    let r2b = b.relu(c2b)?;
    // Branch 3: 1x1 reduce then large kernel.
    let c3a = b.conv(Some(x), b3r, 1, 1, 0, 1)?;
    let r3a = b.relu(c3a)?;
    let c3b = b.conv(Some(r3a), b3, large_k, 1, same_pad(large_k), 1)?;
    let r3b = b.relu(c3b)?;
    // Branch 4: 3x3 maxpool then 1x1.
    let p4 = b.maxpool(x, 3, 1, 1)?;
    let c4 = b.conv(Some(p4), b4, 1, 1, 0, 1)?;
    let r4 = b.relu(c4)?;

    b.concat(&[r1, r2b, r3b, r4])
}

/// Build the variant graph.
pub fn build(name: &str, cfg: &GoogleNetConfig) -> IrResult<Graph> {
    let mut b = GraphBuilder::new(
        name,
        Shape::nchw(cfg.batch, 3, cfg.resolution, cfg.resolution),
    );
    // Stem.
    let s1 = b.conv(None, scale_c(64, cfg.width), 7, 2, 3, 1)?;
    let s1r = b.relu(s1)?;
    let p1 = b.maxpool(s1r, 3, 2, 1)?;
    let s2 = b.conv(Some(p1), scale_c(64, cfg.width), 1, 1, 0, 1)?;
    let s2r = b.relu(s2)?;
    let s3 = b.conv(Some(s2r), scale_c(192, cfg.width), 3, 1, 1, 1)?;
    let s3r = b.relu(s3)?;
    let mut cur = b.maxpool(s3r, 3, 2, 1)?;
    // Inception stacks with pools roughly every third module.
    for m in 0..cfg.modules {
        let c = scale_c(256 + 64 * (m / 2), cfg.width);
        cur = inception(&mut b, cur, c, cfg.large_kernel)?;
        if m % 3 == 2 && b.out_shape(cur).height() >= 4 {
            cur = b.maxpool(cur, 3, 2, 1)?;
        }
    }
    let gp = b.global_avgpool(cur)?;
    let fl = b.flatten(gp)?;
    b.gemm(fl, cfg.classes)?;
    b.finish()
}

/// Sample and build one variant.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;
    use nnlqp_ir::OpType;

    #[test]
    fn canonical_builds_with_nine_modules() {
        let g = build("googlenet", &GoogleNetConfig::default()).unwrap();
        assert!(validate(&g).is_ok());
        let concats = g.nodes.iter().filter(|n| n.op == OpType::Concat).count();
        assert_eq!(concats, 9);
    }

    #[test]
    fn inception_concat_has_four_inputs() {
        let g = build("g", &GoogleNetConfig::default()).unwrap();
        let c = g.nodes.iter().find(|n| n.op == OpType::Concat).unwrap();
        assert_eq!(c.inputs.len(), 4);
    }

    #[test]
    fn graph_is_wide_not_just_deep() {
        let g = build("g", &GoogleNetConfig::default()).unwrap();
        // Parallel branches mean the depth is far below the node count.
        assert!(g.depth() * 2 < g.len());
    }

    #[test]
    fn random_variants_valid() {
        let mut r = Rng64::new(51);
        for i in 0..50 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
        }
    }
}
