//! SqueezeNet family generator (Iandola et al., 2016).
//!
//! Fire modules — a 1x1 squeeze convolution feeding parallel 1x1 and 3x3
//! expand branches joined by channel concatenation. Variants perturb the
//! squeeze ratio, widths and module count.

use crate::util::scale_c;
use nnlqp_ir::{Graph, GraphBuilder, IrResult, NodeId, Rng64, Shape};

/// Configuration of one SqueezeNet variant.
#[derive(Debug, Clone)]
pub struct SqueezeNetConfig {
    /// Input resolution.
    pub resolution: usize,
    /// Batch size.
    pub batch: usize,
    /// Width multiplier.
    pub width: f64,
    /// Number of fire modules (canonical 8).
    pub fire_modules: u32,
    /// Squeeze channels as a fraction of expand channels (canonical 0.125).
    pub squeeze_ratio: f64,
    /// Output classes.
    pub classes: u32,
}

impl Default for SqueezeNetConfig {
    fn default() -> Self {
        SqueezeNetConfig {
            resolution: 224,
            batch: 1,
            width: 1.0,
            fire_modules: 8,
            squeeze_ratio: 0.125,
            classes: 1000,
        }
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> SqueezeNetConfig {
    SqueezeNetConfig {
        resolution: *r.choice(&[160usize, 192, 224, 256]),
        batch: 1,
        width: r.range_f64(0.5, 1.5),
        fire_modules: 6 + r.below(4) as u32,
        squeeze_ratio: r.range_f64(0.08, 0.25),
        classes: 1000,
    }
}

/// One fire module: squeeze(1x1) -> relu -> {expand1x1, expand3x3} ->
/// relus -> concat.
fn fire(b: &mut GraphBuilder, x: NodeId, squeeze_c: u32, expand_c: u32) -> IrResult<NodeId> {
    let s = b.conv(Some(x), squeeze_c, 1, 1, 0, 1)?;
    let sr = b.relu(s)?;
    let e1 = b.conv(Some(sr), expand_c, 1, 1, 0, 1)?;
    let e1r = b.relu(e1)?;
    let e3 = b.conv(Some(sr), expand_c, 3, 1, 1, 1)?;
    let e3r = b.relu(e3)?;
    b.concat(&[e1r, e3r])
}

/// Build the variant graph.
pub fn build(name: &str, cfg: &SqueezeNetConfig) -> IrResult<Graph> {
    let mut b = GraphBuilder::new(
        name,
        Shape::nchw(cfg.batch, 3, cfg.resolution, cfg.resolution),
    );
    let stem = b.conv(None, scale_c(64, cfg.width), 3, 2, 1, 1)?;
    let sr = b.relu(stem)?;
    let mut cur = b.maxpool(sr, 3, 2, 1)?;
    // Expand width grows every two modules, like the canonical 1.1 layout.
    for m in 0..cfg.fire_modules {
        let expand = scale_c(64 + 32 * (m / 2), cfg.width);
        let squeeze = scale_c(
            ((expand as f64 * 2.0 * cfg.squeeze_ratio).round() as u32).max(4),
            1.0,
        );
        cur = fire(&mut b, cur, squeeze, expand)?;
        // Pool after modules 2 and 4 (if spatial size allows).
        if (m == 1 || m == 3) && b.out_shape(cur).height() >= 4 {
            cur = b.maxpool(cur, 3, 2, 1)?;
        }
    }
    // Conv classifier: 1x1 conv to classes, then global pool.
    let head = b.conv(Some(cur), cfg.classes, 1, 1, 0, 1)?;
    let hr = b.relu(head)?;
    let gp = b.global_avgpool(hr)?;
    b.flatten(gp)?;
    b.finish()
}

/// Sample and build one variant.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;
    use nnlqp_ir::OpType;

    #[test]
    fn canonical_builds() {
        let g = build("squeezenet", &SqueezeNetConfig::default()).unwrap();
        assert!(validate(&g).is_ok());
        let concats = g.nodes.iter().filter(|n| n.op == OpType::Concat).count();
        assert_eq!(concats, 8);
    }

    #[test]
    fn fire_module_concat_doubles_expand() {
        let g = build("s", &SqueezeNetConfig::default()).unwrap();
        let first_concat = g.nodes.iter().find(|n| n.op == OpType::Concat).unwrap();
        // Both expand branches have the same width -> concat has 2x channels.
        let expand_c = g.node(first_concat.inputs[0]).out_shape.channels();
        assert_eq!(first_concat.out_shape.channels(), 2 * expand_c);
    }

    #[test]
    fn params_are_small() {
        // SqueezeNet's claim to fame: far fewer parameters than AlexNet.
        let s = build("s", &SqueezeNetConfig::default()).unwrap();
        let a = crate::alexnet::build("a", &crate::alexnet::AlexNetConfig::default()).unwrap();
        let ps = nnlqp_ir::cost::graph_cost(&s, nnlqp_ir::DType::F32).params;
        let pa = nnlqp_ir::cost::graph_cost(&a, nnlqp_ir::DType::F32).params;
        assert!(ps < pa / 10.0, "squeezenet {ps} vs alexnet {pa}");
    }

    #[test]
    fn random_variants_valid() {
        let mut r = Rng64::new(41);
        for i in 0..50 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
        }
    }
}
