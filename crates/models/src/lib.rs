//! # nnlqp-models
//!
//! Programmatic generators for the model corpus of the paper's evaluation
//! (§8.1): nine classic CNN families plus NAS-Bench-201 cells, each
//! parameterized so that thousands of structurally distinct variants can be
//! sampled deterministically from a seed ("we ... transform each one to get
//! 2,000 variants with various kernel sizes and output channels"), and a
//! RetinaNet-style detection model for the task-transfer experiment
//! (Fig. 8).

pub mod alexnet;
pub mod dataset;
pub mod detection;
pub mod efficientnet;
pub mod family;
pub mod googlenet;
pub mod mnasnet;
pub mod mobilenet_v2;
pub mod mobilenet_v3;
pub mod nasbench;
pub mod regnet;
pub mod resnet;
pub mod squeezenet;
pub mod util;
pub mod vgg;

pub use dataset::{generate_dataset, generate_family, DatasetSpec};
pub use family::ModelFamily;
