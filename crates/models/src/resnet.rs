//! ResNet family generator (He et al., 2015).
//!
//! Residual basic blocks (two 3x3 convolutions plus identity / projection
//! shortcut) in four stages. Variants perturb per-stage depth, width and
//! resolution, spanning roughly ResNet-10 through ResNet-34 shapes.

use crate::util::{classifier, scale_c};
use nnlqp_ir::{Graph, GraphBuilder, IrResult, NodeId, Rng64, Shape};

/// Configuration of one ResNet variant.
#[derive(Debug, Clone)]
pub struct ResNetConfig {
    /// Input resolution.
    pub resolution: usize,
    /// Batch size.
    pub batch: usize,
    /// Width multiplier.
    pub width: f64,
    /// Basic blocks per stage.
    pub depths: [u32; 4],
    /// Output classes.
    pub classes: u32,
}

impl Default for ResNetConfig {
    fn default() -> Self {
        // ResNet-18.
        ResNetConfig {
            resolution: 224,
            batch: 1,
            width: 1.0,
            depths: [2, 2, 2, 2],
            classes: 1000,
        }
    }
}

/// ResNet-34 configuration.
pub fn resnet34() -> ResNetConfig {
    ResNetConfig {
        depths: [3, 4, 6, 3],
        ..Default::default()
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> ResNetConfig {
    ResNetConfig {
        resolution: *r.choice(&[160usize, 192, 224, 256]),
        batch: 1,
        width: r.range_f64(0.5, 1.5),
        depths: [
            1 + r.below(3) as u32,
            1 + r.below(4) as u32,
            1 + r.below(6) as u32,
            1 + r.below(3) as u32,
        ],
        classes: 1000,
    }
}

/// A basic residual block. Returns the post-activation output.
fn basic_block(b: &mut GraphBuilder, x: NodeId, c: u32, stride: u32) -> IrResult<NodeId> {
    let c1 = b.conv(Some(x), c, 3, stride, 1, 1)?;
    let r1 = b.relu(c1)?;
    let c2 = b.conv(Some(r1), c, 3, 1, 1, 1)?;
    let shortcut = if stride != 1 || b.channels(x) as u32 != c {
        b.conv(Some(x), c, 1, stride, 0, 1)?
    } else {
        x
    };
    let sum = b.add(c2, shortcut)?;
    b.relu(sum)
}

const STAGE_CHANNELS: [u32; 4] = [64, 128, 256, 512];

/// Build the variant graph (backbone + classifier head).
pub fn build(name: &str, cfg: &ResNetConfig) -> IrResult<Graph> {
    let mut b = GraphBuilder::new(
        name,
        Shape::nchw(cfg.batch, 3, cfg.resolution, cfg.resolution),
    );
    let x = build_backbone(&mut b, cfg)?;
    classifier(&mut b, x, cfg.classes)?;
    b.finish()
}

/// Build only the backbone into an existing builder; used by the detection
/// generator. Returns the final feature map node.
pub fn build_backbone(b: &mut GraphBuilder, cfg: &ResNetConfig) -> IrResult<NodeId> {
    let stem = b.conv(None, scale_c(64, cfg.width), 7, 2, 3, 1)?;
    let sr = b.relu(stem)?;
    let mut cur = b.maxpool(sr, 3, 2, 1)?;
    for (stage, &base_c) in STAGE_CHANNELS.iter().enumerate() {
        let c = scale_c(base_c, cfg.width);
        for block in 0..cfg.depths[stage] {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            cur = basic_block(b, cur, c, stride)?;
        }
    }
    Ok(cur)
}

/// Per-stage feature maps (C2..C5) for FPN-style heads.
pub fn build_backbone_pyramid(b: &mut GraphBuilder, cfg: &ResNetConfig) -> IrResult<Vec<NodeId>> {
    let stem = b.conv(None, scale_c(64, cfg.width), 7, 2, 3, 1)?;
    let sr = b.relu(stem)?;
    let mut cur = b.maxpool(sr, 3, 2, 1)?;
    let mut levels = Vec::with_capacity(4);
    for (stage, &base_c) in STAGE_CHANNELS.iter().enumerate() {
        let c = scale_c(base_c, cfg.width);
        for block in 0..cfg.depths[stage] {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            cur = basic_block(b, cur, c, stride)?;
        }
        levels.push(cur);
    }
    Ok(levels)
}

/// Sample and build one variant.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;

    #[test]
    fn resnet18_canonical() {
        let g = build("resnet18", &ResNetConfig::default()).unwrap();
        assert!(validate(&g).is_ok());
        assert_eq!(*g.output_shape().unwrap(), Shape::nc(1, 1000));
        // 8 basic blocks; identity blocks contribute 5 nodes, projection
        // blocks 6; stem 3 + head 3.
        let convs = g
            .nodes
            .iter()
            .filter(|n| n.op == nnlqp_ir::OpType::Conv)
            .count();
        assert_eq!(convs, 1 + 16 + 3); // stem + block convs + 3 projections
    }

    #[test]
    fn residual_adds_present() {
        let g = build("r", &ResNetConfig::default()).unwrap();
        let adds = g
            .nodes
            .iter()
            .filter(|n| n.op == nnlqp_ir::OpType::Add)
            .count();
        assert_eq!(adds, 8);
    }

    #[test]
    fn resnet34_deeper_than_18() {
        let g18 = build("a", &ResNetConfig::default()).unwrap();
        let g34 = build("b", &resnet34()).unwrap();
        assert!(g34.len() > g18.len());
    }

    #[test]
    fn downsampling_reaches_7x7() {
        let g = build("r", &ResNetConfig::default()).unwrap();
        // Find the last conv output before the head.
        let pre_head = &g.nodes[g.len() - 4];
        assert_eq!(pre_head.out_shape.height(), 7);
    }

    #[test]
    fn random_variants_valid() {
        let mut r = Rng64::new(31);
        for i in 0..50 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
        }
    }
}
