//! MobileNetV2 family generator (Sandler et al., 2018).
//!
//! Inverted residual blocks: 1x1 expansion -> ReLU6 -> depthwise -> ReLU6 ->
//! 1x1 linear projection, with a residual add when shapes allow. Variants
//! perturb width, expansion ratio, depthwise kernel and per-stage depth —
//! the memory-bound family that breaks FLOPs-only latency proxies.

use crate::util::{same_pad, scale_c};
use nnlqp_ir::{Graph, GraphBuilder, IrResult, NodeId, Rng64, Shape};

/// Configuration of one MobileNetV2 variant.
#[derive(Debug, Clone)]
pub struct MobileNetV2Config {
    /// Input resolution.
    pub resolution: usize,
    /// Batch size.
    pub batch: usize,
    /// Width multiplier.
    pub width: f64,
    /// Expansion ratio t (canonical 6).
    pub expand: u32,
    /// Depthwise kernel size.
    pub dw_kernel: u32,
    /// Extra repeats added to (or removed from) each stage, -1..=1.
    pub depth_delta: i32,
    /// Output classes.
    pub classes: u32,
}

impl Default for MobileNetV2Config {
    fn default() -> Self {
        MobileNetV2Config {
            resolution: 224,
            batch: 1,
            width: 1.0,
            expand: 6,
            dw_kernel: 3,
            depth_delta: 0,
            classes: 1000,
        }
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> MobileNetV2Config {
    MobileNetV2Config {
        resolution: *r.choice(&[160usize, 192, 224]),
        batch: 1,
        width: r.range_f64(0.5, 1.4),
        expand: *r.choice(&[3u32, 4, 6]),
        dw_kernel: *r.choice(&[3u32, 5]),
        depth_delta: *r.choice(&[-1i32, 0, 1]),
        classes: 1000,
    }
}

/// Inverted residual block: 1x1 expand -> ReLU6 -> depthwise -> ReLU6 ->
/// 1x1 project, with an identity residual when stride is 1 and channels
/// match. Public because OFA-style supernets are assembled from it.
pub fn inverted_residual(
    b: &mut GraphBuilder,
    x: NodeId,
    out_c: u32,
    stride: u32,
    expand: u32,
    dw_k: u32,
) -> IrResult<NodeId> {
    let in_c = b.channels(x) as u32;
    let hidden = in_c * expand;
    let mut cur = x;
    if expand != 1 {
        let e = b.conv(Some(cur), hidden, 1, 1, 0, 1)?;
        cur = b.relu6(e)?;
    }
    let dw = b.conv(Some(cur), hidden, dw_k, stride, same_pad(dw_k), hidden)?;
    let dwr = b.relu6(dw)?;
    let proj = b.conv(Some(dwr), out_c, 1, 1, 0, 1)?;
    if stride == 1 && in_c == out_c {
        b.add(x, proj)
    } else {
        Ok(proj)
    }
}

/// `(expand_used, channels, repeats, stride)` per stage — the canonical
/// MobileNetV2 table.
const STAGES: [(bool, u32, i32, u32); 7] = [
    (false, 16, 1, 1),
    (true, 24, 2, 2),
    (true, 32, 3, 2),
    (true, 64, 4, 2),
    (true, 96, 3, 1),
    (true, 160, 3, 2),
    (true, 320, 1, 1),
];

/// Build the variant graph.
pub fn build(name: &str, cfg: &MobileNetV2Config) -> IrResult<Graph> {
    let mut b = GraphBuilder::new(
        name,
        Shape::nchw(cfg.batch, 3, cfg.resolution, cfg.resolution),
    );
    let stem = b.conv(None, scale_c(32, cfg.width), 3, 2, 1, 1)?;
    let mut cur = b.relu6(stem)?;
    for &(use_expand, base_c, repeats, stride) in &STAGES {
        let c = scale_c(base_c, cfg.width);
        let n = (repeats + if repeats > 1 { cfg.depth_delta } else { 0 }).max(1);
        for i in 0..n {
            let s = if i == 0 { stride } else { 1 };
            let t = if use_expand { cfg.expand } else { 1 };
            cur = inverted_residual(&mut b, cur, c, s, t, cfg.dw_kernel)?;
        }
    }
    let head_c = scale_c(1280, cfg.width.max(1.0));
    let head = b.conv(Some(cur), head_c, 1, 1, 0, 1)?;
    let hr = b.relu6(head)?;
    let gp = b.global_avgpool(hr)?;
    let fl = b.flatten(gp)?;
    b.gemm(fl, cfg.classes)?;
    b.finish()
}

/// Sample and build one variant.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;
    use nnlqp_ir::{DType, OpType};

    #[test]
    fn canonical_builds() {
        let g = build("mbv2", &MobileNetV2Config::default()).unwrap();
        assert!(validate(&g).is_ok());
        // Depthwise convs present.
        let dws = g
            .nodes
            .iter()
            .filter(|n| n.op == OpType::Conv && n.attrs.groups > 1)
            .count();
        assert_eq!(dws, 17);
    }

    #[test]
    fn residual_adds_only_on_matching_shapes() {
        let g = build("m", &MobileNetV2Config::default()).unwrap();
        for n in g.nodes.iter().filter(|n| n.op == OpType::Add) {
            let a = &g.node(n.inputs[0]).out_shape;
            let c = &g.node(n.inputs[1]).out_shape;
            assert_eq!(a, c);
        }
        // Canonical layout: 10 identity-residual blocks.
        let adds = g.nodes.iter().filter(|n| n.op == OpType::Add).count();
        assert_eq!(adds, 10);
    }

    #[test]
    fn memory_bound_relative_to_resnet() {
        // MobileNetV2 has far lower FLOPs/byte than ResNet — the property
        // that makes FLOPs-only predictors fail on it (Table 3).
        let m = build("m", &MobileNetV2Config::default()).unwrap();
        let r = crate::resnet::build("r", &crate::resnet::ResNetConfig::default()).unwrap();
        let cm = nnlqp_ir::cost::graph_cost(&m, DType::F32);
        let cr = nnlqp_ir::cost::graph_cost(&r, DType::F32);
        let intensity_m = cm.flops / cm.mem_bytes;
        let intensity_r = cr.flops / cr.mem_bytes;
        assert!(
            intensity_m < intensity_r / 2.0,
            "mbv2 {intensity_m} vs resnet {intensity_r}"
        );
    }

    #[test]
    fn random_variants_valid() {
        let mut r = Rng64::new(61);
        for i in 0..50 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
        }
    }
}
