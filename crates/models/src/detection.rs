//! RetinaNet-style detection model generator (Lin et al., 2018).
//!
//! Used by the task-transfer experiment (Fig. 8): a ResNet backbone feeding
//! per-level classification and box-regression subnets. The task-specific
//! heads dominate latency relative to an equal-backbone classifier, which
//! is exactly the distribution shift the experiment studies.
//!
//! Substitution note: the IR has no `Resize`/upsample operator, so the FPN
//! top-down pathway is replaced by per-level lateral 1x1 convolutions with
//! independent heads (SSD-style). The latency-relevant property — heavy
//! shared-shape conv subnets applied at several pyramid levels — is
//! preserved.

use crate::resnet::{build_backbone_pyramid, ResNetConfig};
use nnlqp_ir::{Graph, GraphBuilder, IrResult, NodeId, Rng64, Shape};

/// Configuration of one detection-model variant.
#[derive(Debug, Clone)]
pub struct DetectionConfig {
    /// Backbone configuration (ResNet-34 by default, as in the paper).
    pub backbone: ResNetConfig,
    /// Pyramid levels used (taken from the deepest).
    pub levels: usize,
    /// Channels of the FPN lateral projections and head convs.
    pub head_channels: u32,
    /// Convolutions per head subnet (canonical 4).
    pub head_depth: u32,
    /// Anchors per location.
    pub anchors: u32,
    /// Object classes.
    pub classes: u32,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            backbone: crate::resnet::resnet34(),
            levels: 3,
            head_channels: 256,
            head_depth: 4,
            anchors: 9,
            classes: 80,
        }
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> DetectionConfig {
    let mut backbone = crate::resnet::sample_config(r);
    backbone.resolution = *r.choice(&[256usize, 320, 384]);
    DetectionConfig {
        backbone,
        levels: 2 + r.below(2),
        head_channels: *r.choice(&[128u32, 192, 256]),
        head_depth: 2 + r.below(3) as u32,
        anchors: 9,
        classes: 80,
    }
}

/// One head subnet: `depth` 3x3 convs + ReLU, then the output projection.
fn head(
    b: &mut GraphBuilder,
    x: NodeId,
    channels: u32,
    depth: u32,
    out_c: u32,
) -> IrResult<NodeId> {
    let mut cur = x;
    for _ in 0..depth {
        let c = b.conv(Some(cur), channels, 3, 1, 1, 1)?;
        cur = b.relu(c)?;
    }
    b.conv(Some(cur), out_c, 3, 1, 1, 1)
}

/// Build the variant graph. The graph has `2 * levels` sinks (one class
/// map and one box map per pyramid level).
pub fn build(name: &str, cfg: &DetectionConfig) -> IrResult<Graph> {
    let res = cfg.backbone.resolution;
    let mut b = GraphBuilder::new(name, Shape::nchw(cfg.backbone.batch, 3, res, res));
    let pyramid = build_backbone_pyramid(&mut b, &cfg.backbone)?;
    let take = cfg.levels.min(pyramid.len());
    for &level in pyramid.iter().rev().take(take) {
        // Lateral projection to the shared head width.
        let lat = b.conv(Some(level), cfg.head_channels, 1, 1, 0, 1)?;
        let lr = b.relu(lat)?;
        // Classification and box subnets.
        head(
            &mut b,
            lr,
            cfg.head_channels,
            cfg.head_depth,
            cfg.anchors * cfg.classes,
        )?;
        head(
            &mut b,
            lr,
            cfg.head_channels,
            cfg.head_depth,
            cfg.anchors * 4,
        )?;
    }
    b.finish()
}

/// Sample and build one variant.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;

    #[test]
    fn canonical_builds_with_multi_sink_heads() {
        let g = build("retina", &DetectionConfig::default()).unwrap();
        assert!(validate(&g).is_ok());
        assert_eq!(g.sinks().len(), 2 * 3);
    }

    #[test]
    fn heads_dominate_over_equal_backbone_classifier() {
        // The Fig. 8 premise: detection latency >> classification latency
        // for the same backbone.
        let det = build("det", &DetectionConfig::default()).unwrap();
        let cls = crate::resnet::build("cls", &crate::resnet::resnet34()).unwrap();
        let fd = nnlqp_ir::cost::graph_cost(&det, nnlqp_ir::DType::F32).flops;
        let fc = nnlqp_ir::cost::graph_cost(&cls, nnlqp_ir::DType::F32).flops;
        assert!(fd > 1.5 * fc, "det {fd} vs cls {fc}");
    }

    #[test]
    fn random_variants_valid() {
        let mut r = Rng64::new(111);
        for i in 0..30 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
        }
    }
}
