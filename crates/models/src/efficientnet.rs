//! EfficientNet family generator (Tan & Le, 2019).
//!
//! MBConv blocks (inverted residual + squeeze-excite + swish) under compound
//! width/depth scaling. Variants sample the compound coefficient plus kernel
//! choices, spanning roughly B0–B2 shapes.

use crate::util::{same_pad, scale_c};
use nnlqp_ir::{Graph, GraphBuilder, IrResult, NodeId, Rng64, Shape};

/// Configuration of one EfficientNet variant.
#[derive(Debug, Clone)]
pub struct EfficientNetConfig {
    /// Input resolution.
    pub resolution: usize,
    /// Batch size.
    pub batch: usize,
    /// Width multiplier (compound scaling).
    pub width: f64,
    /// Depth multiplier (compound scaling).
    pub depth: f64,
    /// Expansion ratio of MBConv blocks (canonical 6).
    pub expand: u32,
    /// Squeeze-excite reduction.
    pub se_reduction: u32,
    /// Output classes.
    pub classes: u32,
}

impl Default for EfficientNetConfig {
    fn default() -> Self {
        // B0.
        EfficientNetConfig {
            resolution: 224,
            batch: 1,
            width: 1.0,
            depth: 1.0,
            expand: 6,
            se_reduction: 4,
            classes: 1000,
        }
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> EfficientNetConfig {
    EfficientNetConfig {
        resolution: *r.choice(&[192usize, 224, 256]),
        batch: 1,
        width: r.range_f64(0.6, 1.3),
        depth: r.range_f64(0.7, 1.4),
        expand: *r.choice(&[4u32, 6]),
        se_reduction: *r.choice(&[4u32, 8]),
        classes: 1000,
    }
}

/// MBConv block with SE and swish.
fn mbconv(
    b: &mut GraphBuilder,
    x: NodeId,
    out_c: u32,
    stride: u32,
    expand: u32,
    k: u32,
    se_reduction: u32,
) -> IrResult<NodeId> {
    let in_c = b.channels(x) as u32;
    let hidden = in_c * expand;
    let mut cur = x;
    if expand != 1 {
        let e = b.conv(Some(cur), hidden, 1, 1, 0, 1)?;
        cur = b.swish(e)?;
    }
    let dw = b.conv(Some(cur), hidden, k, stride, same_pad(k), hidden)?;
    cur = b.swish(dw)?;
    cur = b.squeeze_excite(cur, se_reduction)?;
    let proj = b.conv(Some(cur), out_c, 1, 1, 0, 1)?;
    if stride == 1 && in_c == out_c {
        b.add(x, proj)
    } else {
        Ok(proj)
    }
}

/// `(channels, repeats, stride, kernel)` — the B0 stage table.
const STAGES: [(u32, u32, u32, u32); 7] = [
    (16, 1, 1, 3),
    (24, 2, 2, 3),
    (40, 2, 2, 5),
    (80, 3, 2, 3),
    (112, 3, 1, 5),
    (192, 4, 2, 5),
    (320, 1, 1, 3),
];

/// Build the variant graph.
pub fn build(name: &str, cfg: &EfficientNetConfig) -> IrResult<Graph> {
    let mut b = GraphBuilder::new(
        name,
        Shape::nchw(cfg.batch, 3, cfg.resolution, cfg.resolution),
    );
    let stem = b.conv(None, scale_c(32, cfg.width), 3, 2, 1, 1)?;
    let mut cur = b.swish(stem)?;
    for (si, &(base_c, repeats, stride, k)) in STAGES.iter().enumerate() {
        let c = scale_c(base_c, cfg.width);
        let n = ((repeats as f64 * cfg.depth).ceil() as u32).max(1);
        for i in 0..n {
            let s = if i == 0 { stride } else { 1 };
            // First stage uses expand 1 (like B0).
            let t = if si == 0 { 1 } else { cfg.expand };
            cur = mbconv(&mut b, cur, c, s, t, k, cfg.se_reduction)?;
        }
    }
    let head = b.conv(Some(cur), scale_c(1280, cfg.width), 1, 1, 0, 1)?;
    let hs = b.swish(head)?;
    let gp = b.global_avgpool(hs)?;
    let fl = b.flatten(gp)?;
    b.gemm(fl, cfg.classes)?;
    b.finish()
}

/// Sample and build one variant.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;
    use nnlqp_ir::OpType;

    #[test]
    fn b0_builds() {
        let g = build("effnet-b0", &EfficientNetConfig::default()).unwrap();
        assert!(validate(&g).is_ok());
        // Every MBConv has an SE block -> one ReduceMean each (16 blocks).
        let se = g
            .nodes
            .iter()
            .filter(|n| n.op == OpType::ReduceMean)
            .count();
        assert_eq!(se, 16);
    }

    #[test]
    fn depth_multiplier_deepens() {
        let b0 = build("a", &EfficientNetConfig::default()).unwrap();
        let deeper = build(
            "b",
            &EfficientNetConfig {
                depth: 1.4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(deeper.len() > b0.len());
    }

    #[test]
    fn random_variants_valid() {
        let mut r = Rng64::new(81);
        for i in 0..50 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
        }
    }
}
