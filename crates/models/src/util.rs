//! Shared helpers for the family generators.

use nnlqp_ir::{GraphBuilder, IrResult, NodeId, Rng64};

/// Scale a base channel count by a width multiplier, rounded to the nearest
/// even integer with a floor of 8. Variants deliberately land on unaligned
/// widths too — platform efficiency curves depend on alignment and the
/// predictor must see that variation.
pub fn scale_c(base: u32, w: f64) -> u32 {
    let c = (base as f64 * w).round() as u32;
    ((c + 1) & !1).max(8)
}

/// Pick a width multiplier in `[0.5, 1.5]`.
pub fn sample_width(r: &mut Rng64) -> f64 {
    r.range_f64(0.5, 1.5)
}

/// Pick an ImageNet-style input resolution (multiple of 32).
pub fn sample_resolution(r: &mut Rng64) -> usize {
    *r.choice(&[160usize, 192, 224, 256])
}

/// Classifier head: global average pool -> flatten -> fc.
pub fn classifier(b: &mut GraphBuilder, x: NodeId, classes: u32) -> IrResult<NodeId> {
    let p = b.global_avgpool(x)?;
    let f = b.flatten(p)?;
    b.gemm(f, classes)
}

/// Conv + ReLU.
pub fn conv_relu(
    b: &mut GraphBuilder,
    x: Option<NodeId>,
    c: u32,
    k: u32,
    s: u32,
    p: u32,
) -> IrResult<NodeId> {
    let conv = b.conv(x, c, k, s, p, 1)?;
    b.relu(conv)
}

/// Conv + ReLU6.
pub fn conv_relu6(
    b: &mut GraphBuilder,
    x: Option<NodeId>,
    c: u32,
    k: u32,
    s: u32,
    p: u32,
) -> IrResult<NodeId> {
    let conv = b.conv(x, c, k, s, p, 1)?;
    b.relu6(conv)
}

/// "same" padding for an odd kernel.
#[inline]
pub fn same_pad(k: u32) -> u32 {
    (k - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::Shape;

    #[test]
    fn scale_c_is_even_and_floored() {
        assert_eq!(scale_c(64, 1.0), 64);
        assert_eq!(scale_c(64, 0.05), 8);
        assert_eq!(scale_c(10, 1.05), 12); // 10.5 -> 11 -> rounded up to even 12
        assert!(scale_c(37, 1.0).is_multiple_of(2));
    }

    #[test]
    fn resolution_divisible_by_32() {
        let mut r = Rng64::new(1);
        for _ in 0..100 {
            assert_eq!(sample_resolution(&mut r) % 32, 0);
        }
    }

    #[test]
    fn classifier_shapes() {
        let mut b = GraphBuilder::new("t", Shape::nchw(1, 3, 32, 32));
        let c = conv_relu(&mut b, None, 16, 3, 1, 1).unwrap();
        let out = classifier(&mut b, c, 1000).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.node(out).out_shape, Shape::nc(1, 1000));
    }
}
