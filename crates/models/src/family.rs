//! The model-family taxonomy of the paper's evaluation (§8.1).

use nnlqp_ir::{Graph, IrResult, Rng64};

/// The ten families of the latency corpus plus the detection family used by
/// the task-transfer experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    AlexNet,
    Vgg,
    GoogleNet,
    ResNet,
    SqueezeNet,
    MobileNetV2,
    MobileNetV3,
    EfficientNet,
    MnasNet,
    NasBench201,
    /// RetinaNet-style detection models (Fig. 8 only; not part of the
    /// 10-family corpus).
    Detection,
}

/// The ten corpus families, in the row order of Table 3.
pub const CORPUS_FAMILIES: [ModelFamily; 10] = [
    ModelFamily::ResNet,
    ModelFamily::Vgg,
    ModelFamily::EfficientNet,
    ModelFamily::MobileNetV2,
    ModelFamily::MobileNetV3,
    ModelFamily::MnasNet,
    ModelFamily::AlexNet,
    ModelFamily::SqueezeNet,
    ModelFamily::GoogleNet,
    ModelFamily::NasBench201,
];

impl ModelFamily {
    /// Stable display name (Table 3 row labels).
    pub fn name(self) -> &'static str {
        match self {
            ModelFamily::AlexNet => "AlexNet",
            ModelFamily::Vgg => "VGG",
            ModelFamily::GoogleNet => "GoogleNet",
            ModelFamily::ResNet => "ResNet",
            ModelFamily::SqueezeNet => "SqueezeNet",
            ModelFamily::MobileNetV2 => "MobileNetV2",
            ModelFamily::MobileNetV3 => "MobileNetV3",
            ModelFamily::EfficientNet => "EfficientNet",
            ModelFamily::MnasNet => "MnasNet",
            ModelFamily::NasBench201 => "NasBench201",
            ModelFamily::Detection => "Detection",
        }
    }

    /// Parse a display name.
    pub fn parse(s: &str) -> Option<Self> {
        CORPUS_FAMILIES
            .iter()
            .copied()
            .chain(std::iter::once(ModelFamily::Detection))
            .find(|f| f.name().eq_ignore_ascii_case(s))
    }

    /// Sample one random variant of this family.
    pub fn sample(self, name: &str, r: &mut Rng64) -> IrResult<Graph> {
        match self {
            ModelFamily::AlexNet => crate::alexnet::sample(name, r),
            ModelFamily::Vgg => crate::vgg::sample(name, r),
            ModelFamily::GoogleNet => crate::googlenet::sample(name, r),
            ModelFamily::ResNet => crate::resnet::sample(name, r),
            ModelFamily::SqueezeNet => crate::squeezenet::sample(name, r),
            ModelFamily::MobileNetV2 => crate::mobilenet_v2::sample(name, r),
            ModelFamily::MobileNetV3 => crate::mobilenet_v3::sample(name, r),
            ModelFamily::EfficientNet => crate::efficientnet::sample(name, r),
            ModelFamily::MnasNet => crate::mnasnet::sample(name, r),
            ModelFamily::NasBench201 => crate::nasbench::sample(name, r),
            ModelFamily::Detection => crate::detection::sample(name, r),
        }
    }

    /// Canonical (paper-default) instance of the family.
    pub fn canonical(self) -> IrResult<Graph> {
        let name = format!("{}-canonical", self.name().to_ascii_lowercase());
        match self {
            ModelFamily::AlexNet => crate::alexnet::build(&name, &Default::default()),
            ModelFamily::Vgg => crate::vgg::build(&name, &Default::default()),
            ModelFamily::GoogleNet => crate::googlenet::build(&name, &Default::default()),
            ModelFamily::ResNet => crate::resnet::build(&name, &Default::default()),
            ModelFamily::SqueezeNet => crate::squeezenet::build(&name, &Default::default()),
            ModelFamily::MobileNetV2 => crate::mobilenet_v2::build(&name, &Default::default()),
            ModelFamily::MobileNetV3 => crate::mobilenet_v3::build(&name, &Default::default()),
            ModelFamily::EfficientNet => crate::efficientnet::build(&name, &Default::default()),
            ModelFamily::MnasNet => crate::mnasnet::build(&name, &Default::default()),
            ModelFamily::NasBench201 => crate::nasbench::build(&name, &Default::default()),
            ModelFamily::Detection => crate::detection::build(&name, &Default::default()),
        }
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_corpus_families() {
        assert_eq!(CORPUS_FAMILIES.len(), 10);
    }

    #[test]
    fn names_roundtrip() {
        for f in CORPUS_FAMILIES {
            assert_eq!(ModelFamily::parse(f.name()), Some(f));
        }
        assert_eq!(
            ModelFamily::parse("Detection"),
            Some(ModelFamily::Detection)
        );
        assert_eq!(ModelFamily::parse("nonsense"), None);
    }

    #[test]
    fn all_canonicals_build() {
        for f in CORPUS_FAMILIES {
            let g = f.canonical().unwrap_or_else(|e| panic!("{f}: {e}"));
            assert!(!g.is_empty());
        }
        assert!(ModelFamily::Detection.canonical().is_ok());
    }
}
