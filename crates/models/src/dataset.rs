//! Dataset assembly: deterministic generation of the model corpus.
//!
//! The paper's corpus is 20,000 models — 2,000 variants of each of 9 CNN
//! families plus 2,000 NAS-Bench-201 cells (§8.1). [`generate_dataset`]
//! reproduces that construction at any per-family count.

use crate::family::{ModelFamily, CORPUS_FAMILIES};
use nnlqp_ir::{Graph, Rng64};

/// A labelled model: which family a graph was drawn from.
#[derive(Debug, Clone)]
pub struct LabelledModel {
    /// Family label (the leave-one-out unit of Table 3).
    pub family: ModelFamily,
    /// The model graph.
    pub graph: Graph,
}

/// Specification of a corpus.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Variants per family (paper: 2,000).
    pub per_family: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec {
            per_family: 200,
            seed: 0x4e4e_4c51, // "NNLQ"
        }
    }
}

/// Generate `count` variants of one family. Each family gets its own forked
/// RNG stream so corpora with different family subsets stay reproducible.
pub fn generate_family(family: ModelFamily, count: usize, seed: u64) -> Vec<LabelledModel> {
    let mut root = Rng64::new(seed);
    let mut r = root.fork(family as u64 + 1);
    let mut out = Vec::with_capacity(count);
    let prefix = family.name().to_ascii_lowercase();
    let mut i = 0usize;
    while out.len() < count {
        let name = format!("{prefix}-{i:05}");
        i += 1;
        // Sampled configurations are valid by construction; a failed build
        // would indicate a generator bug, so surface it loudly.
        let graph = family
            .sample(&name, &mut r)
            .unwrap_or_else(|e| panic!("generator for {family} failed: {e}"));
        out.push(LabelledModel { family, graph });
    }
    out
}

/// Generate the full 10-family corpus.
pub fn generate_dataset(spec: &DatasetSpec) -> Vec<LabelledModel> {
    let mut all = Vec::with_capacity(spec.per_family * CORPUS_FAMILIES.len());
    for family in CORPUS_FAMILIES {
        all.extend(generate_family(family, spec.per_family, spec.seed));
    }
    all
}

/// Split indices into train/test by ratio (e.g. 0.7), shuffled
/// deterministically.
pub fn split_indices(n: usize, train_ratio: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut r = Rng64::new(seed ^ 0x5311_7000_0000_0001);
    r.shuffle(&mut idx);
    let cut = ((n as f64) * train_ratio).round() as usize;
    let test = idx.split_off(cut.min(n));
    (idx, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_hash as _;

    #[test]
    fn family_generation_is_deterministic() {
        let a = generate_family(ModelFamily::ResNet, 5, 99);
        let b = generate_family(ModelFamily::ResNet, 5, 99);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_family(ModelFamily::Vgg, 3, 1);
        let b = generate_family(ModelFamily::Vgg, 3, 2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.graph != y.graph));
    }

    #[test]
    fn full_corpus_counts() {
        let spec = DatasetSpec {
            per_family: 3,
            seed: 7,
        };
        let ds = generate_dataset(&spec);
        assert_eq!(ds.len(), 30);
        for f in CORPUS_FAMILIES {
            assert_eq!(ds.iter().filter(|m| m.family == f).count(), 3);
        }
    }

    #[test]
    fn variants_within_family_mostly_distinct() {
        use std::collections::HashSet;
        let ms = generate_family(ModelFamily::MobileNetV2, 30, 42);
        let hashes: HashSet<u64> = ms
            .iter()
            .map(|m| nnlqp_hash::graph_hash(&m.graph))
            .collect();
        assert!(hashes.len() >= 28, "only {} distinct of 30", hashes.len());
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let (tr, te) = split_indices(100, 0.7, 5);
        assert_eq!(tr.len(), 70);
        assert_eq!(te.len(), 30);
        let mut all: Vec<usize> = tr.iter().chain(te.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
