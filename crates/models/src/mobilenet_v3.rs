//! MobileNetV3 family generator (Howard et al., 2019).
//!
//! MobileNetV2-style inverted residuals augmented with squeeze-and-excite
//! gates and swish activations on the deeper stages. The paper notes hard
//! swish is unsupported on some inference stacks (§9), so — matching its
//! kernel taxonomy — the smooth swish (Sigmoid+Mul) form is emitted.

use crate::util::{same_pad, scale_c};
use nnlqp_ir::{Graph, GraphBuilder, IrResult, NodeId, Rng64, Shape};

/// Configuration of one MobileNetV3 variant.
#[derive(Debug, Clone)]
pub struct MobileNetV3Config {
    /// Input resolution.
    pub resolution: usize,
    /// Batch size.
    pub batch: usize,
    /// Width multiplier.
    pub width: f64,
    /// Depthwise kernel in the SE stages.
    pub dw_kernel: u32,
    /// Squeeze-excite reduction ratio.
    pub se_reduction: u32,
    /// Extra repeats per stage, -1..=1.
    pub depth_delta: i32,
    /// Output classes.
    pub classes: u32,
}

impl Default for MobileNetV3Config {
    fn default() -> Self {
        MobileNetV3Config {
            resolution: 224,
            batch: 1,
            width: 1.0,
            dw_kernel: 5,
            se_reduction: 4,
            depth_delta: 0,
            classes: 1000,
        }
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> MobileNetV3Config {
    MobileNetV3Config {
        resolution: *r.choice(&[160usize, 192, 224]),
        batch: 1,
        width: r.range_f64(0.5, 1.4),
        dw_kernel: *r.choice(&[3u32, 5]),
        se_reduction: *r.choice(&[4u32, 8]),
        depth_delta: *r.choice(&[-1i32, 0, 1]),
        classes: 1000,
    }
}

/// V3 block: expand -> act -> depthwise -> act -> optional SE -> project.
#[allow(clippy::too_many_arguments)]
fn v3_block(
    b: &mut GraphBuilder,
    x: NodeId,
    out_c: u32,
    stride: u32,
    expand_c: u32,
    dw_k: u32,
    use_se: bool,
    use_swish: bool,
    se_reduction: u32,
) -> IrResult<NodeId> {
    let in_c = b.channels(x) as u32;
    let mut cur = x;
    if expand_c != in_c {
        let e = b.conv(Some(cur), expand_c, 1, 1, 0, 1)?;
        cur = if use_swish { b.swish(e)? } else { b.relu6(e)? };
    }
    let dw = b.conv(Some(cur), expand_c, dw_k, stride, same_pad(dw_k), expand_c)?;
    cur = if use_swish {
        b.swish(dw)?
    } else {
        b.relu6(dw)?
    };
    if use_se {
        cur = b.squeeze_excite(cur, se_reduction)?;
    }
    let proj = b.conv(Some(cur), out_c, 1, 1, 0, 1)?;
    if stride == 1 && in_c == out_c {
        b.add(x, proj)
    } else {
        Ok(proj)
    }
}

/// `(channels, expand_channels, repeats, stride, se, swish)` — condensed
/// MobileNetV3-Large table.
const STAGES: [(u32, u32, i32, u32, bool, bool); 6] = [
    (16, 16, 1, 1, false, false),
    (24, 72, 2, 2, false, false),
    (40, 120, 3, 2, true, false),
    (80, 240, 4, 2, false, true),
    (112, 480, 2, 1, true, true),
    (160, 672, 3, 2, true, true),
];

/// Build the variant graph.
pub fn build(name: &str, cfg: &MobileNetV3Config) -> IrResult<Graph> {
    let mut b = GraphBuilder::new(
        name,
        Shape::nchw(cfg.batch, 3, cfg.resolution, cfg.resolution),
    );
    let stem = b.conv(None, scale_c(16, cfg.width), 3, 2, 1, 1)?;
    let mut cur = b.swish(stem)?;
    for &(base_c, base_e, repeats, stride, se, swish) in &STAGES {
        let c = scale_c(base_c, cfg.width);
        let n = (repeats + if repeats > 1 { cfg.depth_delta } else { 0 }).max(1);
        for i in 0..n {
            let s = if i == 0 { stride } else { 1 };
            let e = scale_c(base_e, cfg.width);
            let k = if se { cfg.dw_kernel } else { 3 };
            cur = v3_block(&mut b, cur, c, s, e, k, se, swish, cfg.se_reduction)?;
        }
    }
    let head_c = scale_c(960, cfg.width);
    let head = b.conv(Some(cur), head_c, 1, 1, 0, 1)?;
    let hs = b.swish(head)?;
    let gp = b.global_avgpool(hs)?;
    let fl = b.flatten(gp)?;
    b.gemm(fl, cfg.classes)?;
    b.finish()
}

/// Sample and build one variant.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;
    use nnlqp_ir::OpType;

    #[test]
    fn canonical_builds_with_se_and_swish() {
        let g = build("mbv3", &MobileNetV3Config::default()).unwrap();
        assert!(validate(&g).is_ok());
        let sigmoids = g.nodes.iter().filter(|n| n.op == OpType::Sigmoid).count();
        let muls = g.nodes.iter().filter(|n| n.op == OpType::Mul).count();
        assert!(sigmoids > 5, "expected SE gates + swish, got {sigmoids}");
        assert!(muls >= sigmoids); // every sigmoid feeds a mul
        let reduces = g
            .nodes
            .iter()
            .filter(|n| n.op == OpType::ReduceMean)
            .count();
        assert_eq!(reduces, 8); // SE blocks in stages 3, 5, 6
    }

    #[test]
    fn se_gate_broadcast_shape() {
        let g = build("m", &MobileNetV3Config::default()).unwrap();
        // Find a Mul whose second input is an NC11 gate.
        let found = g.nodes.iter().any(|n| {
            n.op == OpType::Mul && {
                let b_shape = &g.node(n.inputs[1]).out_shape;
                b_shape.height() == 1
                    && b_shape.width() == 1
                    && g.node(n.inputs[0]).out_shape.height() > 1
            }
        });
        assert!(found, "no SE broadcast mul found");
    }

    #[test]
    fn random_variants_valid() {
        let mut r = Rng64::new(71);
        for i in 0..50 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
        }
    }
}
