//! MnasNet family generator (Tan et al., 2019).
//!
//! The platform-aware-NAS family: a mix of plain separable convolutions and
//! MBConv blocks with per-stage expansion ratios and kernels, some stages
//! carrying squeeze-excite. Variants perturb width, kernels and SE choices.

use crate::util::{same_pad, scale_c};
use nnlqp_ir::{Graph, GraphBuilder, IrResult, NodeId, Rng64, Shape};

/// Configuration of one MnasNet variant.
#[derive(Debug, Clone)]
pub struct MnasNetConfig {
    /// Input resolution.
    pub resolution: usize,
    /// Batch size.
    pub batch: usize,
    /// Width multiplier.
    pub width: f64,
    /// Kernel used in the 5x5 stages.
    pub large_kernel: u32,
    /// Whether the SE stages keep their squeeze-excite gates.
    pub use_se: bool,
    /// Extra repeats per stage, -1..=1.
    pub depth_delta: i32,
    /// Output classes.
    pub classes: u32,
}

impl Default for MnasNetConfig {
    fn default() -> Self {
        MnasNetConfig {
            resolution: 224,
            batch: 1,
            width: 1.0,
            large_kernel: 5,
            use_se: true,
            depth_delta: 0,
            classes: 1000,
        }
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> MnasNetConfig {
    MnasNetConfig {
        resolution: *r.choice(&[160usize, 192, 224]),
        batch: 1,
        width: r.range_f64(0.5, 1.4),
        large_kernel: *r.choice(&[3u32, 5]),
        use_se: r.bernoulli(0.7),
        depth_delta: *r.choice(&[-1i32, 0, 1]),
        classes: 1000,
    }
}

/// Separable convolution: depthwise + pointwise, ReLU after each.
fn sep_conv(b: &mut GraphBuilder, x: NodeId, out_c: u32, k: u32, stride: u32) -> IrResult<NodeId> {
    let in_c = b.channels(x) as u32;
    let dw = b.conv(Some(x), in_c, k, stride, same_pad(k), in_c)?;
    let dr = b.relu(dw)?;
    let pw = b.conv(Some(dr), out_c, 1, 1, 0, 1)?;
    b.relu(pw)
}

/// MBConv with ReLU activations and optional SE (MnasNet-A1 uses SE on two
/// stages).
#[allow(clippy::too_many_arguments)]
fn mbconv(
    b: &mut GraphBuilder,
    x: NodeId,
    out_c: u32,
    stride: u32,
    expand: u32,
    k: u32,
    se: bool,
) -> IrResult<NodeId> {
    let in_c = b.channels(x) as u32;
    let hidden = in_c * expand;
    let e = b.conv(Some(x), hidden, 1, 1, 0, 1)?;
    let mut cur = b.relu(e)?;
    let dw = b.conv(Some(cur), hidden, k, stride, same_pad(k), hidden)?;
    cur = b.relu(dw)?;
    if se {
        cur = b.squeeze_excite(cur, 4)?;
    }
    let proj = b.conv(Some(cur), out_c, 1, 1, 0, 1)?;
    if stride == 1 && in_c == out_c {
        b.add(x, proj)
    } else {
        Ok(proj)
    }
}

/// `(channels, repeats, stride, expand, large_kernel, se)` — MnasNet-A1.
const STAGES: [(u32, i32, u32, u32, bool, bool); 6] = [
    (24, 2, 2, 6, false, false),
    (40, 3, 2, 3, true, true),
    (80, 4, 2, 6, false, false),
    (112, 2, 1, 6, false, true),
    (160, 3, 2, 6, true, true),
    (320, 1, 1, 6, false, false),
];

/// Build the variant graph.
pub fn build(name: &str, cfg: &MnasNetConfig) -> IrResult<Graph> {
    let mut b = GraphBuilder::new(
        name,
        Shape::nchw(cfg.batch, 3, cfg.resolution, cfg.resolution),
    );
    let stem = b.conv(None, scale_c(32, cfg.width), 3, 2, 1, 1)?;
    let sr = b.relu(stem)?;
    // SepConv stage (16 channels).
    let mut cur = sep_conv(&mut b, sr, scale_c(16, cfg.width), 3, 1)?;
    for &(base_c, repeats, stride, expand, large, se) in &STAGES {
        let c = scale_c(base_c, cfg.width);
        let k = if large { cfg.large_kernel } else { 3 };
        let n = (repeats + if repeats > 1 { cfg.depth_delta } else { 0 }).max(1);
        for i in 0..n {
            let s = if i == 0 { stride } else { 1 };
            cur = mbconv(&mut b, cur, c, s, expand, k, se && cfg.use_se)?;
        }
    }
    let head = b.conv(Some(cur), scale_c(1280, cfg.width), 1, 1, 0, 1)?;
    let hr = b.relu(head)?;
    let gp = b.global_avgpool(hr)?;
    let fl = b.flatten(gp)?;
    b.gemm(fl, cfg.classes)?;
    b.finish()
}

/// Sample and build one variant.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;
    use nnlqp_ir::OpType;

    #[test]
    fn a1_builds() {
        let g = build("mnasnet-a1", &MnasNetConfig::default()).unwrap();
        assert!(validate(&g).is_ok());
        let se = g
            .nodes
            .iter()
            .filter(|n| n.op == OpType::ReduceMean)
            .count();
        assert_eq!(se, 3 + 2 + 3); // SE stages: 40x3, 112x2, 160x3
    }

    #[test]
    fn disabling_se_removes_reduce_means() {
        let g = build(
            "m",
            &MnasNetConfig {
                use_se: false,
                ..Default::default()
            },
        )
        .unwrap();
        let se = g
            .nodes
            .iter()
            .filter(|n| n.op == OpType::ReduceMean)
            .count();
        assert_eq!(se, 0);
    }

    #[test]
    fn random_variants_valid() {
        let mut r = Rng64::new(91);
        for i in 0..50 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
        }
    }
}
