//! AlexNet family generator (Krizhevsky et al., 2012).
//!
//! Five convolution stages with large early kernels, three max pools and a
//! fully-connected head. Variants perturb the stem kernel, mid kernels,
//! channel widths and the fc widths.

use crate::util::{same_pad, scale_c};
use nnlqp_ir::{Graph, GraphBuilder, IrResult, Rng64, Shape};

/// Configuration of one AlexNet variant.
#[derive(Debug, Clone)]
pub struct AlexNetConfig {
    /// Input resolution (224 canonical).
    pub resolution: usize,
    /// Batch size.
    pub batch: usize,
    /// Width multiplier on all channel counts.
    pub width: f64,
    /// Stem kernel (canonical 11).
    pub stem_kernel: u32,
    /// Second-stage kernel (canonical 5).
    pub mid_kernel: u32,
    /// Width of the two hidden fully-connected layers (canonical 4096).
    pub fc_width: u32,
    /// Output classes.
    pub classes: u32,
}

impl Default for AlexNetConfig {
    fn default() -> Self {
        AlexNetConfig {
            resolution: 224,
            batch: 1,
            width: 1.0,
            stem_kernel: 11,
            mid_kernel: 5,
            fc_width: 4096,
            classes: 1000,
        }
    }
}

/// Sample a random variant configuration.
pub fn sample_config(r: &mut Rng64) -> AlexNetConfig {
    AlexNetConfig {
        resolution: *r.choice(&[192usize, 224, 256]),
        batch: 1,
        width: r.range_f64(0.5, 1.4),
        stem_kernel: *r.choice(&[7u32, 9, 11]),
        mid_kernel: *r.choice(&[3u32, 5]),
        fc_width: *r.choice(&[1024u32, 2048, 4096]),
        classes: 1000,
    }
}

/// Build the variant graph.
pub fn build(name: &str, cfg: &AlexNetConfig) -> IrResult<Graph> {
    let w = cfg.width;
    let mut b = GraphBuilder::new(
        name,
        Shape::nchw(cfg.batch, 3, cfg.resolution, cfg.resolution),
    );
    // Stage 1: big-stride stem.
    let c1 = b.conv(None, scale_c(64, w), cfg.stem_kernel, 4, 2, 1)?;
    let r1 = b.relu(c1)?;
    let p1 = b.maxpool(r1, 3, 2, 0)?;
    // Stage 2.
    let c2 = b.conv(
        Some(p1),
        scale_c(192, w),
        cfg.mid_kernel,
        1,
        same_pad(cfg.mid_kernel),
        1,
    )?;
    let r2 = b.relu(c2)?;
    let p2 = b.maxpool(r2, 3, 2, 0)?;
    // Stages 3-5: three 3x3 convolutions.
    let c3 = b.conv(Some(p2), scale_c(384, w), 3, 1, 1, 1)?;
    let r3 = b.relu(c3)?;
    let c4 = b.conv(Some(r3), scale_c(256, w), 3, 1, 1, 1)?;
    let r4 = b.relu(c4)?;
    let c5 = b.conv(Some(r4), scale_c(256, w), 3, 1, 1, 1)?;
    let r5 = b.relu(c5)?;
    let p5 = b.maxpool(r5, 3, 2, 0)?;
    // Head: global pool (replaces the fixed 6x6 adaptive pool so arbitrary
    // resolutions stay valid) + two hidden fc layers.
    let gp = b.global_avgpool(p5)?;
    let fl = b.flatten(gp)?;
    let f6 = b.gemm(fl, cfg.fc_width)?;
    let a6 = b.relu(f6)?;
    let f7 = b.gemm(a6, cfg.fc_width)?;
    let a7 = b.relu(f7)?;
    b.gemm(a7, cfg.classes)?;
    b.finish()
}

/// Sample and build one variant in a single call.
pub fn sample(name: &str, r: &mut Rng64) -> IrResult<Graph> {
    build(name, &sample_config(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;

    #[test]
    fn canonical_builds_and_validates() {
        let g = build("alexnet", &AlexNetConfig::default()).unwrap();
        assert!(validate(&g).is_ok());
        assert_eq!(*g.output_shape().unwrap(), Shape::nc(1, 1000));
        // 5 conv stages + activations + 3 pools + head.
        assert!(g.len() >= 15);
    }

    #[test]
    fn variants_are_structurally_distinct() {
        let mut r = Rng64::new(11);
        let a = sample("a", &mut r).unwrap();
        let b = sample("b", &mut r).unwrap();
        assert_ne!(
            nnlqp_ir::cost::graph_cost(&a, nnlqp_ir::DType::F32).flops,
            nnlqp_ir::cost::graph_cost(&b, nnlqp_ir::DType::F32).flops
        );
    }

    #[test]
    fn many_random_variants_all_valid() {
        let mut r = Rng64::new(5);
        for i in 0..50 {
            let g = sample(&format!("v{i}"), &mut r).unwrap();
            assert!(validate(&g).is_ok());
        }
    }
}
