//! Property-based tests of the numeric substrate.

use nnlqp_ir::Rng64;
use nnlqp_nn::{
    l2_normalize_rows, Adam, Csr, LinearRegression, Matrix, RegressionTree, TreeConfig,
};
use proptest::prelude::*;

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut r = Rng64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| r.range_f64(-2.0, 2.0) as f32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// (A B) C == A (B C) within f32 tolerance.
    #[test]
    fn matmul_associative(seed in any::<u64>()) {
        let a = rand_matrix(5, 4, seed);
        let b = rand_matrix(4, 6, seed ^ 1);
        let c = rand_matrix(6, 3, seed ^ 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data.iter().zip(&right.data) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Distributivity: A(B + C) == AB + AC.
    #[test]
    fn matmul_distributive(seed in any::<u64>()) {
        let a = rand_matrix(4, 5, seed);
        let b = rand_matrix(5, 3, seed ^ 3);
        let c = rand_matrix(5, 3, seed ^ 4);
        let mut bc = b.clone();
        bc.add_assign(&c);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        for (x, y) in left.data.iter().zip(&right.data) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// L2 row normalization is idempotent.
    #[test]
    fn l2_norm_idempotent(seed in any::<u64>()) {
        let x = rand_matrix(6, 5, seed);
        let (y1, _) = l2_normalize_rows(&x);
        let (y2, _) = l2_normalize_rows(&y1);
        for (a, b) in y1.data.iter().zip(&y2.data) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Mean aggregation over a complete graph equals the global mean of
    /// the other nodes (spot-check of the CSR machinery).
    #[test]
    fn complete_graph_mean_agg(seed in any::<u64>()) {
        let n = 5usize;
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        let csr = Csr::from_edges(n, &edges);
        let x = rand_matrix(n, 3, seed);
        let agg = csr.mean_agg(&x);
        for i in 0..n {
            for c in 0..3 {
                let want: f32 = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| x.get(j, c))
                    .sum::<f32>()
                    / (n - 1) as f32;
                prop_assert!((agg.get(i, c) - want).abs() < 1e-5);
            }
        }
    }

    /// Adam converges on random strongly-convex quadratics.
    #[test]
    fn adam_minimizes_random_quadratic(seed in 0u64..1000) {
        let mut r = Rng64::new(seed);
        let target = [r.range_f64(-3.0, 3.0) as f32, r.range_f64(-3.0, 3.0) as f32];
        let scale = [r.range_f64(0.5, 4.0), r.range_f64(0.5, 4.0)];
        let mut x = [0.0f32, 0.0];
        let mut opt = Adam::new(0.05);
        for _ in 0..1500 {
            opt.begin_step();
            let g = [
                (2.0 * scale[0] * (x[0] - target[0]) as f64) as f32,
                (2.0 * scale[1] * (x[1] - target[1]) as f64) as f32,
            ];
            opt.update(1, &mut x, &g);
        }
        prop_assert!((x[0] - target[0]).abs() < 0.05, "{x:?} vs {target:?}");
        prop_assert!((x[1] - target[1]).abs() < 0.05);
    }

    /// Linear regression predictions are exact on the training points of
    /// a noiseless linear function.
    #[test]
    fn linreg_interpolates_linear_data(seed in any::<u64>()) {
        let mut r = Rng64::new(seed);
        let w = [r.range_f64(-2.0, 2.0), r.range_f64(-2.0, 2.0)];
        let b = r.range_f64(-1.0, 1.0);
        let x: Vec<Vec<f64>> = (0..40)
            .map(|_| vec![r.range_f64(-5.0, 5.0), r.range_f64(-5.0, 5.0)])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| w[0] * v[0] + w[1] * v[1] + b).collect();
        let m = LinearRegression::fit(&x, &y, 1e-10);
        for (xi, yi) in x.iter().zip(&y) {
            prop_assert!((m.predict(xi) - yi).abs() < 1e-6);
        }
    }

    /// A regression tree's predictions always lie within the training
    /// target range.
    #[test]
    fn tree_predictions_bounded_by_targets(seed in any::<u64>()) {
        let mut r = Rng64::new(seed);
        let x: Vec<Vec<f64>> = (0..60).map(|_| vec![r.range_f64(0.0, 1.0)]).collect();
        let y: Vec<f64> = (0..60).map(|_| r.range_f64(-10.0, 10.0)).collect();
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let t = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut r);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            let p = t.predict(&[q]);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo},{hi}]");
        }
    }
}
